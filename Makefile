# Convenience targets for the Accelerated Ring reproduction.

PYTHON ?= python

.PHONY: install test test-fast lint bench bench-full bench-smoke bench-guard campaign-smoke churn-smoke multiring-smoke obs-smoke wire-fuzz-smoke examples figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

test-fast:
	$(PYTHON) -m pytest tests/ -q -x --ignore=tests/test_properties.py \
		--ignore=tests/test_properties_model.py \
		--ignore=tests/test_packing_properties.py

# Repo-specific static analysis (repro.analysis): determinism,
# sans-IO boundary, __slots__ completeness and wire-drift lints over
# src/repro, gated against the committed lint_baseline.json.  Fails on
# any non-baselined finding and writes the JSON report CI uploads as
# an artifact.  This is what CI runs.
lint:
	$(PYTHON) -m repro.cli lint src/repro \
		--baseline lint_baseline.json \
		--json bench_results/fresh/lint_report.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast sanity pass: tier-1 tests + the kernel-throughput and codec
# microbenchmarks (bench_results/kernel.json, codec.json).  This is
# what CI runs.
bench-smoke:
	$(PYTHON) -m pytest tests/ -q
	$(PYTHON) -m pytest benchmarks/test_kernel_events_per_sec.py -q
	$(PYTHON) -m pytest benchmarks/test_codec_throughput.py -q
	@cat bench_results/kernel.json bench_results/codec.json

# Regression guard: regenerate the kernel, codec and observability
# records into a scratch directory and compare against the committed
# baselines in bench_results/; any guarded metric more than 20% below
# its baseline fails.  This is what CI runs.
bench-guard:
	rm -rf bench_results/fresh
	REPRO_BENCH_RESULTS=bench_results/fresh \
		$(PYTHON) -m pytest benchmarks/test_kernel_events_per_sec.py \
		benchmarks/test_codec_throughput.py \
		benchmarks/test_obs_overhead.py \
		benchmarks/test_multiring_scaling.py -q
	$(PYTHON) -m repro.cli churn --sweep \
		--out bench_results/fresh/churn_convergence.json
	$(PYTHON) -m repro.bench.guard --baseline bench_results \
		--fresh bench_results/fresh

# Small seeded fault-injection campaign: crashes, partitions, token
# drops and loss swaps against accelerated and original-Ring configs;
# exits non-zero (leaving repro files in bench_results/campaigns/) on
# any EVS violation.  This is what CI runs.
campaign-smoke:
	$(PYTHON) -m repro.cli campaign --seed 1 --scenarios 4 --quiet
	@ls bench_results/campaigns/

# Gossip-membership churn smoke: the detector unit/fuzz suites, the
# simulated churn-campaign smoke test, and one EVS-checked 50-node
# endurance scenario (sustained crash/restart churn plus a flapping
# node) via the CLI.  Exits non-zero on any EVS violation or
# convergence failure.  This is what CI runs.
churn-smoke:
	$(PYTHON) -m pytest tests/test_gossip.py tests/test_churn_campaign.py -q
	$(PYTHON) -m repro.cli churn --nodes 50 --seed 1

# Multi-ring sharding smoke: the merge/partition/checker unit and
# property suites plus the packet-level M=2 sim test, then an M={1,2}
# scaling sweep via the CLI, which runs the per-ring EVS oracles and
# the cross-ring merge checker on every point and exits non-zero on
# any ordering violation.  The scaling record lands in
# bench_results/fresh/ so CI can upload it.  This is what CI runs.
multiring-smoke:
	$(PYTHON) -m pytest tests/test_multiring_partition.py \
		tests/test_multiring_merge.py tests/test_multiring_wire.py \
		tests/test_multiring_sim.py -q
	$(PYTHON) -m repro.cli multiring --ms 1,2 \
		--out bench_results/fresh/multiring_smoke.json
	$(PYTHON) -m repro.cli report --multiring

# Observability smoke: the obs unit/property suites, then the full
# artifact loop — a seeded traced run writes the reference trace and
# metrics snapshot into a scratch directory, and both CLI renderers
# must exit 0 over them.  This is what CI runs.
obs-smoke:
	$(PYTHON) -m pytest tests/test_obs_registry.py tests/test_obs_trace.py \
		tests/test_metrics_conservation.py -q
	rm -rf bench_results/fresh/obs
	$(PYTHON) -m repro.cli obs-sample --out-dir bench_results/fresh/obs
	$(PYTHON) -m repro.cli trace-analyze \
		bench_results/fresh/obs/sim_sample.rtrace
	$(PYTHON) -m repro.cli report bench_results/fresh/obs/metrics_sample.json

# Bounded fuzz pass over the wire codec: the hypothesis property suites
# at a raised example budget, plus the live-daemon malformed-datagram
# spray.  On failure hypothesis leaves shrunk repros in .hypothesis/,
# which CI uploads as an artifact.  This is what CI runs.
wire-fuzz-smoke:
	REPRO_WIRE_EXAMPLES=200 $(PYTHON) -m pytest tests/test_wire_fuzz.py \
		tests/test_wire_roundtrip.py tests/test_wire_codec.py -q

figures:
	$(PYTHON) -m repro.cli all

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf bench_results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
