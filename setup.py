"""Setup shim.

Kept so `pip install -e .` works on environments whose pip/setuptools
cannot build PEP 660 editable wheels (no `wheel` package available, as in
offline boxes); all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
