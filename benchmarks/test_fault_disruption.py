"""Service disruption under injected faults (extension bench).

The fault-campaign DSL doubles as a measurement harness: install a
canonical fault schedule and time how long the ordering service is
disrupted — from the first fault to all live nodes operational on one
reformed ring.  Run for both the original Ring (window 0) and an
accelerated configuration, since reconfiguration is where acceleration
could plausibly hurt (more in-flight state to recover).
"""

from repro.bench import headline
from repro.core import ProtocolConfig
from repro.membership import MembershipTimeouts
from repro.net import GIGABIT
from repro.sim import (
    Crash,
    FaultSchedule,
    Heal,
    LIBRARY,
    Partition,
    Restart,
    SimEVSCluster,
    TokenDrop,
)

TIMEOUTS = MembershipTimeouts(
    token_loss_ticks=30, gather_ticks=20, commit_ticks=40,
    probe_interval_ticks=15,
)

SCENARIOS = {
    "crash+restart": FaultSchedule([Crash(0.0, 1), Restart(0.25, 1)]),
    "partition+heal": FaultSchedule([
        Partition(0.0, ((0, 1), (2, 3))), Heal(0.3),
    ]),
    "token_burst": FaultSchedule([TokenDrop(0.0, count=3)]),
}


def _config(accelerated_window):
    if accelerated_window == 0:
        return ProtocolConfig.original_ring(personal_window=10)
    return ProtocolConfig.accelerated(
        personal_window=10, accelerated_window=accelerated_window
    )


def measure_disruption(accelerated_window, schedule):
    cluster = SimEVSCluster(4, GIGABIT, LIBRARY,
                            _config(accelerated_window), TIMEOUTS)
    cluster.run_until_converged(timeout_s=2.0)
    for pid, node in cluster.nodes.items():
        for i in range(5):
            node.submit((pid, i))
    fault_at = cluster.sim.now
    schedule.install(cluster)
    # Let every scheduled event (last one at <= 0.3 s) fire.
    cluster.run_for(0.35)
    recovered_at = cluster.run_until_converged(timeout_s=5.0)
    return recovered_at - fault_at


def run_matrix():
    return {
        (name, window): measure_disruption(window, schedule)
        for name, schedule in SCENARIOS.items()
        for window in (0, 2)
    }


def test_fault_disruption(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    # Every scenario recovers within a second of the LAST fault event
    # (schedules end by t=0.3 s), with either configuration.
    for (name, window), took in results.items():
        assert took < 1.3, (name, window, took)
    # Acceleration does not meaningfully slow recovery: detection and
    # membership timeouts dominate, not the in-flight window.
    for name in SCENARIOS:
        original = results[(name, 0)]
        accelerated = results[(name, 2)]
        assert accelerated < original + 0.5, (name, original, accelerated)

    headline(
        "* fault disruption (4-node 1G, detect=30ms): "
        + ", ".join(
            "%s aw=%d -> %.0fms" % (name, window, took * 1e3)
            for (name, window), took in sorted(results.items())
        )
    )
