"""Figure 7: Safe delivery latency at low throughputs, 10-gigabit.

The paper's most distinctive shape: at very low load the ORIGINAL
protocol has lower Safe latency, because under acceleration the token
aru typically cannot be raised in step with seq, costing up to an extra
round, and at low load rounds are already fast so the extra round
dominates.  At 100 Mbps (1% utilization) the paper measures the
accelerated protocol ~20% slower (620 vs 520 us); by 4-5% utilization
(400-500 Mbps) the accelerated protocol is consistently faster.
"""

from repro.bench import (
    headline,
    make_fig7,
    persist_figure,
    register,
    run_sweep,
)


def run_figure():
    figure = run_sweep(make_fig7())
    register(figure)
    persist_figure(figure)
    return figure


def crossover_point(orig, accel, tolerance=0.02):
    """First offered load where accelerated matches/beats the original.

    A 2% tolerance treats statistically equal latencies as crossed —
    the curves approach each other asymptotically near the crossover.
    """
    for point in orig.points:
        accel_latency = accel.latency_at(point.offered_mbps)
        if accel_latency is None:
            continue
        if accel_latency <= point.latency_us * (1 + tolerance):
            return point.offered_mbps
    return None


def test_fig7_low_throughput_crossover(benchmark):
    figure = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    for profile in ("spread", "daemon"):
        orig = figure.series["%s/original" % profile]
        accel = figure.series["%s/accelerated" % profile]

        # At 1% utilization the original is FASTER (the aru lag round).
        orig_100 = orig.latency_at(100)
        accel_100 = accel.latency_at(100)
        assert orig_100 < accel_100, (
            "%s @100 Mbps: original (%.0f us) should beat accelerated "
            "(%.0f us)" % (profile, orig_100, accel_100)
        )
        # The penalty is a fraction of a round, not a blowup (paper ~20%).
        assert accel_100 < orig_100 * 2.0, (
            "%s @100 Mbps: accelerated penalty too large (%.0f vs %.0f us)"
            % (profile, accel_100, orig_100)
        )

        # The crossover falls in the low hundreds of Mbps (paper: by
        # 400-500 Mbps the accelerated protocol consistently wins).
        cross = crossover_point(orig, accel)
        assert cross is not None, "%s: no crossover found" % profile
        assert cross <= 800, (
            "%s: crossover at %.0f Mbps, later than the paper's 400-500"
            % (profile, cross)
        )

        # And at 800 Mbps the accelerated protocol clearly wins.
        assert accel.latency_at(800) < orig.latency_at(800), profile

    spread_orig = figure.series["spread/original"]
    spread_accel = figure.series["spread/accelerated"]
    headline(
        "* fig7 low-load crossover (Spread): paper 520us orig vs 620us accel "
        "@100 Mbps, crossover 400-500 Mbps; measured %.0fus vs %.0fus, "
        "crossover @%.0f Mbps"
        % (
            spread_orig.latency_at(100),
            spread_accel.latency_at(100),
            crossover_point(spread_orig, spread_accel),
        )
    )
