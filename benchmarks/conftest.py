"""Benchmark-suite plumbing.

Every figure benchmark registers its reproduced series in
``repro.bench.report``; this hook prints the full paper-vs-measured
report in the pytest terminal summary (so `pytest benchmarks/
--benchmark-only` always shows the tables), and the runner also
persists them under bench_results/.
"""

from repro.bench import render_all


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    report = render_all()
    if not report.strip():
        return
    terminalreporter.section("reproduced paper figures (paper vs measured)")
    terminalreporter.write_line(report)
