"""Ablation: adaptive accelerated-window control (our extension).

The paper tunes the accelerated window by hand; `repro.core.autotune`
automates it with AIMD on the protocol's own loss feedback.  This bench
shows the tuner converging to the hand-tuned operating point: starting
from window 1 (nearly-original behaviour), the autotuned ring ends up
matching the hand-tuned ring's latency at high load on the simulated
1G testbed.
"""

from repro.bench import headline
from repro.core import AcceleratedWindowTuner, ProtocolConfig, Service, TunerConfig
from repro.net import GIGABIT
from repro.sim import SPREAD, SimCluster


def run_cluster(accel_window, autotune):
    config = ProtocolConfig(
        personal_window=20, global_window=200,
        accelerated_window=accel_window,
    )
    cluster = SimCluster(8, GIGABIT, SPREAD, config,
                         payload_size=1350, service=Service.AGREED)
    tuners = []
    if autotune:
        tuners = [
            AcceleratedWindowTuner(node.participant, TunerConfig(epoch_rounds=8))
            for node in cluster.nodes.values()
        ]
    cluster.inject_at_rate(800e6, duration_s=0.2)
    result = cluster.run(0.2, warmup_s=0.1, offered_bps=800e6)
    final_windows = [n.participant.accelerated_window
                     for n in cluster.nodes.values()]
    return result, final_windows, tuners


def run_all():
    fixed_good, _w, _t = run_cluster(accel_window=15, autotune=False)
    fixed_tiny, _w, _t = run_cluster(accel_window=1, autotune=False)
    tuned, windows, tuners = run_cluster(accel_window=1, autotune=True)
    return fixed_good, fixed_tiny, tuned, windows, tuners


def test_autotune_converges_to_hand_tuned(benchmark):
    fixed_good, fixed_tiny, tuned, windows, tuners = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # A tiny fixed window cannot sustain 800 Mbps with flat latency...
    assert fixed_tiny.saturated or fixed_tiny.latency_us > fixed_good.latency_us * 3

    # ...but the autotuner grows from the same starting point to a
    # window that sustains the load near the hand-tuned latency.
    assert not tuned.saturated
    assert tuned.latency_us < fixed_good.latency_us * 2.5, (
        tuned.latency_us, fixed_good.latency_us,
    )
    assert min(windows) > 1, windows
    assert sum(t.increases for t in tuners) > 0

    headline(
        "* ablation autotune @800 Mbps 1G Spread: hand-tuned w=15 %.0fus; "
        "fixed w=1 %s; AIMD from w=1 -> windows %s, %.0fus"
        % (
            fixed_good.latency_us,
            "SAT" if fixed_tiny.saturated else "%.0fus" % fixed_tiny.latency_us,
            sorted(set(windows)),
            tuned.latency_us,
        )
    )
