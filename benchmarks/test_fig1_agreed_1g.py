"""Figure 1: Agreed delivery latency vs throughput, 1-gigabit network.

Paper shape: six curves (library/daemon/Spread x original/accelerated).
The original protocol's latency climbs steeply in the 500-700 Mbps
range; the accelerated protocol stays flat to ~900 Mbps and practically
saturates the network (>90% payload utilization).  Spread with the
original protocol has distinctly higher latency than the prototypes
(inline client delivery on the token's critical path); that gap
disappears under acceleration.
"""

from repro.bench import (
    headline,
    make_fig1,
    persist_figure,
    register,
    run_sweep,
    series_label,
)


def run_figure():
    figure = run_sweep(make_fig1())
    register(figure)
    persist_figure(figure)
    return figure


def test_fig1_agreed_1g(benchmark):
    figure = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    spread_orig = figure.series["spread/original"]
    spread_accel = figure.series["spread/accelerated"]
    lib_orig = figure.series["library/original"]
    lib_accel = figure.series["library/accelerated"]

    # --- accelerated saturates the 1G network (paper: >920 Mbps). ---
    accel_max = spread_accel.max_stable_throughput()
    assert accel_max >= 850, "accelerated Spread max %.0f < 850 Mbps" % accel_max
    headline(
        "* fig1 1G Spread max throughput: paper >920 Mbps accel vs ~800 orig; "
        "measured %.0f accel vs %.0f orig"
        % (accel_max, spread_orig.max_stable_throughput())
    )

    # --- original hits its knee well below the accelerated protocol. ---
    # At 800 Mbps offered, the original's latency must be several times
    # the accelerated protocol's (paper: 720 us accel vs rapidly climbing
    # original at this range).
    orig_800 = spread_orig.latency_at(800)
    accel_800 = spread_accel.latency_at(800)
    assert orig_800 is not None and accel_800 is not None
    assert accel_800 < orig_800 * 0.6, (
        "accelerated latency at 800 Mbps (%.0f us) should be <60%% of the "
        "original's (%.0f us)" % (accel_800, orig_800)
    )

    # --- simultaneous improvement (the paper's headline form). ---
    # The paper reports Spread improving throughput 60% and latency >45%
    # simultaneously (800 Mbps @720us accel vs 500 Mbps @1.3ms orig).
    # Compare accel latency at a HIGHER throughput to the original's at
    # a LOWER one.
    orig_500 = spread_orig.latency_at(500)
    assert orig_500 is not None
    assert accel_800 < orig_500, (
        "accelerated at 800 Mbps (%.0f us) should beat original at "
        "500 Mbps (%.0f us)" % (accel_800, orig_500)
    )
    headline(
        "* fig1 simultaneous improvement: paper accel@800 (720us) beats "
        "orig@500 (1300us); measured accel@800 %.0fus vs orig@500 %.0fus"
        % (accel_800, orig_500)
    )

    # --- Spread-vs-prototype gap exists under original, vanishes under
    #     acceleration (paper Section IV-A-1 discussion). ---
    low = 100.0
    spread_gap_orig = spread_orig.latency_at(low) - lib_orig.latency_at(low)
    spread_gap_accel = spread_accel.latency_at(low) - lib_accel.latency_at(low)
    assert spread_gap_orig > 0
    assert spread_gap_accel < spread_gap_orig, (
        "acceleration should shrink the Spread-vs-library latency gap "
        "(orig gap %.0f us, accel gap %.0f us)"
        % (spread_gap_orig, spread_gap_accel)
    )

    # --- every curve is monotone-ish: latency grows with load. ---
    for label, series in figure.series.items():
        stable = series.stable_points()
        assert len(stable) >= 3, "series %s has too few stable points" % label
        assert stable[-1].latency_us > stable[0].latency_us, (
            "latency did not grow with load for %s" % label
        )
