"""Figure 6: 1350 vs 8850-byte payloads, 10G, Safe, accelerated.

Paper shape: same as Figure 4 for the Safe service — the benefit of
larger datagrams comes from amortizing processing costs, so it is
ordered by implementation overhead and similar for Safe delivery.
"""

from repro.bench import (
    headline,
    make_fig6,
    persist_figure,
    register,
    run_sweep,
)


def run_figures():
    small_spec, large_spec = make_fig6()
    small = run_sweep(small_spec)
    large = run_sweep(large_spec)
    register(small)
    register(large)
    persist_figure(small)
    persist_figure(large)
    return small, large


def test_fig6_large_payloads_safe(benchmark):
    small, large = benchmark.pedantic(run_figures, rounds=1, iterations=1)

    gains = {}
    for profile in ("library", "daemon", "spread"):
        small_max = small.series["%s/accelerated" % profile].max_stable_throughput()
        large_max = large.series["%s/accelerated" % profile].max_stable_throughput()
        assert large_max > small_max * 1.2, (
            "%s Safe: 8850B max %.0f should clearly exceed 1350B max %.0f"
            % (profile, large_max, small_max)
        )
        gains[profile] = large_max / small_max

    assert gains["spread"] > gains["library"], gains
    headline(
        "* fig6 8850B gains (Safe): paper 'improvements similar to Agreed'; "
        "measured Spread +%.0f%% / daemon +%.0f%% / library +%.0f%%"
        % (
            (gains["spread"] - 1) * 100,
            (gains["daemon"] - 1) * 100,
            (gains["library"] - 1) * 100,
        )
    )
