"""Ablation: switch buffering vs the accelerated window.

The paper's Section I: the accelerated protocol "compensates for, and
even benefits from, the switch buffering" — overlapped multicasting
parks bursts in the per-port output queues.  Shrink the buffers and
aggressive overlap starts dropping frames (Section III-C's warning
about excessive overlap); with generous buffers the same window is
loss-free.
"""

from repro.bench import headline
from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point


def run_buffer_sweep():
    config = ProtocolConfig(
        personal_window=40, global_window=400, accelerated_window=40,
    )
    results = {}
    for buffer_kb in (8, 24, 64, 384):
        spec = GIGABIT.with_overrides(port_buffer_bytes=buffer_kb * 1024)
        # Drive the ring at full tilt: the accelerated window only
        # pressures the buffers when whole windows are in flight.
        results[buffer_kb] = run_point(
            config, SPREAD, spec, 950e6,
            service=Service.AGREED, duration_s=0.15, warmup_s=0.05,
        )
    return results


def test_switch_buffer_ablation(benchmark):
    results = benchmark.pedantic(run_buffer_sweep, rounds=1, iterations=1)

    drops = {kb: r.switch_drops for kb, r in results.items()}
    achieved = {kb: r.achieved_mbps for kb, r in results.items()}
    retransmissions = {kb: r.retransmissions for kb, r in results.items()}

    # Tiny buffers cannot absorb the overlapped bursts: loss appears and
    # goodput collapses.
    assert drops[8] > 0, drops
    assert achieved[8] < achieved[384] * 0.7, achieved
    # The protocol keeps recovering (retransmissions) rather than stalling.
    assert retransmissions[8] > 0
    # Adequate buffers absorb the same overlap without loss — the
    # "benefits from switch buffering" claim of Section I.
    assert drops[64] == 0 and drops[384] == 0, drops
    assert achieved[384] >= 900, achieved

    headline(
        "* ablation switch buffer @950 Mbps 1G, window 40: "
        + ", ".join(
            "%dKB: %d drops -> %.0f Mbps" % (kb, drops[kb], achieved[kb])
            for kb in sorted(drops)
        )
    )
