"""Figure 4: 1350 vs 8850-byte payloads, 10G, Agreed, accelerated.

Paper shape: larger UDP datagrams amortize per-message processing, so
maximum throughput rises sharply — and the gain is ordered by
processing overhead: Spread +150% (2.1 -> 5.3 Gbps), daemon +87%
(3.2 -> 6), library +58% (4.6 -> 7.3).
"""

from repro.bench import (
    headline,
    make_fig4,
    persist_figure,
    register,
    run_sweep,
)


def run_figures():
    small_spec, large_spec = make_fig4()
    small = run_sweep(small_spec)
    large = run_sweep(large_spec)
    register(small)
    register(large)
    persist_figure(small)
    persist_figure(large)
    return small, large


def test_fig4_large_payloads_agreed(benchmark):
    small, large = benchmark.pedantic(run_figures, rounds=1, iterations=1)

    gains = {}
    for profile in ("library", "daemon", "spread"):
        small_max = small.series["%s/accelerated" % profile].max_stable_throughput()
        large_max = large.series["%s/accelerated" % profile].max_stable_throughput()
        assert large_max > small_max * 1.2, (
            "%s: 8850B max %.0f should clearly exceed 1350B max %.0f"
            % (profile, large_max, small_max)
        )
        gains[profile] = large_max / small_max

    # The gain ordering follows processing overhead (paper: Spread 2.5x,
    # daemon 1.87x, library 1.58x).
    assert gains["spread"] > gains["library"], gains
    assert gains["daemon"] > gains["library"], gains
    headline(
        "* fig4 8850B gains (Agreed): paper Spread +150%% / daemon +87%% / "
        "library +58%%; measured +%.0f%% / +%.0f%% / +%.0f%%"
        % (
            (gains["spread"] - 1) * 100,
            (gains["daemon"] - 1) * 100,
            (gains["library"] - 1) * 100,
        )
    )
