"""Jumbo-coalescing sweep: throughput/latency/CPU vs the datagram cap.

Not a paper figure; characterizes the jumbo-datagram layer
(:mod:`repro.core.coalesce`) on the packet-level simulator.  For each
coalescing cap the same saturating workload runs twice (best-of-two CPU
sample) and three quantities are recorded:

* the *modeled* metrics — achieved throughput and delivery latency on
  the simulated gigabit fabric, where coalescing trades a latency bump
  for fewer, larger datagrams;
* the *sim-path* throughput — delivered messages per CPU second of
  simulator execution.  Coalescing removes a per-packet chain of
  simulated events (NIC serialize, switch enqueue/forward, socket
  wake, receive pause), so the simulator itself gets materially faster
  per delivered message; this is the speedup a real daemon's syscall
  amortization models.

Results land in ``bench_results/jumbo_sweep.json``.  The acceptance
bar: at the default 8850-byte cap the sim-path throughput must be at
least 1.5x the uncoalesced baseline, with identical modeled goodput.
"""

import json
import os
import time

from repro.core import DEFAULT_JUMBO_BYTES, ProtocolConfig
from repro.net import GIGABIT
from repro.sim import SPREAD, SimCluster

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
REPEATS = 2

#: Coalescing caps swept, in bytes; None disables (the baseline).
CAPS = (None, 4425, DEFAULT_JUMBO_BYTES, 17700, 35400)

N_NODES = 4
OFFERED_BPS = 1100e6  # just past gigabit line rate: every flush bursts
DURATION_S = 0.05
WARMUP_S = 0.01
PAYLOAD_SIZE = 1350


def _run_once(cap):
    config = ProtocolConfig.accelerated(
        accelerated_window=20, jumbo_datagram_bytes=cap)
    cluster = SimCluster(N_NODES, GIGABIT, SPREAD, config, seed=1,
                         payload_size=PAYLOAD_SIZE)
    delivered = [0]
    for node in cluster.nodes.values():
        node._deliver_callback = lambda p, m: delivered.__setitem__(
            0, delivered[0] + 1)
    cluster.inject_at_rate(OFFERED_BPS, duration_s=DURATION_S)
    start = time.process_time()
    result = cluster.run(DURATION_S, warmup_s=WARMUP_S,
                         offered_bps=OFFERED_BPS)
    cpu_s = time.process_time() - start
    frames = sum(n.nic.frames_sent for n in cluster.nodes.values())
    return {
        "cap_bytes": cap,
        "achieved_mbps": result.achieved_bps / 1e6,
        "latency_mean_ms": result.latency.mean_s * 1e3,
        "latency_p99_ms": result.latency.p99_s * 1e3,
        "frames_sent": frames,
        "delivered": delivered[0],
        "sim_cpu_s": cpu_s,
        "delivered_per_cpu_s": delivered[0] / cpu_s if cpu_s > 0 else 0.0,
    }


def _run_cap(cap):
    """Best-of-REPEATS on CPU throughput; modeled metrics are identical
    across repeats (the simulator is deterministic)."""
    best = None
    for _ in range(REPEATS):
        row = _run_once(cap)
        if best is None or row["delivered_per_cpu_s"] > best["delivered_per_cpu_s"]:
            best = row
    return best


def test_jumbo_sweep():
    rows = [_run_cap(cap) for cap in CAPS]
    baseline = rows[0]
    by_cap = {row["cap_bytes"]: row for row in rows}
    default = by_cap[DEFAULT_JUMBO_BYTES]

    record = {
        "benchmark": "jumbo_sweep",
        "n_nodes": N_NODES,
        "profile": "spread",
        "link": GIGABIT.name,
        "payload_size": PAYLOAD_SIZE,
        "offered_mbps": OFFERED_BPS / 1e6,
        "duration_s": DURATION_S,
        "warmup_s": WARMUP_S,
        "repeats": REPEATS,
        "default_cap_bytes": DEFAULT_JUMBO_BYTES,
        "sim_path_speedup_at_default": round(
            default["delivered_per_cpu_s"] / baseline["delivered_per_cpu_s"], 3),
        "sweep": [
            {**row,
             "achieved_mbps": round(row["achieved_mbps"], 1),
             "latency_mean_ms": round(row["latency_mean_ms"], 4),
             "latency_p99_ms": round(row["latency_p99_ms"], 4),
             "sim_cpu_s": round(row["sim_cpu_s"], 4),
             "delivered_per_cpu_s": round(row["delivered_per_cpu_s"])}
            for row in rows
        ],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "jumbo_sweep.json"), "w") as handle:
        json.dump(record, handle, indent=1)

    # Up to the default cap, coalescing is pure transport framing: the
    # modeled goodput must not move.  (Past it the sweep deliberately
    # shows the downside — many-fragment bursts cost goodput and
    # latency, which is why 8850 is the default and not 35400.)
    import pytest
    for row in rows[1:]:
        if row["cap_bytes"] <= DEFAULT_JUMBO_BYTES:
            assert row["achieved_mbps"] == \
                pytest.approx(baseline["achieved_mbps"], rel=0.05), record

    # Materially fewer datagrams on the wire at the default cap...
    assert default["frames_sent"] < baseline["frames_sent"] * 0.7, record

    # ...and the acceptance bar: >= 1.5x sim-path throughput.
    assert default["delivered_per_cpu_s"] >= \
        1.5 * baseline["delivered_per_cpu_s"], record
