"""Figure 5: Safe delivery latency vs throughput, 10-gigabit network.

Paper shape: same implementation ordering as Figure 3 with higher
latencies for the stronger service and slightly higher maxima (delivery
is off the critical path for Safe).  Daemon prototype: original 2.5
Gbps @1.5ms vs accelerated 3.1 Gbps @980us — both axes improved.
"""

from repro.bench import (
    headline,
    make_fig5,
    persist_figure,
    register,
    run_sweep,
)


def run_figure():
    figure = run_sweep(make_fig5())
    register(figure)
    persist_figure(figure)
    return figure


def test_fig5_safe_10g(benchmark):
    figure = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    maxima = {
        profile: figure.series["%s/accelerated" % profile].max_stable_throughput()
        for profile in ("library", "daemon", "spread")
    }
    assert maxima["library"] > maxima["daemon"] > maxima["spread"], maxima

    # Acceleration improves latency at moderate-to-high load for every
    # implementation (the low-load crossover is Figure 7's subject).
    for profile in ("library", "daemon", "spread"):
        orig = figure.series["%s/original" % profile]
        accel = figure.series["%s/accelerated" % profile]
        for point in orig.stable_points():
            if point.offered_mbps < 1000:
                continue
            accel_latency = accel.latency_at(point.offered_mbps)
            if accel_latency is None:
                continue
            assert accel_latency < point.latency_us, (
                "%s @%.0f Mbps: accel %.0f us not below orig %.0f us"
                % (profile, point.offered_mbps, accel_latency, point.latency_us)
            )

    daemon_orig = figure.series["daemon/original"]
    daemon_accel = figure.series["daemon/accelerated"]
    orig_2000 = daemon_orig.latency_at(2000)
    accel_3000 = daemon_accel.latency_at(3000)
    assert accel_3000 is not None and orig_2000 is not None
    assert accel_3000 < orig_2000 * 1.1, (
        "daemon Safe: accel@3G (%.0f us) should be at or below orig@2G "
        "(%.0f us)" % (accel_3000, orig_2000)
    )
    headline(
        "* fig5 daemon Safe: paper accel 3.1G@980us vs orig 2.5G@1.5ms; "
        "measured accel@3G %.0fus vs orig@2G %.0fus"
        % (accel_3000, orig_2000)
    )
