"""Kernel throughput microbenchmark: simulator events per CPU second.

Not a paper figure; tracks the discrete-event kernel's hot-path speed,
which bounds how fast every sweep in this repo runs.  The measured
events/sec is written to ``bench_results/kernel.json`` so CI can archive
the number per commit and regressions show up as a trend, not a guess.

Two workloads are measured:

* ``kernel_dispatch`` — the kernel alone: a fixed process population
  exercising every entry type the run loop dispatches on (calendar
  sleeps, zero-delay two-hop resumes, signal waits and fires, scheduled
  callbacks) with no protocol logic on top.  This is the kernel's event
  dispatch rate — the quantity the array-backed ready queue and
  per-event-type dispatch in :mod:`repro.net.engine` optimize — and the
  headline ``events_per_sec_best``.
* ``sim_8node_gigabit`` — a fixed 8-node accelerated-ring simulation,
  the event mix representative of real sweeps (protocol state machine,
  switch and NIC models included).  This bounds end-to-end sweep speed
  and is reported as ``sim_events_per_sec_best``.

Measured with ``time.process_time`` (CPU time, not wall-clock) because
benchmark machines are noisy and often shared.
"""

import json
import os
import time

from repro.core import ProtocolConfig
from repro.net import GIGABIT
from repro.net.engine import Signal, Simulator, Timeout
from repro.sim import SPREAD
from repro.sim.cluster import SimCluster

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
REPEATS = 3
DURATION_S = 0.1
OFFERED_BPS = 600e6
DISPATCH_DURATION_S = 0.5


def _one_run():
    config = ProtocolConfig.accelerated(personal_window=15, accelerated_window=10)
    cluster = SimCluster(8, GIGABIT, SPREAD, config, seed=1)
    cluster.inject_at_rate(OFFERED_BPS, DURATION_S)
    start = time.process_time()
    cluster.run(DURATION_S, 0.03, offered_bps=OFFERED_BPS)
    elapsed = time.process_time() - start
    return cluster.sim.event_count, elapsed


def _one_dispatch_run(run_s=DISPATCH_DURATION_S):
    """Kernel-only workload: every dispatch type, no protocol on top.

    16 sleeper processes cycle through cached-Timeout calendar sleeps,
    periodic zero-delay yields (the two-hop ready-queue path), signal
    fires and signal waits; one ticker schedules a plain callback per
    microsecond.  Deterministic: no randomness, fixed interleaving.
    """
    sim = Simulator()
    pause = Timeout(1e-6)
    zero = Timeout(0.0)
    signals = [Signal(sim, "s%d" % i) for i in range(8)]

    def sleeper(idx):
        sig = signals[idx % 8]
        peer = signals[(idx + 1) % 8]
        i = 0
        while True:
            yield pause          # calendar event + ready-queue resume
            i += 1
            if not (i & 7):
                peer.fire()      # wake any waiter on the peer signal
                yield zero       # zero-delay two-hop resume
            if not (i & 15):
                yield sig        # block until a peer fires us

    def ticker():
        noop = lambda: None  # noqa: E731 - minimal callback target
        while True:
            yield pause
            sim.call_in(1e-6, noop)

    for i in range(16):
        sim.spawn(sleeper(i), "p%d" % i)
    sim.spawn(ticker(), "tick")
    start = time.process_time()
    sim.run(until=run_s)
    elapsed = time.process_time() - start
    return sim.event_count, elapsed


def test_kernel_events_per_sec():
    # Warm-up passes so import/alloc costs don't pollute the first sample.
    _one_dispatch_run(0.05)
    _one_run()

    dispatch_samples = []
    for _ in range(REPEATS):
        events, elapsed = _one_dispatch_run()
        assert events > 100_000, "dispatch workload too small to measure"
        dispatch_samples.append(events / elapsed)
    dispatch_events = events

    sim_samples = []
    for _ in range(REPEATS):
        events, elapsed = _one_run()
        assert events > 100_000, "sim workload too small to measure"
        sim_samples.append(events / elapsed)

    best = max(dispatch_samples)
    sim_best = max(sim_samples)
    record = {
        "benchmark": "kernel_events_per_sec",
        "events_per_sec_best": round(best),
        "events_per_sec_samples": [round(s) for s in dispatch_samples],
        "dispatch_events_per_run": dispatch_events,
        "dispatch_duration_s": DISPATCH_DURATION_S,
        "sim_events_per_sec_best": round(sim_best),
        "sim_events_per_sec_samples": [round(s) for s in sim_samples],
        "events_per_run": events,
        "repeats": REPEATS,
        "sim_duration_s": DURATION_S,
        "offered_bps": OFFERED_BPS,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "kernel.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    # Generous floors: catch order-of-magnitude regressions without
    # flaking on slow CI machines (the recorded JSON is the real signal).
    assert best > 200_000
    assert sim_best > 50_000
