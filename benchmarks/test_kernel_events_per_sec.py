"""Kernel throughput microbenchmark: simulator events per CPU second.

Not a paper figure; tracks the discrete-event kernel's hot-path speed,
which bounds how fast every sweep in this repo runs.  The measured
events/sec is written to ``bench_results/kernel.json`` so CI can archive
the number per commit and regressions show up as a trend, not a guess.

Measured with ``time.process_time`` (CPU time, not wall-clock) because
benchmark machines are noisy and often shared; the workload is a fixed
8-node accelerated-ring simulation, so the event mix is representative
of real sweeps rather than a synthetic timer loop.
"""

import json
import os
import time

from repro.core import ProtocolConfig
from repro.net import GIGABIT
from repro.sim import SPREAD
from repro.sim.cluster import SimCluster

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
REPEATS = 3
DURATION_S = 0.1
OFFERED_BPS = 600e6


def _one_run():
    config = ProtocolConfig.accelerated(personal_window=15, accelerated_window=10)
    cluster = SimCluster(8, GIGABIT, SPREAD, config, seed=1)
    cluster.inject_at_rate(OFFERED_BPS, DURATION_S)
    start = time.process_time()
    cluster.run(DURATION_S, 0.03, offered_bps=OFFERED_BPS)
    elapsed = time.process_time() - start
    return cluster.sim.event_count, elapsed


def test_kernel_events_per_sec():
    # Warm-up pass so import/alloc costs don't pollute the first sample.
    _one_run()
    samples = []
    for _ in range(REPEATS):
        events, elapsed = _one_run()
        assert events > 100_000, "workload too small to measure"
        samples.append(events / elapsed)
    best = max(samples)
    record = {
        "benchmark": "kernel_events_per_sec",
        "events_per_sec_best": round(best),
        "events_per_sec_samples": [round(s) for s in samples],
        "events_per_run": events,
        "repeats": REPEATS,
        "sim_duration_s": DURATION_S,
        "offered_bps": OFFERED_BPS,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "kernel.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    # Generous floor: catches order-of-magnitude regressions without
    # flaking on slow CI machines (the recorded JSON is the real signal).
    assert best > 50_000
