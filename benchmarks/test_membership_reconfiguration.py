"""Reconfiguration latency: how fast the ring heals (extension bench).

Not a paper figure, but the paper's Section I credits token protocols
with "fast failure detection" as one of the token's four roles.  This
bench quantifies it on the simulated 1G testbed: time from a fail-stop
crash to all survivors operational on the reformed ring, as a function
of the token-loss detection timeout.
"""

from repro.bench import headline
from repro.core import ProtocolConfig
from repro.membership import MembershipTimeouts
from repro.net import GIGABIT
from repro.sim import LIBRARY, SimEVSCluster


def measure_reconfiguration(token_loss_ticks):
    cluster = SimEVSCluster(
        4, GIGABIT, LIBRARY,
        ProtocolConfig.accelerated(personal_window=10, accelerated_window=8),
        MembershipTimeouts(
            token_loss_ticks=token_loss_ticks,
            gather_ticks=20, commit_ticks=40, probe_interval_ticks=15,
        ),
    )
    cluster.run_until_converged(timeout_s=2.0)
    crash_at = cluster.sim.now
    cluster.nodes[1].crash()
    healed_at = cluster.run_until_converged(timeout_s=5.0)
    return healed_at - crash_at


def run_sweep():
    return {ticks: measure_reconfiguration(ticks) for ticks in (15, 30, 60)}


def test_reconfiguration_latency(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Healing time scales with the detection timeout and stays well
    # under a second for data-center-grade settings (1 tick = 1 ms).
    assert results[15] < results[60], results
    assert all(t < 1.0 for t in results.values()), results
    # Detection dominates: healing is within a few multiples of the
    # token-loss timeout itself.
    for ticks, took in results.items():
        assert took < ticks * 1e-3 * 12, (ticks, took)

    headline(
        "* membership reconfiguration after crash (4-node 1G ring): "
        + ", ".join(
            "detect=%dms -> healed in %.0fms" % (ticks, took * 1e3)
            for ticks, took in sorted(results.items())
        )
    )
