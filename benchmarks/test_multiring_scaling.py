"""Multi-ring scale-out benchmark: aggregate throughput vs ring count.

Runs the fixed per-ring workload at M in {1, 2, 4, 8} through
:func:`repro.multiring.bench.scaling_sweep` and writes the guarded
``multiring_scaling.json`` record.  The headline claims are asserted
here, not just recorded:

* near-linear scale-out — M=4 delivers >= 3.0x the M=1 aggregate
  delivered-message rate (the issue's acceptance floor; the measured
  value is ~4.0x because the rings share nothing);
* flat latency — the M=4 single-group median agreed latency stays
  within 15% of the M=1 baseline (flatness ratio >= 0.85);
* ordering is intact at every point — both the per-ring EVS oracles
  and the cross-ring merge checker must report zero violations, so a
  throughput number can never come from a run that broke the order.

Everything measured is simulated time, so the record is deterministic
for the seed and safe to guard at the normal bench-guard tolerance.
"""

import json
import os

from repro.multiring.bench import (
    DEFAULT_MS,
    scaling_sweep,
    total_violations,
    write_record,
)

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")

SCALING_FLOOR_X_M4 = 3.0
LATENCY_FLATNESS_FLOOR = 0.85


def test_multiring_scaling_record():
    record = scaling_sweep(ms=DEFAULT_MS, seed=1)

    assert total_violations(record) == 0, (
        "ordering violations during the scaling sweep: %s"
        % json.dumps(record["sweep"], indent=2)
    )
    metrics = record["metrics"]
    assert metrics["scaling_x_m4"] >= SCALING_FLOOR_X_M4, (
        "M=4 aggregate throughput scaled only %.2fx over M=1 "
        "(floor %.1fx)" % (metrics["scaling_x_m4"], SCALING_FLOOR_X_M4)
    )
    assert metrics["latency_flatness_m4"] >= LATENCY_FLATNESS_FLOOR, (
        "M=4 group latency drifted beyond 15%% of the M=1 baseline: "
        "flatness %.3f" % metrics["latency_flatness_m4"]
    )
    # No point may sit at saturation: the sweep measures sharding, and a
    # saturated ring would turn the latency axis into queueing noise.
    for entry in record["sweep"]:
        assert entry["saturated_rings"] == 0, entry
        assert entry["max_ring_lag_rounds"] <= 2, entry

    path = write_record(
        record, os.path.join(RESULTS_DIR, "multiring_scaling.json")
    )
    assert os.path.exists(path)
