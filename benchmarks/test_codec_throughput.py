"""Codec throughput microbenchmark: wire encode/decode vs pickle.

Not a paper figure; guards the claim that moving the emulation off
pickle did not make the transport hot path slower.  For the paper's
canonical 1350-byte data message the struct-packed codec must encode
and decode at least as fast as ``pickle.dumps``/``loads`` did — pickle
is the bar because it is what the transport used before the wire
format existed.

Results land in ``bench_results/codec.json`` (msgs/sec for both
directions, both serializers) so CI archives the trend per commit.
Measured with ``time.process_time`` like the kernel benchmark: CPU
time, best-of-N, immune to noisy shared runners.
"""

import json
import os
import pickle
import time

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.wire.codec import decode, encode

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
REPEATS = 5
MESSAGES_PER_SAMPLE = 20_000
PAYLOAD_SIZE = 1350  # the paper's canonical data-message payload


def _sample_messages():
    payload = (bytes(range(256)) * 6)[:PAYLOAD_SIZE]
    assert len(payload) == PAYLOAD_SIZE
    data = DataMessage(seq=912, pid=3, round=40, service=Service.AGREED,
                       payload=payload, payload_size=PAYLOAD_SIZE,
                       submitted_at=0.125)
    token = Token(ring_id=4, hop=812, seq=912, aru=902, aru_id=1, fcc=11,
                  rtr=(903, 907))
    return data, token


def _one_rate(fn, arg):
    """msgs/sec for one pass of fn applied MESSAGES_PER_SAMPLE times."""
    start = time.process_time()
    for _ in range(MESSAGES_PER_SAMPLE):
        fn(arg)
    elapsed = time.process_time() - start
    return MESSAGES_PER_SAMPLE / elapsed if elapsed > 0 else 0.0


def _best_rates(ops):
    """Best-of-REPEATS msgs/sec per op, with the repeats interleaved.

    All ops are sampled once per round, REPEATS rounds: a slow or
    throttled stretch on a shared runner then degrades every op's
    sample for that round equally, instead of penalizing whichever op
    happened to be measured during it.  Relative comparisons between
    ops (the assertions below) stay meaningful on noisy machines.
    """
    best = {name: 0.0 for name, _, _ in ops}
    for _ in range(REPEATS):
        for name, fn, arg in ops:
            best[name] = max(best[name], _one_rate(fn, arg))
    return best


def test_codec_not_slower_than_pickle_for_data_messages():
    data, token = _sample_messages()

    wire_blob = encode(data)
    pickle_blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    token_blob = encode(token)

    rates = _best_rates([
        ("wire_encode", encode, data),
        ("wire_decode", decode, wire_blob),
        ("pickle_encode",
         lambda m: pickle.dumps(m, protocol=pickle.HIGHEST_PROTOCOL), data),
        ("pickle_decode", pickle.loads, pickle_blob),
        ("wire_encode_token", encode, token),
        ("wire_decode_token", decode, token_blob),
    ])

    record = {
        "benchmark": "codec_throughput",
        "payload_size": PAYLOAD_SIZE,
        "messages_per_sample": MESSAGES_PER_SAMPLE,
        "repeats": REPEATS,
        "msgs_per_sec": {k: round(v) for k, v in rates.items()},
        "wire_bytes": len(wire_blob),
        "pickle_bytes": len(pickle_blob),
        "token_wire_bytes": len(token_blob),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "codec.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)

    # The wire format also must not bloat the datagram: pickle's framing
    # was never smaller than the fixed 60-byte header.
    assert len(wire_blob) <= len(pickle_blob)

    # The acceptance bar: not slower than the pickle path it replaced,
    # in either direction, for the canonical 1350-byte data message.
    assert rates["wire_encode"] >= rates["pickle_encode"], record
    assert rates["wire_decode"] >= rates["pickle_decode"], record
