"""Section V comparison: token ring vs a fixed-sequencer protocol.

The paper measures JGroups' sequencer-based total order at ~650 Mbps on
1G (vs Spread's ~920) with the same 8-node setup.  The structural
reason reproduces on our substrate: the sequencer handles every message
twice (receive + re-multicast), so it saturates well before the ring,
while at very low load it can undercut the ring's token-wait latency.
"""

from repro.bench import headline, tuned_configs
from repro.baselines import run_sequencer_point
from repro.core import Service
from repro.net import TEN_GIGABIT
from repro.sim import SPREAD, run_point

LOADS = (100, 500, 1000, 1500, 2000)


def run_comparison():
    accel = tuned_configs(TEN_GIGABIT)["accelerated"]
    ring_points = {}
    seq_points = {}
    for offered_mbps in LOADS:
        ring_points[offered_mbps] = run_point(
            accel, SPREAD, TEN_GIGABIT, offered_mbps * 1e6,
            duration_s=0.1, warmup_s=0.035,
        )
        seq_points[offered_mbps] = run_sequencer_point(
            SPREAD, TEN_GIGABIT, offered_mbps * 1e6,
            duration_s=0.1, warmup_s=0.035,
        )
    return ring_points, seq_points


def test_sequencer_baseline(benchmark):
    ring, seq = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # The coordinator handles every message twice, so the sequencer
    # saturates well below the ring on the CPU-bound 10G testbed
    # (paper, Section V: JGroups' total order well below Spread's max).
    assert not ring[2000].saturated
    assert seq[2000].saturated or seq[2000].achieved_bps < 1800e6

    ring_max = max(
        r.achieved_mbps for r in ring.values() if not r.saturated
    )
    seq_max = max(
        (s.achieved_bps / 1e6 for s in seq.values() if not s.saturated),
        default=0.0,
    )
    assert ring_max > seq_max * 1.2, (ring_max, seq_max)

    # At trivial load the sequencer's two hops beat waiting for a token.
    assert seq[100].latency_us < ring[100].latency_us

    headline(
        "* related work (10G, Spread profile): measured sequencer max "
        "%.0f Mbps vs ring max %.0f Mbps (paper 1G: JGroups ~650 vs "
        "Spread >920)" % (seq_max, ring_max)
    )
