"""Figure 2: Safe delivery latency vs throughput, 1-gigabit network.

Paper shape: Safe latency is several times Agreed latency (stability
needs ~two extra token rounds).  The original protocol supports up to
~600 Mbps before latency rises sharply (3.7-4.7 ms there); the
accelerated protocol reaches 800 Mbps at roughly half that latency and
achieves over 900 Mbps in all implementations.
"""

from repro.bench import (
    headline,
    make_fig2,
    persist_figure,
    register,
    run_sweep,
)


def run_figure():
    figure = run_sweep(make_fig2())
    register(figure)
    persist_figure(figure)
    return figure


def test_fig2_safe_1g(benchmark):
    figure = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    for profile in ("library", "daemon", "spread"):
        orig = figure.series["%s/original" % profile]
        accel = figure.series["%s/accelerated" % profile]

        # Accelerated achieves >850 Mbps of Safe traffic (paper: >900).
        accel_max = accel.max_stable_throughput()
        assert accel_max >= 800, (
            "%s accelerated Safe max %.0f < 800 Mbps" % (profile, accel_max)
        )

        # Simultaneous improvement: accel at 800 beats orig at 500.
        accel_800 = accel.latency_at(800)
        orig_500 = orig.latency_at(500)
        assert accel_800 is not None and orig_500 is not None
        assert accel_800 < orig_500, (
            "%s: accel@800 (%.0f us) should beat orig@500 (%.0f us)"
            % (profile, accel_800, orig_500)
        )

    spread_accel = figure.series["spread/accelerated"]
    spread_orig = figure.series["spread/original"]
    headline(
        "* fig2 1G Safe: paper orig ~600 Mbps @3.7-4.7ms vs accel 800 @~2ms; "
        "measured orig@500 %.0fus, accel@800 %.0fus, accel max %.0f Mbps"
        % (
            spread_orig.latency_at(500),
            spread_accel.latency_at(800),
            spread_accel.max_stable_throughput(),
        )
    )

    # Safe latencies must sit well above the Agreed ballpark at the same
    # load (fig1 measures ~100 us at 300 Mbps; Safe needs extra rounds).
    assert spread_accel.latency_at(300) > 150
    assert spread_orig.latency_at(300) > 300
