"""Ablation: ring size (extension bench).

The paper evaluates 8 servers; downstream users ask how the protocol
scales with ring size.  Token latency grows with the number of hops,
while aggregate throughput holds (every node still receives everything,
so per-node CPU, not ring length, bounds throughput).  The accelerated
protocol's latency advantage *grows* with ring size — more hops means
more per-hop dead time for the original protocol to waste.
"""

from repro.bench import headline, tuned_configs
from repro.core import Service
from repro.net import GIGABIT
from repro.sim import LIBRARY, run_point

SIZES = (4, 8, 16, 24)


def run_sizes():
    configs = tuned_configs(GIGABIT)
    results = {}
    for n_nodes in SIZES:
        for protocol, config in configs.items():
            results[(n_nodes, protocol)] = run_point(
                config, LIBRARY, GIGABIT, 500e6,
                n_nodes=n_nodes, duration_s=0.1, warmup_s=0.03,
            )
    return results


def test_ring_size_ablation(benchmark):
    results = benchmark.pedantic(run_sizes, rounds=1, iterations=1)

    # Everyone sustains the load at every size.
    for key, result in results.items():
        assert not result.saturated, key

    # Latency grows with ring size for both protocols...
    for protocol in ("original", "accelerated"):
        latencies = [results[(n, protocol)].latency_us for n in SIZES]
        assert latencies == sorted(latencies), (protocol, latencies)

    # ...but the accelerated advantage grows with the hop count.
    gaps = {
        n: results[(n, "original")].latency_us
        - results[(n, "accelerated")].latency_us
        for n in SIZES
    }
    assert gaps[24] > gaps[4], gaps
    for n in SIZES:
        assert results[(n, "accelerated")].latency_us < \
            results[(n, "original")].latency_us, n

    headline(
        "* ablation ring size @500 Mbps 1G library: "
        + "; ".join(
            "n=%d orig %.0fus accel %.0fus" % (
                n,
                results[(n, "original")].latency_us,
                results[(n, "accelerated")].latency_us,
            )
            for n in SIZES
        )
    )
