"""Ablation: Spread's small-message packing (Section IV-A-3).

The paper notes Spread "includes a built-in ability to pack small
messages into a single protocol packet" bounded by the MTU.  This bench
sends small (200-byte) messages on the 1G testbed with packing on and
off: packing amortizes per-packet CPU and per-datagram wire overhead
across ~6 messages, multiplying the achievable small-message
throughput.
"""

from repro.bench import headline
from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point

PAYLOAD = 200


def probe_max(pack):
    config = ProtocolConfig(
        personal_window=30, global_window=300, accelerated_window=20,
        pack_messages=pack,
    )
    best = 0.0
    best_latency = 0.0
    for offered_mbps in (50, 100, 200, 300, 400, 500, 600, 700):
        result = run_point(
            config, SPREAD, GIGABIT, offered_mbps * 1e6,
            payload_size=PAYLOAD, service=Service.AGREED,
            duration_s=0.12, warmup_s=0.04,
        )
        if result.saturated:
            break
        best = result.achieved_mbps
        best_latency = result.latency_us
    return best, best_latency


def run_comparison():
    return {
        "packed": probe_max(pack=True),
        "plain": probe_max(pack=False),
    }


def test_packing_ablation(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    packed_max, packed_latency = results["packed"]
    plain_max, _plain_latency = results["plain"]

    # Packing multiplies small-message goodput (>=1.5x here; real Spread
    # sees similar factors for sub-MTU messages).
    assert packed_max > plain_max * 1.5, results
    assert packed_max >= 300, results

    headline(
        "* ablation packing (200B messages, 1G Spread): plain max %.0f Mbps "
        "vs packed max %.0f Mbps (%.1fx)"
        % (plain_max, packed_max, packed_max / max(plain_max, 1e-9))
    )
