"""Observability overhead microbenchmark: tracing on vs off.

The lifecycle tracer and metrics registry promise to be no-op-cheap
when disabled: the registry binds *views* over counters the hot paths
already increment, and the drivers' trace hooks cost one ``is not
None`` test per action when no tracer is attached.  This benchmark
pins both claims with numbers:

* ``sim_events_per_sec_off_best`` — the representative 8-node sim mix
  (the same workload as ``kernel.json``'s ``sim_events_per_sec_best``)
  with no tracer attached.  The bench guard holds this to the same
  envelope as the kernel record, so "tracing off" can never quietly
  become "tracing cheap".
* ``sim_events_per_sec_on_best`` — the identical seeded run with a
  lifecycle tracer attached and every hub/driver stage stamping.
* ``tracing_throughput_ratio`` — on/off; the committed record must
  stay >= 0.90 (<= 10% overhead with tracing ON, the issue's target);
  the in-test floor is looser so slow shared CI boxes don't flake.

Measured with ``time.process_time`` (CPU time, not wall-clock), best
of three, like the other microbenchmarks.
"""

import gc
import json
import os
import time

from repro.core import ProtocolConfig
from repro.net import GIGABIT
from repro.sim import SPREAD
from repro.sim.cluster import SimCluster

RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
# Five repeats, not three: the ratio divides two best-of measurements,
# so both mins must converge for the recorded overhead to be honest.
REPEATS = 5
DURATION_S = 0.1
OFFERED_BPS = 600e6


def _one_run(traced):
    config = ProtocolConfig.accelerated(
        personal_window=15, accelerated_window=10
    )
    cluster = SimCluster(8, GIGABIT, SPREAD, config, seed=1)
    tracer = cluster.attach_tracer(label="obs-overhead") if traced else None
    cluster.inject_at_rate(OFFERED_BPS, DURATION_S)
    # Drain garbage from the previous run (dead clusters hold reference
    # cycles) so a mid-measurement full collection doesn't land on one
    # sample and not its pair.
    gc.collect()
    start = time.process_time()
    cluster.run(DURATION_S, 0.03, offered_bps=OFFERED_BPS)
    elapsed = time.process_time() - start
    records = len(tracer) if tracer is not None else 0
    return cluster.sim.event_count, elapsed, records


def test_obs_overhead():
    # Warm-up pass so import/alloc costs don't pollute the first sample.
    _one_run(traced=False)

    off_samples = []
    on_samples = []
    trace_records = 0
    for _ in range(REPEATS):
        events, elapsed, _records = _one_run(traced=False)
        assert events > 100_000, "workload too small to measure"
        off_samples.append(events / elapsed)
        events_on, elapsed_on, trace_records = _one_run(traced=True)
        # Tracing must not change the simulation itself, only observe it.
        assert events_on == events, (
            "tracer perturbed the event stream: %d vs %d"
            % (events_on, events)
        )
        on_samples.append(events_on / elapsed_on)

    off_best = max(off_samples)
    on_best = max(on_samples)
    ratio = on_best / off_best
    record = {
        "benchmark": "obs_overhead",
        "sim_events_per_sec_off_best": round(off_best),
        "sim_events_per_sec_off_samples": [round(s) for s in off_samples],
        "sim_events_per_sec_on_best": round(on_best),
        "sim_events_per_sec_on_samples": [round(s) for s in on_samples],
        "tracing_throughput_ratio": round(ratio, 4),
        "tracing_overhead_frac": round(1.0 - ratio, 4),
        "trace_records_per_run": trace_records,
        "events_per_run": events,
        "repeats": REPEATS,
        "sim_duration_s": DURATION_S,
        "offered_bps": OFFERED_BPS,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "obs_overhead.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    assert trace_records > 10_000, "tracer stamped suspiciously little"
    # Loose in-test floor (the guard holds the committed record to the
    # real <= 10% target); CPU-time noise on shared boxes stays under it.
    assert ratio > 0.75, (
        "tracing overhead %.1f%% is past the in-test 25%% floor"
        % ((1.0 - ratio) * 100.0)
    )
    assert off_best > 50_000
