"""Ablation: token-priority Method 1 (aggressive) vs Method 2
(conservative), Section III-C of the paper.

The paper uses Method 1 in the prototypes (fastest when tuned) and
Method 2 in production Spread (stable, misconfiguration-tolerant, and
identical to the original protocol at window 0).  Both must be correct;
Method 1 should rotate the token at least as fast.
"""

from repro.bench import headline
from repro.core import PriorityMethod, ProtocolConfig, Service
from repro.net import TEN_GIGABIT
from repro.sim import DAEMON, run_point


def config_for(method):
    return ProtocolConfig(
        personal_window=40, global_window=400, accelerated_window=30,
        priority_method=method,
    )


def run_methods():
    results = {}
    for method in PriorityMethod:
        results[method] = run_point(
            config_for(method), DAEMON, TEN_GIGABIT, 2500e6,
            service=Service.AGREED, duration_s=0.1, warmup_s=0.035,
        )
    return results


def test_priority_method_ablation(benchmark):
    results = benchmark.pedantic(run_methods, rounds=1, iterations=1)
    aggressive = results[PriorityMethod.AGGRESSIVE]
    conservative = results[PriorityMethod.CONSERVATIVE]

    # Both sustain the load correctly.
    assert not aggressive.saturated
    assert not conservative.saturated

    # Method 1 rotates the token at least as fast (it raises token
    # priority earlier in the stream).
    assert aggressive.rounds_per_s >= conservative.rounds_per_s * 0.95, (
        aggressive.rounds_per_s, conservative.rounds_per_s,
    )

    # Neither may cause unnecessary retransmissions in a loss-free run.
    assert aggressive.retransmissions == 0
    assert conservative.retransmissions == 0

    headline(
        "* ablation priority methods @2.5G 10G daemon: aggressive %.0fus "
        "%.0f rounds/s vs conservative %.0fus %.0f rounds/s"
        % (
            aggressive.latency_us, aggressive.rounds_per_s,
            conservative.latency_us, conservative.rounds_per_s,
        )
    )
