"""Micro-benchmarks of the sans-IO protocol engine.

Not a paper figure; quantifies the per-operation cost of the protocol
core itself (supports the Section IV discussion of processing costs).
These use pytest-benchmark's statistics for real over many rounds.
"""

from repro.core import (
    Participant,
    ProtocolConfig,
    Ring,
    Service,
    initial_token,
    token_of,
)
from repro.core.messages import DataMessage


def fresh_participant(**config_kw):
    ring = Ring.of(range(8))
    return Participant(0, ring, ProtocolConfig(**config_kw))


def test_on_token_idle(benchmark):
    participant = fresh_participant()
    state = {"token": initial_token()}

    def handle():
        actions = participant.on_token(state["token"])
        state["token"] = token_of(actions).evolve(
            hop=state["token"].hop + 8
        )

    benchmark(handle)


def test_on_token_sending_window(benchmark):
    participant = fresh_participant(personal_window=40, accelerated_window=20)
    state = {"token": initial_token()}

    def handle():
        for _i in range(40):
            participant.submit(b"x", Service.AGREED, payload_size=1350)
        actions = participant.on_token(state["token"])
        sent = token_of(actions)
        # Keep everyone caught up so buffers stay bounded.
        state["token"] = sent.evolve(hop=sent.hop + 8, aru=sent.seq)

    benchmark(handle)


def test_on_data_insert_and_deliver(benchmark):
    participant = fresh_participant()
    state = {"seq": 0}

    def handle():
        state["seq"] += 1
        message = DataMessage(
            seq=state["seq"], pid=1, round=1, service=Service.AGREED,
            payload=b"x", payload_size=1350,
        )
        participant.on_data(message)

    benchmark(handle)


def test_on_data_out_of_order(benchmark):
    participant = fresh_participant()
    state = {"base": 0}

    def handle():
        # Arrivals in pairs (n+1, n): every second message triggers a
        # catch-up delivery of two.
        base = state["base"]
        for seq in (base + 2, base + 1):
            participant.on_data(
                DataMessage(seq=seq, pid=1, round=1,
                            service=Service.AGREED, payload=b"x")
            )
        state["base"] = base + 2

    benchmark(handle)


def test_retransmission_answering(benchmark):
    participant = fresh_participant(personal_window=64, accelerated_window=0,
                                    global_window=1000)
    for _i in range(64):
        participant.submit(b"x", Service.AGREED)
    first = token_of(participant.on_token(initial_token()))
    state = {"token": first}

    def handle():
        # Every round requests the same 16 still-buffered messages.
        token = state["token"].evolve(
            hop=state["token"].hop + 8, rtr=tuple(range(1, 17))
        )
        actions = participant.on_token(token)
        state["token"] = token_of(actions)

    benchmark(handle)
