"""Historical ablation: the protocol across three network generations.

Section I of the paper: Totem achieved ~75% utilization on 10-megabit
Ethernet (1995), Spread ~80% on 100-megabit (2004), but the same design
drops to ~50% out-of-the-box on 1-gigabit — because switch-era networks
improved throughput ~10x per generation while latency improved far
less.  This bench runs the SAME original protocol on 10M and 1G
testbeds and shows the utilization collapse, then shows the accelerated
protocol restoring it — the paper's framing story, quantified.
"""

from repro.bench import headline
from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT, TEN_MEGABIT
from repro.sim import LIBRARY, run_point


def utilization_probe(spec, config, ladder, payload_size=1350):
    """Highest sustained payload utilization on a link."""
    best = 0.0
    for fraction in ladder:
        offered = fraction * spec.rate_bps
        result = run_point(
            config, LIBRARY, spec, offered,
            payload_size=payload_size, service=Service.AGREED,
            duration_s=min(0.2, 4e6 / spec.rate_bps * 100),
            warmup_s=min(0.06, 4e6 / spec.rate_bps * 30),
        )
        if result.saturated:
            break
        best = result.achieved_bps / spec.rate_bps
    return best


def run_history():
    original = ProtocolConfig.original_ring(personal_window=20)
    accelerated = ProtocolConfig.accelerated(
        personal_window=20, accelerated_window=15
    )
    ladder = (0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9)
    return {
        ("10M", "original"): utilization_probe(TEN_MEGABIT, original, ladder),
        ("1G", "original"): utilization_probe(GIGABIT, original, ladder),
        ("1G", "accelerated"): utilization_probe(GIGABIT, accelerated, ladder),
    }


def test_history_ablation(benchmark):
    results = benchmark.pedantic(run_history, rounds=1, iterations=1)

    # On 10-megabit Ethernet the ORIGINAL protocol utilizes the network
    # well — the paper quotes ~75% for Totem on 1995 hardware, and the
    # simulated substrate lands right there: serialization dwarfs the
    # per-hop token latency on a slow shared network.
    assert 0.60 <= results[("10M", "original")] <= 0.90, results

    # On 1-gigabit the accelerated protocol clearly beats the original
    # (the trade-off shift of Section I), restoring near-saturation.
    assert results[("1G", "accelerated")] > results[("1G", "original")], results
    assert results[("1G", "accelerated")] >= 0.85, results

    headline(
        "* history ablation (library profile): paper ~75%% utilization for "
        "the original protocol on 10Mbit; measured %.0f%%.  On 1G: original "
        "%.0f%% vs accelerated %.0f%%"
        % (
            results[("10M", "original")] * 100,
            results[("1G", "original")] * 100,
            results[("1G", "accelerated")] * 100,
        )
    )
