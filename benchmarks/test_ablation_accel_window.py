"""Ablation: the Accelerated_window parameter.

DESIGN.md calls this choice out: window 0 is the original protocol;
growing the window overlaps more multicasting with token passing
(higher throughput, lower latency) until switch-buffer pressure from
excessive overlap pushes back (Section III-C's warning).
"""

from repro.bench import headline, tuned_configs
from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point

WINDOWS = (0, 1, 4, 8, 15, 20)


def run_window_sweep():
    results = {}
    for window in WINDOWS:
        config = ProtocolConfig(
            personal_window=20, global_window=200,
            accelerated_window=window,
        )
        results[window] = run_point(
            config, SPREAD, GIGABIT, 800e6,
            service=Service.AGREED, duration_s=0.15, warmup_s=0.05,
        )
    return results


def test_accelerated_window_ablation(benchmark):
    results = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)

    latency = {w: r.latency_us for w, r in results.items()}
    sustained = {w: not r.saturated for w, r in results.items()}

    # Window 0 (the original protocol) cannot sustain 800 Mbps with flat
    # latency; a moderate window can.
    assert latency[15] < latency[0] * 0.5 or not sustained[0], latency
    assert sustained[15], "window 15 should sustain 800 Mbps on 1G"

    # The benefit is monotone-ish across the small windows: each step up
    # to the personal window helps or holds.
    assert latency[4] <= latency[1] * 1.2, latency
    assert latency[15] <= latency[4] * 1.2, latency

    headline(
        "* ablation accelerated_window @800 Mbps 1G Spread: "
        + ", ".join(
            "w=%d %s" % (w, ("%.0fus" % latency[w]) if sustained[w] else "SAT")
            for w in WINDOWS
        )
    )
