"""Figure 3: Agreed delivery latency vs throughput, 10-gigabit network.

Paper shape: on 10G, processing — not the network — is the bottleneck,
so the three implementations separate clearly: library > daemon >
Spread in maximum throughput.  The accelerated protocol improves both
axes; e.g. the daemon prototype sustains 2.8 Gbps at ~265 us where the
original manages 2 Gbps at ~390 us.
"""

from repro.bench import (
    headline,
    make_fig3,
    persist_figure,
    register,
    run_sweep,
)


def run_figure():
    figure = run_sweep(make_fig3())
    register(figure)
    persist_figure(figure)
    return figure


def test_fig3_agreed_10g(benchmark):
    figure = benchmark.pedantic(run_figure, rounds=1, iterations=1)

    maxima = {
        profile: figure.series["%s/accelerated" % profile].max_stable_throughput()
        for profile in ("library", "daemon", "spread")
    }
    # Implementation ordering: processing overhead separates the three.
    assert maxima["library"] > maxima["daemon"] > maxima["spread"], maxima
    headline(
        "* fig3 10G accel maxima: paper lib 4.6 / daemon 3.3 / Spread 2.3 Gbps; "
        "measured %.1f / %.1f / %.1f Gbps"
        % (maxima["library"] / 1e3, maxima["daemon"] / 1e3,
           maxima["spread"] / 1e3)
    )

    # CPU-bound maxima land in the paper's bands (coarse: within ~35%).
    paper_maxima_mbps = {"library": 4600, "daemon": 3300, "spread": 2300}
    for profile, measured in maxima.items():
        expected = paper_maxima_mbps[profile]
        assert 0.6 * expected <= measured <= 1.5 * expected, (
            "%s accel max %.0f Mbps not within band of paper's %.0f"
            % (profile, measured, expected)
        )

    # Acceleration wins on latency at every common stable load.
    for profile in ("library", "daemon", "spread"):
        orig = figure.series["%s/original" % profile]
        accel = figure.series["%s/accelerated" % profile]
        for point in orig.stable_points():
            accel_latency = accel.latency_at(point.offered_mbps)
            if accel_latency is None:
                continue
            assert accel_latency < point.latency_us, (
                "%s @%.0f Mbps: accel %.0f us not below orig %.0f us"
                % (profile, point.offered_mbps, accel_latency, point.latency_us)
            )

    # The daemon prototype's simultaneous improvement (paper: 2.8 Gbps
    # @265us accel vs 2 Gbps @390us orig): accel at 3000 beats orig at
    # 2000 on latency.
    daemon_orig = figure.series["daemon/original"]
    daemon_accel = figure.series["daemon/accelerated"]
    orig_2000 = daemon_orig.latency_at(2000)
    accel_3000 = daemon_accel.latency_at(3000)
    assert orig_2000 is not None and accel_3000 is not None
    assert accel_3000 < orig_2000, (
        "daemon accel@3G (%.0f us) should beat orig@2G (%.0f us)"
        % (accel_3000, orig_2000)
    )
    headline(
        "* fig3 daemon simultaneous improvement: paper accel 2.8G@265us vs "
        "orig 2G@390us; measured accel@3G %.0fus vs orig@2G %.0fus"
        % (accel_3000, orig_2000)
    )
