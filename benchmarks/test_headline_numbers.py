"""Headline numbers from the abstract and Section IV text.

Reproduces the maxima table the paper quotes directly (rather than as a
figure): maximum throughput per implementation and protocol on both
networks, with 1350-byte and 8850-byte payloads.
"""

import pytest

from repro.bench import headline, tuned_configs
from repro.core import Service
from repro.net import GIGABIT, TEN_GIGABIT
from repro.sim import DAEMON, LIBRARY, SPREAD, run_point

PROFILES = {"library": LIBRARY, "daemon": DAEMON, "spread": SPREAD}


def probe_max(profile, spec, config, payload_size, ladder,
              duration_s=0.1, warmup_s=0.035):
    """Climb the offered-load ladder; return the last sustained level."""
    best = 0.0
    for offered_mbps in ladder:
        result = run_point(
            config, profile, spec, offered_mbps * 1e6,
            payload_size=payload_size, service=Service.AGREED,
            duration_s=duration_s, warmup_s=warmup_s,
        )
        if result.saturated:
            break
        best = result.achieved_mbps
    return best


def run_headline_table():
    measured = {}
    ladder_1g = (500, 700, 800, 850, 900, 940)
    ladder_10g = (1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000)
    ladder_10g_big = (3000, 4000, 5000, 5500, 6000, 6500, 7000, 7500, 8000)
    for name, profile in PROFILES.items():
        for protocol, config in tuned_configs(GIGABIT).items():
            measured[("1G", name, protocol, 1350)] = probe_max(
                profile, GIGABIT, config, 1350, ladder_1g,
                duration_s=0.15, warmup_s=0.05,
            )
        for protocol, config in tuned_configs(TEN_GIGABIT).items():
            measured[("10G", name, protocol, 1350)] = probe_max(
                profile, TEN_GIGABIT, config, 1350, ladder_10g,
            )
        accel = tuned_configs(TEN_GIGABIT)["accelerated"]
        measured[("10G", name, "accelerated", 8850)] = probe_max(
            profile, TEN_GIGABIT, accel, 8850, ladder_10g_big,
        )
    return measured


def test_headline_numbers(benchmark):
    measured = benchmark.pedantic(run_headline_table, rounds=1, iterations=1)

    # 1G: accelerated saturates the network for every implementation
    # (paper: Spread reaches >920 Mbps of clean payload).
    for name in PROFILES:
        accel_1g = measured[("1G", name, "accelerated", 1350)]
        orig_1g = measured[("1G", name, "original", 1350)]
        assert accel_1g >= 850, (name, accel_1g)
        assert accel_1g > orig_1g, (name, accel_1g, orig_1g)

    # 10G 1350B: implementation ordering and acceleration benefit.
    lib = measured[("10G", "library", "accelerated", 1350)]
    daemon = measured[("10G", "daemon", "accelerated", 1350)]
    spread = measured[("10G", "spread", "accelerated", 1350)]
    assert lib > daemon > spread, (lib, daemon, spread)
    for name in PROFILES:
        # On the CPU-bound 10G substrate both protocols converge to the
        # same per-message work bound (EXPERIMENTS.md, deviation 2), so
        # the accelerated maximum is at least equal within measurement
        # granularity — its wins show up in latency at every load.
        assert (
            measured[("10G", name, "accelerated", 1350)]
            >= measured[("10G", name, "original", 1350)] * 0.97
        ), name

    # 10G 8850B maxima (paper: 7.3 / 6 / 5.3 Gbps lib/daemon/Spread).
    big = {name: measured[("10G", name, "accelerated", 8850)] for name in PROFILES}
    assert big["library"] > big["daemon"] > big["spread"], big
    assert big["daemon"] >= 4500, big  # paper: 6 Gbps; band check
    assert big["spread"] >= 3500, big  # paper: 5.3 Gbps; band check

    headline(
        "* headline 1G accel maxima (paper >920 Mbps): measured "
        + ", ".join(
            "%s %.0f" % (n, measured[("1G", n, "accelerated", 1350)])
            for n in ("library", "daemon", "spread")
        )
    )
    headline(
        "* headline 10G 1350B accel maxima (paper 4.6/3.3/2.3 Gbps): measured "
        "%.1f/%.1f/%.1f Gbps" % (lib / 1e3, daemon / 1e3, spread / 1e3)
    )
    headline(
        "* headline 10G 8850B accel maxima (paper 7.3/6/5.3 Gbps): measured "
        "%.1f/%.1f/%.1f Gbps"
        % (big["library"] / 1e3, big["daemon"] / 1e3, big["spread"] / 1e3)
    )
