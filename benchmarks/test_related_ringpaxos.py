"""Section V comparison: Accelerated Ring vs Ring Paxos on 1G.

Paper numbers: U-Ring Paxos reaches ~750 Mbps on 1-gigabit with
1350-byte messages (with batching) and "a latency profile similar to
that of the original Ring protocol for Safe delivery", while
accelerated Spread exceeds 920 Mbps.  Both protocols run on the same
simulated substrate here; Ring Paxos delivery carries quorum stability,
so the apples-to-apples ring curve is Safe delivery.
"""

from repro.baselines import run_ringpaxos_point
from repro.bench import headline, tuned_configs
from repro.core import Service
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point

LOADS = (100, 400, 600, 700, 800, 900)


def run_comparison():
    accel = tuned_configs(GIGABIT)["accelerated"]
    ring = {}
    paxos = {}
    for offered_mbps in LOADS:
        ring[offered_mbps] = run_point(
            accel, SPREAD, GIGABIT, offered_mbps * 1e6,
            service=Service.SAFE, duration_s=0.12, warmup_s=0.04,
        )
        paxos[offered_mbps] = run_ringpaxos_point(
            SPREAD, GIGABIT, offered_mbps * 1e6,
            duration_s=0.12, warmup_s=0.04,
        )
    return ring, paxos


def test_ringpaxos_baseline(benchmark):
    ring, paxos = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    ring_max = max(r.achieved_mbps for r in ring.values() if not r.saturated)
    paxos_max = max(
        (p.achieved_mbps for p in paxos.values() if not p.saturated),
        default=0.0,
    )

    # The accelerated ring clearly out-throughputs Ring Paxos (paper:
    # >920 vs ~750 Mbps), and Ring Paxos lands in the paper's zone.
    assert ring_max > paxos_max, (ring_max, paxos_max)
    assert 500 <= paxos_max <= 850, paxos_max

    # At moderate load Ring Paxos latency resembles ring-Safe latency
    # (same order of magnitude), as the paper observes.
    ring_400 = ring[400].latency_us
    paxos_400 = paxos[400].latency_us
    assert 0.2 <= paxos_400 / ring_400 <= 5.0, (paxos_400, ring_400)

    headline(
        "* related work Ring Paxos (1G, Spread profile): paper U-Ring "
        "~750 Mbps vs accel Spread >920; measured paxos max %.0f Mbps vs "
        "accel ring (Safe) max %.0f Mbps"
        % (paxos_max, ring_max)
    )
