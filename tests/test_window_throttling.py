"""Window-based throughput control — how the paper drives the library
prototype's throughput levels (Section IV-A)."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import LIBRARY, run_point


def max_with_window(personal_window):
    config = ProtocolConfig(
        personal_window=personal_window,
        global_window=max(personal_window * 8, 8),
        accelerated_window=min(personal_window, 10),
    )
    result = run_point(
        config, LIBRARY, GIGABIT, 950e6,
        duration_s=0.08, warmup_s=0.025,
    )
    return result.achieved_bps


def test_personal_window_throttles_throughput():
    # "For the library-based prototype, we controlled throughput by
    # adjusting the personal window; smaller personal windows result in
    # lower throughput."  Note the effect is sub-linear: shrinking the
    # window also shortens rounds, so the token comes back sooner.
    achieved = {w: max_with_window(w) for w in (1, 3, 20)}
    assert achieved[1] < achieved[3] <= achieved[20] * 1.05
    # A window of 1 message per node per round cannot saturate the link.
    assert achieved[1] < 700e6
    # A generous window does.
    assert achieved[20] > 800e6


def test_global_window_caps_aggregate():
    # The global window bounds messages per round; with tight values
    # throughput is window-limited far below the wire rate, and relaxing
    # it raises throughput monotonically.
    achieved = {}
    for global_window in (2, 4, 8):
        config = ProtocolConfig(
            personal_window=50, global_window=global_window,
            accelerated_window=2,
        )
        result = run_point(
            config, LIBRARY, GIGABIT, 950e6,
            duration_s=0.08, warmup_s=0.025,
        )
        achieved[global_window] = result.achieved_bps
        assert result.saturated
    assert achieved[2] < achieved[4] < achieved[8] < 700e6
