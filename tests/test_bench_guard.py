"""The benchmark regression guard: comparisons, errors, CLI exit codes."""

import json

import pytest

from repro.bench import guard


def write_records(directory, kernel=None, codec=None, churn=None, obs=None,
                  multiring=None):
    directory.mkdir(parents=True, exist_ok=True)
    kernel_record = {
        "events_per_sec_best": 3_000_000,
        "sim_events_per_sec_best": 700_000,
    }
    kernel_record.update(kernel or {})
    codec_record = {
        "msgs_per_sec": {
            "wire_encode": 400_000,
            "wire_decode": 450_000,
            "wire_encode_token": 480_000,
            "wire_decode_token": 480_000,
        },
    }
    if codec:
        codec_record["msgs_per_sec"].update(codec)
    churn_record = {
        "metrics": {
            "crash_convergence_rate_hz": 8.0,
            "rejoin_convergence_rate_hz": 50.0,
            "ctrl_traffic_headroom": 5.0,
        },
    }
    if churn:
        churn_record["metrics"].update(churn)
    obs_record = {
        "sim_events_per_sec_off_best": 700_000,
        "sim_events_per_sec_on_best": 650_000,
        "tracing_throughput_ratio": 0.93,
    }
    obs_record.update(obs or {})
    multiring_record = {
        "metrics": {
            "aggregate_msgs_per_s_m4": 118_000.0,
            "scaling_x_m4": 4.0,
            "latency_flatness_m4": 0.99,
        },
    }
    if multiring:
        multiring_record["metrics"].update(multiring)
    (directory / "kernel.json").write_text(json.dumps(kernel_record))
    (directory / "codec.json").write_text(json.dumps(codec_record))
    (directory / "churn_convergence.json").write_text(
        json.dumps(churn_record)
    )
    (directory / "obs_overhead.json").write_text(json.dumps(obs_record))
    (directory / "multiring_scaling.json").write_text(
        json.dumps(multiring_record)
    )


def test_identical_records_pass(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh")
    regressions, lines = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"))
    assert regressions == []
    assert sum(1 for _ in lines) == 15  # every guarded metric reported


def test_slowdown_within_tolerance_passes(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh", codec={"wire_decode": 380_000})  # -16%
    regressions, _ = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"))
    assert regressions == []


def test_regression_past_tolerance_fails(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh",
                  kernel={"events_per_sec_best": 2_000_000},  # -33%
                  codec={"wire_decode": 300_000})             # -33%
    regressions, _ = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"))
    assert len(regressions) == 2
    assert any("events_per_sec_best" in r for r in regressions)
    assert any("wire_decode" in r for r in regressions)


def test_improvement_is_not_a_failure(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh",
                  kernel={"events_per_sec_best": 9_000_000})
    regressions, lines = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"))
    assert regressions == []
    assert any("improved" in line for line in lines)


def test_tighter_tolerance_flags_smaller_slips(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh", codec={"wire_decode": 400_000})  # -11%
    regressions, _ = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"), tolerance=0.05)
    assert len(regressions) == 1


def test_tracing_ratio_regression_fails(tmp_path):
    write_records(tmp_path / "base")
    # Throughputs hold but the on/off ratio collapses: tracing got
    # expensive even though the box got no slower.
    write_records(tmp_path / "fresh",
                  obs={"sim_events_per_sec_on_best": 480_000,
                       "tracing_throughput_ratio": 0.69})     # -26%
    regressions, _ = guard.compare(
        str(tmp_path / "base"), str(tmp_path / "fresh"))
    assert len(regressions) == 2
    assert any("tracing_throughput_ratio" in r for r in regressions)


def test_missing_fresh_record_is_an_error(tmp_path):
    write_records(tmp_path / "base")
    (tmp_path / "fresh").mkdir()
    with pytest.raises(guard.GuardError, match="missing record"):
        guard.compare(str(tmp_path / "base"), str(tmp_path / "fresh"))


def test_missing_metric_is_an_error(tmp_path):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh")
    record = json.loads((tmp_path / "fresh" / "kernel.json").read_text())
    del record["sim_events_per_sec_best"]
    (tmp_path / "fresh" / "kernel.json").write_text(json.dumps(record))
    with pytest.raises(guard.GuardError, match="not found"):
        guard.compare(str(tmp_path / "base"), str(tmp_path / "fresh"))


def test_cli_exit_codes(tmp_path, capsys):
    write_records(tmp_path / "base")
    write_records(tmp_path / "fresh")
    ok = guard.main(["--baseline", str(tmp_path / "base"),
                     "--fresh", str(tmp_path / "fresh")])
    assert ok == 0
    assert "bench-guard passed" in capsys.readouterr().out

    write_records(tmp_path / "fresh", codec={"wire_decode": 100_000})
    failed = guard.main(["--baseline", str(tmp_path / "base"),
                         "--fresh", str(tmp_path / "fresh")])
    assert failed == 1
    assert "REGRESSION" in capsys.readouterr().out

    missing = guard.main(["--baseline", str(tmp_path / "base"),
                          "--fresh", str(tmp_path / "nowhere")])
    assert missing == 2
