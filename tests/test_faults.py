"""Fault-schedule DSL, switch partitions, and crash/restart machinery."""

import pytest

from repro.net import Frame, GIGABIT, Simulator, Switch, Traffic
from repro.sim import (
    Churn,
    Crash,
    FaultSchedule,
    FaultScheduleError,
    Flap,
    Heal,
    LossSwap,
    Partition,
    Restart,
    SimEVSCluster,
    TokenDrop,
    LIBRARY,
)
from repro.sim.campaign import shrink_schedule
from repro.sim.faults import _TokenDropFilter
from repro.core import ProtocolConfig
from repro.evs import EVSChecker
from repro.membership import MembershipTimeouts


# -- schedule DSL -----------------------------------------------------------

def test_schedule_sorts_by_time_stable():
    schedule = FaultSchedule([
        Heal(0.5), Crash(0.1, 2), TokenDrop(0.1, count=2),
    ])
    kinds = [type(e).__name__ for e in schedule.events]
    # Ties keep authoring order (Crash authored before TokenDrop).
    assert kinds == ["Crash", "TokenDrop", "Heal"]


def test_schedule_rejects_negative_times():
    with pytest.raises(FaultScheduleError):
        FaultSchedule([Crash(-0.1, 0)])
    with pytest.raises(FaultScheduleError):
        FaultSchedule().add(Heal(-1.0))


def test_schedule_without_is_the_shrinking_primitive():
    schedule = FaultSchedule([Crash(0.1, 0), Heal(0.2), TokenDrop(0.3)])
    shrunk = schedule.without(1)
    assert len(shrunk) == 2
    assert [type(e) for e in shrunk.events] == [Crash, TokenDrop]
    # The original is untouched.
    assert len(schedule) == 3


def test_schedule_json_roundtrip():
    schedule = FaultSchedule([
        Crash(0.1, 2),
        Restart(0.4, 2),
        Partition(0.2, ((0, 1), (2,))),
        Heal(0.3),
        TokenDrop(0.15, count=3),
        LossSwap(0.25, model="bernoulli", p=0.01, seed=42, pids=(0, 2)),
    ])
    data = schedule.to_jsonable()
    rebuilt = FaultSchedule.from_jsonable(data)
    assert rebuilt.events == schedule.events
    # to_jsonable output is plain JSON types (lists, not tuples).
    partition_entry = next(e for e in data if e["kind"] == "partition")
    assert partition_entry["groups"] == [[0, 1], [2]]


def test_schedule_rejects_unknown_kind():
    with pytest.raises(FaultScheduleError):
        FaultSchedule.from_jsonable([{"kind": "meteor", "at_s": 0.1}])


def test_schedule_install_fires_events_in_order():
    calls = []

    class DummySwitch:
        host_ids = [0, 1]

        def add_fault_filter(self, predicate):
            calls.append(("filter", predicate.remaining))

        def set_port_loss(self, pid, loss):
            calls.append(("loss", pid))

    class DummyCluster:
        def __init__(self):
            self.sim = Simulator()
            self.switch = DummySwitch()
            self.nodes = {0: type("N", (), {"crashed": True})()}

        def crash(self, pid):
            calls.append(("crash", pid, self.sim.now))

        def restart(self, pid):
            calls.append(("restart", pid, self.sim.now))

        def set_partition(self, *groups):
            calls.append(("partition", groups, self.sim.now))

        def heal(self):
            calls.append(("heal", self.sim.now))

    cluster = DummyCluster()
    FaultSchedule([
        Crash(0.1, 0),
        Partition(0.2, ((0,), (1,))),
        Heal(0.3),
        Restart(0.4, 0),
        TokenDrop(0.5, count=2),
        LossSwap(0.6, model="none"),
    ]).install(cluster, base_time_s=0.0)
    cluster.sim.run(until=1.0)
    assert calls == [
        ("crash", 0, 0.1),
        ("partition", ((0,), (1,)), 0.2),
        ("heal", 0.3),
        ("restart", 0, 0.4),
        ("filter", 2),
        ("loss", 0), ("loss", 1),
    ]


def test_recurring_events_json_roundtrip():
    schedule = FaultSchedule([
        Flap(0.1, pid=1, down_s=0.05, period_s=0.3, repeats=4),
        Churn(0.2, pids=(0, 2, 3), down_s=0.1, period_s=0.5,
              repeats=6, seed=9),
    ])
    data = schedule.to_jsonable()
    rebuilt = FaultSchedule.from_jsonable(data)
    assert rebuilt.events == schedule.events
    # pids survive the JSON list detour as a tuple.
    churn = next(e for e in rebuilt.events if isinstance(e, Churn))
    assert churn.pids == (0, 2, 3)


def test_recurring_events_validate_their_knobs():
    with pytest.raises(FaultScheduleError):
        FaultSchedule([Flap(0.1, pid=1, repeats=0)])
    with pytest.raises(FaultScheduleError):
        FaultSchedule([Churn(0.1, pids=(0, 1), period_s=0.0)])
    with pytest.raises(FaultScheduleError):
        FaultSchedule([Flap(0.1, pid=1, down_s=-0.1)])


def test_weakened_lowers_repeats_strictly():
    schedule = FaultSchedule([Churn(0.1, pids=(0, 1, 2), repeats=6)])
    candidates = schedule.weakened(0)
    repeats = sorted(c.events[0].repeats for c in candidates)
    assert repeats == [1, 3]
    # Non-recurring events and single-cycle recurring events don't
    # weaken: removal (without) is their only shrink.
    assert FaultSchedule([Crash(0.1, 0)]).weakened(0) == []
    assert FaultSchedule([Flap(0.1, pid=1, repeats=1)]).weakened(0) == []


def test_shrink_terminates_on_recurring_events():
    # A failure that needs *some* churn: the shrinker must drop the
    # flap, then weaken the churn's repeat count — and terminate even
    # though the weakening candidates themselves keep "failing"
    # (measure: event count, then total repeats, strictly decreases).
    schedule = FaultSchedule([
        Flap(0.1, pid=1, repeats=8),
        Churn(0.2, pids=(0, 2), repeats=8),
    ])
    trials = []

    def fails(candidate):
        trials.append(candidate)
        return any(isinstance(e, Churn) for e in candidate.events)

    shrunk = shrink_schedule(schedule, fails)
    assert [type(e) for e in shrunk.events] == [Churn]
    assert shrunk.events[0].repeats == 1
    assert len(trials) < 50  # no livelock re-trying equal candidates


def test_shrink_empties_schedule_when_failure_is_unconditional():
    schedule = FaultSchedule([
        Flap(0.1, pid=1, repeats=8),
        Churn(0.2, pids=(0, 2), repeats=8),
    ])
    shrunk = shrink_schedule(schedule, lambda candidate: True)
    assert len(shrunk) == 0


def test_flap_crashes_and_restarts_on_schedule():
    calls = []

    class FlapCluster:
        def __init__(self):
            self.sim = Simulator()
            self.nodes = {1: type("N", (), {"crashed": False})()}

        def crash(self, pid):
            self.nodes[pid].crashed = True
            calls.append(("crash", pid, round(self.sim.now, 6)))

        def restart(self, pid):
            self.nodes[pid].crashed = False
            calls.append(("restart", pid, round(self.sim.now, 6)))

    cluster = FlapCluster()
    FaultSchedule([
        Flap(0.1, pid=1, down_s=0.05, period_s=0.2, repeats=3),
    ]).install(cluster, base_time_s=0.0)
    cluster.sim.run(until=2.0)
    assert calls == [
        ("crash", 1, 0.1), ("restart", 1, 0.15),
        ("crash", 1, 0.3), ("restart", 1, 0.35),
        ("crash", 1, 0.5), ("restart", 1, 0.55),
    ]


def test_churn_never_extinguishes_the_pool():
    # With a pool of two and a long down time, cycle k+1 arrives while
    # cycle k's victim is still down: only one candidate is live, so
    # the generator must skip rather than crash the last node.
    crashes = []

    class ChurnCluster:
        def __init__(self):
            self.sim = Simulator()
            self.nodes = {
                pid: type("N", (), {"crashed": False})() for pid in (0, 1)
            }

        def crash(self, pid):
            self.nodes[pid].crashed = True
            crashes.append((pid, round(self.sim.now, 6)))
            live = [p for p, n in self.nodes.items() if not n.crashed]
            assert live, "churn extinguished the pool"

        def restart(self, pid):
            self.nodes[pid].crashed = False

    cluster = ChurnCluster()
    FaultSchedule([
        Churn(0.1, pids=(0, 1), down_s=0.3, period_s=0.2,
              repeats=5, seed=4),
    ]).install(cluster, base_time_s=0.0)
    cluster.sim.run(until=3.0)
    assert crashes  # it did churn when it safely could


def test_token_drop_filter_swallows_n_tokens_then_detaches():
    removed = []

    class StubSwitch:
        def remove_fault_filter(self, predicate):
            removed.append(predicate)

    switch = StubSwitch()
    fltr = _TokenDropFilter(switch, 2)
    token = Frame(0, 1, Traffic.TOKEN, 70, None)
    data = Frame(0, None, Traffic.DATA, 1400, None)
    assert fltr(data) is False        # data is never touched
    assert fltr(token) is True
    assert not removed                # one budget left
    assert fltr(token) is True
    assert removed == [fltr]          # detached itself
    assert fltr(token) is False       # exhausted: passes tokens through


# -- switch partitions ------------------------------------------------------

def _mesh(n=3):
    sim = Simulator()
    switch = Switch(sim, GIGABIT)
    inboxes = {}
    for host in range(n):
        inboxes[host] = []
        switch.attach(host, inboxes[host].append)
    return sim, switch, inboxes


def test_partition_blocks_cross_group_traffic():
    sim, switch, inboxes = _mesh(3)
    switch.set_partition((0, 1), (2,))
    switch.receive(Frame(0, None, Traffic.DATA, 100, "mcast"))
    switch.receive(Frame(0, 2, Traffic.DATA, 100, "ucast"))
    sim.run(until=1.0)
    assert [f.payload for f in inboxes[1]] == ["mcast"]
    assert inboxes[2] == []
    assert switch.drops_partition == 1  # the unicast
    assert switch.connected(0, 1)
    assert not switch.connected(0, 2)


def test_heal_restores_full_connectivity():
    sim, switch, inboxes = _mesh(3)
    switch.set_partition((0,), (1, 2))
    switch.heal()
    assert not switch.partitioned
    switch.receive(Frame(0, None, Traffic.DATA, 100, "after"))
    sim.run(until=1.0)
    assert [f.payload for f in inboxes[1]] == ["after"]
    assert [f.payload for f in inboxes[2]] == ["after"]


def test_unlisted_hosts_are_isolated():
    sim, switch, inboxes = _mesh(3)
    switch.set_partition((0, 1))  # host 2 not listed anywhere
    assert not switch.connected(0, 2)
    assert not switch.connected(2, 1)
    assert switch.connected(2, 2)


# -- crash / restart on the packet-level cluster ----------------------------

def _cluster(n=3):
    return SimEVSCluster(
        n, GIGABIT, LIBRARY,
        ProtocolConfig.accelerated(personal_window=10, accelerated_window=8),
        MembershipTimeouts(token_loss_ticks=30, gather_ticks=20,
                           commit_ticks=40, probe_interval_ticks=15),
    )


def test_restart_rejoins_as_new_incarnation():
    cluster = _cluster(3)
    cluster.run_until_converged(timeout_s=3.0)
    cluster.nodes[0].submit("before")
    cluster.run_for(0.2)
    cluster.crash(1)
    cluster.run_until_converged(timeout_s=3.0)
    cluster.restart(1)
    cluster.run_until_converged(timeout_s=3.0)
    cluster.nodes[0].submit("after")
    cluster.run_for(0.3)

    node = cluster.nodes[1]
    assert node.incarnation == 1
    logs = cluster.logs()
    assert (1, 0) in logs and (1, 1) in logs
    # The new incarnation has amnesia: it sees "after" but not "before".
    new_payloads = [
        e.payload for e in logs[(1, 1)] if hasattr(e, "payload")
    ]
    assert "after" in new_payloads and "before" not in new_payloads
    # And the whole history satisfies every EVS axiom.
    checker = EVSChecker()
    assert checker.check_logs(logs) == []


def test_partitioned_cluster_converges_per_component():
    cluster = _cluster(3)
    cluster.run_until_converged(timeout_s=3.0)
    cluster.set_partition((0, 1), (2,))
    cluster.run_until_converged(timeout_s=4.0)
    assert tuple(cluster.nodes[0].process.ring.members) == (0, 1)
    assert tuple(cluster.nodes[2].process.ring.members) == (2,)
    cluster.heal()
    cluster.run_until_converged(timeout_s=4.0)
    assert tuple(cluster.nodes[2].process.ring.members) == (0, 1, 2)
    checker = EVSChecker()
    assert checker.check_logs(cluster.logs()) == []
