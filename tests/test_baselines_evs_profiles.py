"""Tests for the sequencer baseline, EVS configuration types, and
implementation cost profiles."""

import pytest

from repro.baselines import run_sequencer_point
from repro.evs import AppMessage, ConfigChange, Configuration, ConfigurationKind
from repro.net import GIGABIT, TEN_GIGABIT
from repro.sim import DAEMON, LIBRARY, PROFILES, SPREAD


# ---------------------------------------------------------------------------
# Cost profiles
# ---------------------------------------------------------------------------

def test_profiles_registry():
    assert set(PROFILES) == {"library", "daemon", "spread"}


def test_overhead_ordering_library_daemon_spread():
    # The paper's premise: library < daemon < spread in per-message cost.
    for size in (1350, 8850):
        costs = {
            p.name: p.data_recv_cost(size) + p.data_send_cost(size) / 8
            + p.deliver_cost(size)
            for p in (LIBRARY, DAEMON, SPREAD)
        }
        assert costs["library"] < costs["daemon"] < costs["spread"], costs


def test_header_sizes_ordered():
    assert LIBRARY.header_bytes < DAEMON.header_bytes < SPREAD.header_bytes
    # Spread's 150-byte headers keep 1350B payloads within a 1500B MTU.
    assert SPREAD.header_bytes + 1350 <= 1500


def test_per_byte_costs_amortize():
    # Big messages cost less CPU per byte than small ones.
    for profile in (LIBRARY, DAEMON, SPREAD):
        small = profile.data_recv_cost(1350) / 1350
        large = profile.data_recv_cost(8850) / 8850
        assert large < small


def test_profile_with_overrides():
    tweaked = LIBRARY.with_overrides(deliver_cpu_s=1.0)
    assert tweaked.deliver_cpu_s == 1.0
    assert LIBRARY.deliver_cpu_s != 1.0


# ---------------------------------------------------------------------------
# EVS configuration types
# ---------------------------------------------------------------------------

def test_configuration_constructors_sort_members():
    config = Configuration.regular(5, (3, 1, 2))
    assert config.members == (1, 2, 3)
    assert config.is_regular
    transitional = Configuration.transitional(5, [2, 1])
    assert transitional.kind is ConfigurationKind.TRANSITIONAL
    assert not transitional.is_regular


def test_configuration_membership_test():
    config = Configuration.regular(1, (1, 2))
    assert 1 in config and 3 not in config


def test_app_message_defaults():
    message = AppMessage(ring_id=1, seq=2, sender=3, payload="x", safe=False)
    assert not message.transitional


def test_config_change_wraps_configuration():
    config = Configuration.regular(9, (1,))
    change = ConfigChange(config)
    assert change.configuration is config


# ---------------------------------------------------------------------------
# Sequencer baseline
# ---------------------------------------------------------------------------

def test_sequencer_delivers_offered_load():
    result = run_sequencer_point(
        LIBRARY, GIGABIT, 200e6, n_nodes=4,
        duration_s=0.05, warmup_s=0.015,
    )
    assert not result.saturated
    assert result.achieved_bps == pytest.approx(200e6, rel=0.15)
    assert result.latency.count > 100


def test_sequencer_latency_grows_with_load():
    low = run_sequencer_point(SPREAD, TEN_GIGABIT, 100e6, n_nodes=4,
                              duration_s=0.05, warmup_s=0.015)
    high = run_sequencer_point(SPREAD, TEN_GIGABIT, 900e6, n_nodes=4,
                               duration_s=0.05, warmup_s=0.015)
    assert high.latency.mean_s > low.latency.mean_s


def test_sequencer_saturates_on_coordinator_cpu():
    result = run_sequencer_point(
        SPREAD, TEN_GIGABIT, 3000e6, n_nodes=8,
        duration_s=0.06, warmup_s=0.02,
    )
    assert result.saturated or result.achieved_bps < 2500e6


def test_sequencer_zero_rate():
    result = run_sequencer_point(LIBRARY, GIGABIT, 0.0, n_nodes=2,
                                 duration_s=0.01, warmup_s=0.0)
    assert result.achieved_bps == 0.0
