"""Tests for message types and ring topology."""

import pytest

from repro.core import DataMessage, Ring, RingError, Service, Token, initial_token
from repro.core.messages import TOKEN_BASE_SIZE, TOKEN_RTR_ENTRY_SIZE


# ---------------------------------------------------------------------------
# DataMessage
# ---------------------------------------------------------------------------

def make_message(**overrides):
    fields = dict(seq=1, pid=1, round=1, service=Service.AGREED)
    fields.update(overrides)
    return DataMessage(**fields)


def test_message_value_semantics():
    # DataMessage is a value object, immutable *by convention*: ``frozen``
    # was dropped for construction speed (messages are built on every
    # initiation in the hot path), but hash and equality stay field-based
    # and nothing in the tree mutates a message after construction.
    a = make_message()
    b = make_message()
    assert a == b
    assert hash(a) == hash(b)
    assert a != make_message(seq=2)


def test_as_post_token_sets_flag_without_mutating():
    message = make_message()
    post = message.as_post_token()
    assert post.sent_after_token
    assert not message.sent_after_token
    assert post.seq == message.seq and post.payload == message.payload


def test_as_post_token_idempotent():
    post = make_message().as_post_token()
    assert post.as_post_token() is post


def test_repr_mentions_post_token():
    assert "post-token" in repr(make_message().as_post_token())
    assert "post-token" not in repr(make_message())


# ---------------------------------------------------------------------------
# Token
# ---------------------------------------------------------------------------

def test_initial_token_is_clean():
    token = initial_token(ring_id=3)
    assert token.ring_id == 3
    assert token.hop == 0 and token.seq == 0 and token.aru == 0
    assert token.fcc == 0 and token.rtr == ()
    assert token.aru_id is None


def test_token_evolve_does_not_mutate():
    token = initial_token()
    updated = token.evolve(seq=10, hop=1)
    assert (token.seq, token.hop) == (0, 0)
    assert (updated.seq, updated.hop) == (10, 1)


def test_token_size_grows_with_rtr():
    empty = Token()
    loaded = Token(rtr=(1, 2, 3))
    assert empty.size == TOKEN_BASE_SIZE
    assert loaded.size == TOKEN_BASE_SIZE + 3 * TOKEN_RTR_ENTRY_SIZE


# ---------------------------------------------------------------------------
# Ring
# ---------------------------------------------------------------------------

def test_ring_successor_and_predecessor_wrap():
    ring = Ring.of([10, 20, 30])
    assert ring.successor(10) == 20
    assert ring.successor(30) == 10
    assert ring.predecessor(10) == 30
    assert ring.predecessor(20) == 10


def test_ring_leader_is_first_member():
    assert Ring.of([7, 3, 5]).leader == 7


def test_singleton_ring():
    ring = Ring.of([42])
    assert ring.successor(42) == 42
    assert ring.predecessor(42) == 42
    assert len(ring) == 1


def test_empty_ring_rejected():
    with pytest.raises(RingError):
        Ring.of([])


def test_duplicate_members_rejected():
    with pytest.raises(RingError):
        Ring.of([1, 2, 1])


def test_unknown_member_rejected():
    ring = Ring.of([1, 2])
    with pytest.raises(RingError):
        ring.successor(9)


def test_ring_iteration_and_contains():
    ring = Ring.of([4, 5, 6])
    assert list(ring) == [4, 5, 6]
    assert 5 in ring and 9 not in ring
