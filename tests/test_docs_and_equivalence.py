"""Documentation consistency and original-protocol equivalence checks."""

import os
import pathlib

import pytest

from repro.core import PriorityMethod, ProtocolConfig
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point

REPO = pathlib.Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Documentation exists and references real things
# ---------------------------------------------------------------------------

def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/PROTOCOL.md", "docs/SIMULATOR.md"):
        path = REPO / name
        assert path.exists(), name
        assert path.stat().st_size > 1000, "%s is too thin" % name


def test_design_inventory_mentions_real_modules():
    design = (REPO / "DESIGN.md").read_text()
    for module in ("participant.py", "controller.py", "switch.py",
                   "profiles.py", "autotune.py", "sequencer.py"):
        assert module in design, module


def test_experiments_covers_every_figure():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for figure in ("Figure 1", "Figure 2", "Figure 3", "Figure 4",
                   "Figure 5", "Figure 6", "Figure 7"):
        assert figure in experiments, figure
    assert "deviation" in experiments.lower()


def test_benchmarks_exist_for_every_design_index_row():
    bench_dir = REPO / "benchmarks"
    design = (REPO / "DESIGN.md").read_text()
    import re

    referenced = set(re.findall(r"`benchmarks/(test_[a-z0-9_]+\.py)`", design))
    assert referenced, "DESIGN.md no longer references bench files"
    for name in referenced:
        assert (bench_dir / name).exists(), name


def test_readme_quickstart_snippet_runs():
    from repro import LoopbackRing, ProtocolConfig, Service

    ring = LoopbackRing([1, 2, 3, 4], ProtocolConfig.accelerated())
    ring.submit(1, "hello", Service.AGREED)
    ring.submit(2, "world", Service.SAFE)
    ring.run()
    assert ring.delivered_payloads(3) == ring.delivered_payloads(4)


# ---------------------------------------------------------------------------
# Original-protocol equivalences at the simulation level
# ---------------------------------------------------------------------------

def sim_point(config):
    return run_point(
        config, SPREAD, GIGABIT, 400e6,
        duration_s=0.05, warmup_s=0.015, n_nodes=4, seed=11,
    )


def test_window_zero_conservative_is_original_performance():
    # The paper's equivalence claim, measured: with the accelerated
    # window at zero and the conservative method, the system performs
    # EXACTLY like the original configuration in a loss-free run (the
    # rtr-horizon flag only matters under loss).
    original = sim_point(ProtocolConfig.original_ring(personal_window=20))
    window_zero = sim_point(
        ProtocolConfig(personal_window=20, accelerated_window=0,
                       priority_method=PriorityMethod.CONSERVATIVE)
    )
    assert window_zero.latency.mean_s == original.latency.mean_s
    assert window_zero.achieved_bps == original.achieved_bps
    assert window_zero.rounds_per_s == original.rounds_per_s


def test_acceleration_is_the_differentiator():
    original = sim_point(ProtocolConfig.original_ring(personal_window=20))
    accelerated = sim_point(
        ProtocolConfig(personal_window=20, accelerated_window=15)
    )
    assert accelerated.latency.mean_s < original.latency.mean_s
