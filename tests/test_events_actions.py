"""Unit tests for the event hub and the action helpers."""

import pytest

from repro.core import (
    Deliver,
    Discard,
    EventHub,
    SendData,
    SendToken,
    Service,
    Token,
    deliveries,
    sends,
    token_of,
)
from repro.core.messages import DataMessage


def msg(seq=1):
    return DataMessage(seq=seq, pid=1, round=1, service=Service.AGREED)


# ---------------------------------------------------------------------------
# EventHub
# ---------------------------------------------------------------------------

def test_subscribe_and_emit():
    hub = EventHub()
    seen = []
    hub.subscribe("ping", lambda *args: seen.append(args))
    hub.emit("ping", 1)
    hub.emit("ping", 2)
    assert seen == [(1,), (2,)]


def test_counts_track_all_events_even_without_subscribers():
    hub = EventHub()
    hub.emit("silent")
    hub.emit("silent")
    assert hub.count("silent") == 2
    assert hub.count("never") == 0


def test_multiple_subscribers_called_in_order():
    hub = EventHub()
    order = []
    hub.subscribe("e", lambda *args: order.append("first"))
    hub.subscribe("e", lambda *args: order.append("second"))
    hub.emit("e")
    assert order == ["first", "second"]


def test_subscriber_exception_propagates():
    hub = EventHub()

    def broken(*args):
        raise RuntimeError("boom")

    hub.subscribe("e", broken)
    with pytest.raises(RuntimeError):
        hub.emit("e")


# ---------------------------------------------------------------------------
# Action helpers
# ---------------------------------------------------------------------------

def test_deliveries_extracts_in_order():
    actions = [
        SendData(msg(1)),
        Deliver(msg(2)),
        SendToken(Token(), dst=2),
        Deliver(msg(3)),
        Discard(1),
    ]
    assert [m.seq for m in deliveries(actions)] == [2, 3]


def test_sends_extracts_data_only():
    actions = [
        SendData(msg(1)),
        SendToken(Token(), dst=2),
        SendData(msg(2), retransmission=True),
    ]
    assert [m.seq for m in sends(actions)] == [1, 2]


def test_token_of_requires_exactly_one():
    with pytest.raises(ValueError):
        token_of([SendData(msg(1))])
    with pytest.raises(ValueError):
        token_of([SendToken(Token(), 1), SendToken(Token(), 1)])
    token = Token(seq=5)
    assert token_of([SendToken(token, 1)]) is token


def test_deliver_exposes_service():
    safe = DataMessage(seq=1, pid=1, round=1, service=Service.SAFE)
    assert Deliver(safe).service is Service.SAFE


def test_actions_value_semantics():
    # Actions are value objects, immutable by convention (``frozen`` was
    # dropped for construction speed — one Deliver per delivered message
    # is built in the hot path); hash and equality stay field-based.
    a = SendData(msg(1))
    b = SendData(msg(1))
    assert a == b
    assert hash(a) == hash(b)
    assert a != SendData(msg(1), retransmission=True)
