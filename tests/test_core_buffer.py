"""Tests for the receive buffer and local aru tracking."""

import pytest

from repro.core import DeliveryInvariantError, ReceiveBuffer, Service
from repro.core.messages import DataMessage


def msg(seq, pid=1, safe=False):
    return DataMessage(
        seq=seq, pid=pid, round=1,
        service=Service.SAFE if safe else Service.AGREED,
    )


def test_contiguous_inserts_advance_aru():
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        assert buffer.insert(msg(seq))
    assert buffer.local_aru == 3


def test_gap_blocks_aru():
    buffer = ReceiveBuffer()
    buffer.insert(msg(1))
    buffer.insert(msg(3))
    assert buffer.local_aru == 1
    buffer.insert(msg(2))
    assert buffer.local_aru == 3


def test_out_of_order_fill_catches_up_through_run():
    buffer = ReceiveBuffer()
    for seq in (5, 4, 3, 2):
        buffer.insert(msg(seq))
    assert buffer.local_aru == 0
    buffer.insert(msg(1))
    assert buffer.local_aru == 5


def test_duplicate_insert_returns_false():
    buffer = ReceiveBuffer()
    assert buffer.insert(msg(1))
    assert not buffer.insert(msg(1))
    assert len(buffer) == 1


def test_missing_between_reports_gaps_only():
    buffer = ReceiveBuffer()
    for seq in (1, 2, 5, 7):
        buffer.insert(msg(seq))
    assert buffer.missing_between(buffer.local_aru, 7) == [3, 4, 6]
    assert buffer.missing_between(buffer.local_aru, 5) == [3, 4]
    assert buffer.missing_between(2, 2) == []


def test_missing_between_excludes_discarded():
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq))
    buffer.discard_upto(2)
    assert buffer.missing_between(0, 3) == []


def test_discard_releases_messages():
    buffer = ReceiveBuffer()
    for seq in range(1, 6):
        buffer.insert(msg(seq))
    released = buffer.discard_upto(3)
    assert released == 3
    assert buffer.get(2) is None
    assert buffer.get(4) is not None
    assert buffer.local_aru == 5  # aru survives garbage collection


def test_discard_is_idempotent():
    buffer = ReceiveBuffer()
    for seq in (1, 2):
        buffer.insert(msg(seq))
    assert buffer.discard_upto(2) == 2
    assert buffer.discard_upto(2) == 0
    assert buffer.discard_upto(1) == 0


def test_discard_beyond_aru_is_a_bug():
    buffer = ReceiveBuffer()
    buffer.insert(msg(1))
    with pytest.raises(DeliveryInvariantError):
        buffer.discard_upto(5)


def test_insert_below_discard_floor_ignored():
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq))
    buffer.discard_upto(3)
    assert not buffer.insert(msg(2))  # stale retransmission
    assert buffer.has(2)  # still counted as held (stable)


def test_has_covers_discarded_and_present():
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq))
    buffer.discard_upto(1)
    assert buffer.has(1) and buffer.has(3)
    assert not buffer.has(4)


def test_held_seqs_sorted():
    buffer = ReceiveBuffer()
    for seq in (3, 1, 2):
        buffer.insert(msg(seq))
    assert list(buffer.held_seqs()) == [1, 2, 3]
