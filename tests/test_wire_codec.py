"""Unit tests for the binary wire codec: layouts, strictness, values."""

import struct
import zlib

import pytest

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.core.packing import PackedItem, PackedPayload
from repro.membership.messages import (
    CommitToken,
    JoinMessage,
    MemberInfo,
    ProbeMessage,
    RecoveryComplete,
    RecoveryData,
)
from repro.spreadlike.protocol import ClientId, GroupCast, GroupMessage
from repro.wire import codec
from repro.wire.codec import DecodeError, EncodeError, decode, decode_detail, encode


def data_message(**overrides):
    fields = dict(seq=7, pid=2, round=9, service=Service.AGREED,
                  payload=b"payload", payload_size=7, submitted_at=1.5)
    fields.update(overrides)
    return DataMessage(**fields)


# -- header ------------------------------------------------------------------

def test_header_layout():
    blob = encode(Token())
    magic, version, msg_type, body_len, crc = struct.unpack_from("<2sBBII", blob)
    assert magic == b"AR"
    assert version == codec.WIRE_VERSION == 1
    assert msg_type == codec.TYPE_TOKEN
    assert body_len == len(blob) - codec.HEADER_SIZE
    assert crc == zlib.crc32(blob[codec.HEADER_SIZE:]) & 0xFFFFFFFF


def test_unknown_version_rejected():
    blob = bytearray(encode(Token()))
    blob[2] = 99
    with pytest.raises(DecodeError, match="version"):
        decode(bytes(blob))


def test_unknown_type_rejected():
    body = b""
    blob = struct.pack("<2sBBII", b"AR", 1, 200, 0, zlib.crc32(body))
    with pytest.raises(DecodeError, match="type"):
        decode(blob)


def test_bad_magic_rejected():
    blob = bytearray(encode(Token()))
    blob[0] = 0x58
    with pytest.raises(DecodeError, match="magic"):
        decode(bytes(blob))


def test_crc_mismatch_rejected():
    blob = bytearray(encode(data_message()))
    blob[-1] ^= 0x01  # corrupt the body, keep the recorded CRC
    with pytest.raises(DecodeError, match="CRC"):
        decode(bytes(blob))


def test_truncation_and_trailing_garbage_rejected():
    blob = encode(data_message())
    with pytest.raises(DecodeError):
        decode(blob[:-1])
    with pytest.raises(DecodeError):
        decode(blob + b"\x00")
    with pytest.raises(DecodeError):
        decode(b"")


def test_every_prefix_of_a_valid_frame_is_rejected():
    blob = encode(Token(ring_id=1, rtr=(3, 5)))
    for cut in range(len(blob)):
        with pytest.raises(DecodeError):
            decode(blob[:cut])


def test_non_bytes_input_rejected():
    with pytest.raises(DecodeError):
        decode(None)  # type: ignore[arg-type]


# -- token -------------------------------------------------------------------

def test_token_roundtrip_all_fields():
    token = Token(ring_id=6, hop=41, seq=1000, aru=990, aru_id=3,
                  fcc=17, rtr=(991, 995, 999))
    assert decode(encode(token)) == token


def test_token_aru_id_none_roundtrip():
    token = Token(aru_id=None)
    assert decode(encode(token)).aru_id is None


def test_token_rtr_entry_too_large_rejected():
    with pytest.raises(EncodeError, match="rtr"):
        encode(Token(rtr=(codec.MAX_RTR_SEQ + 1,)))


def test_token_negative_field_rejected():
    with pytest.raises(EncodeError):
        encode(Token(seq=-1))


def test_token_reserved_fields_must_be_zero():
    blob = bytearray(encode(Token()))
    # backlog is the 7th field of the body: offset 12 + 48.
    struct.pack_into("<I", blob, codec.HEADER_SIZE + 48, 1)
    body = bytes(blob[codec.HEADER_SIZE:])
    struct.pack_into("<I", blob, 8, zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(DecodeError, match="reserved"):
        decode(bytes(blob))


def test_token_rtr_count_must_match_body():
    blob = bytearray(encode(Token(rtr=(5,))))
    # Claim two rtr entries while carrying one.
    struct.pack_into("<I", blob, codec.HEADER_SIZE + 56, 2)
    body = bytes(blob[codec.HEADER_SIZE:])
    struct.pack_into("<I", blob, 8, zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(DecodeError, match="rtr"):
        decode(bytes(blob))


# -- data messages -----------------------------------------------------------

def test_data_roundtrip_bytes_payload():
    message = data_message(payload=b"\x00\xffhello", payload_size=7)
    decoded = decode_detail(encode(message, ring_id=5))
    assert decoded.message == message
    assert decoded.kind == "data"
    assert decoded.ring_id == 5


def test_data_roundtrip_none_payload_and_flags():
    message = data_message(payload=None, payload_size=1350,
                           sent_after_token=True, submitted_at=None)
    decoded = decode(encode(message))
    assert decoded == message
    assert decoded.sent_after_token is True
    assert decoded.submitted_at is None


def test_data_zero_timestamp_distinct_from_none():
    with_stamp = data_message(submitted_at=0.0)
    decoded = decode(encode(with_stamp))
    assert decoded.submitted_at == 0.0
    assert decoded.submitted_at is not None


def test_data_structured_payloads_roundtrip():
    payloads = [
        ("tuple", 1, 2.5),
        ["list", None, True, False],
        {"key": (1, 2), 3: b"bytes"},
        frozenset({1, 2, 3}),
        {"nested": {"deep": [{"deeper": ()}]}},
        2 ** 100,
        -(2 ** 100),
        "unicode ❤ text",
    ]
    for payload in payloads:
        message = data_message(payload=payload)
        assert decode(encode(message)) == message


def test_data_packed_payload_roundtrip():
    packed = PackedPayload(items=(
        PackedItem(payload=b"a" * 40, payload_size=40, submitted_at=0.25),
        PackedItem(payload=("x", 1), payload_size=24, submitted_at=None),
    ))
    message = data_message(payload=packed, payload_size=packed.total_size)
    assert decode(encode(message)) == message


def test_data_spreadlike_payload_roundtrip():
    cast = GroupCast(groups=("alpha", "beta"), sender=ClientId(2, "cli"),
                     payload={"op": "put", "key": 7})
    message = data_message(payload=cast)
    assert decode(encode(message)) == message
    delivered = GroupMessage(groups=("alpha",), sender=ClientId(2, "cli"),
                             payload=b"v", service=Service.SAFE, seq=40)
    message = data_message(payload=delivered)
    assert decode(encode(message)) == message


def test_unencodable_payload_raises_encode_error():
    class Arbitrary:
        pass

    with pytest.raises(EncodeError, match="Arbitrary"):
        encode(data_message(payload=Arbitrary()))


def test_deep_nesting_rejected_on_encode():
    nested = ()
    for _ in range(200):
        nested = (nested,)
    with pytest.raises(EncodeError, match="nesting"):
        encode(data_message(payload=nested))


def test_set_encoding_is_order_independent():
    a = data_message(payload=frozenset({"x", "y", "z", 1, 2, 3}))
    b = data_message(payload=frozenset({3, 2, 1, "z", "y", "x"}))
    assert encode(a) == encode(b)


def test_unknown_service_code_rejected():
    blob = bytearray(encode(data_message()))
    # service byte: ring,seq,pid,round (32) + submitted_at f64 (8) +
    # payload_size u32 (4) = body offset 44.
    struct.pack_into("<B", blob, codec.HEADER_SIZE + 44, 99)
    body = bytes(blob[codec.HEADER_SIZE:])
    struct.pack_into("<I", blob, 8, zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(DecodeError, match="service"):
        decode(bytes(blob))


def test_hostile_count_rejected_without_allocation():
    # A 4-byte count field claiming 2**31 tuple items in a tiny body must
    # fail fast, not attempt a giant allocation.
    message = data_message(payload=("small",))
    blob = bytearray(encode(message))
    # The value section starts right after the fixed data body; its first
    # byte is the tuple tag, then the u32 item count.
    offset = codec.HEADER_SIZE + 48
    assert blob[offset] == 0x08  # tuple tag
    struct.pack_into("<I", blob, offset + 1, 2 ** 31)
    body = bytes(blob[codec.HEADER_SIZE:])
    struct.pack_into("<I", blob, 8, zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(DecodeError):
        decode(bytes(blob))


# -- membership messages -----------------------------------------------------

def test_membership_roundtrips():
    messages = [
        ProbeMessage(sender=3, ring_id=12),
        JoinMessage(sender=1, proc_set=frozenset({1, 2, 5}),
                    fail_set=frozenset({9}), ring_seq=14),
        JoinMessage(sender=0, proc_set=frozenset(), fail_set=frozenset(),
                    ring_seq=0),
        CommitToken(new_ring_id=15, members=(0, 1, 2), rotation=1,
                    collected=(
                        MemberInfo(pid=0, old_ring_id=12, old_aru=40,
                                   high_seq=44, old_members=(0, 1),
                                   old_safe_bound=39, old_delivered_upto=40),
                        MemberInfo(pid=1, old_ring_id=13, old_aru=0,
                                   high_seq=0, old_members=(),
                                   old_safe_bound=-1, old_delivered_upto=0),
                    )),
        RecoveryData(sender=2, old_ring_id=12,
                     message=data_message(payload=("recovered", 1))),
        RecoveryComplete(sender=2, new_ring_id=15),
    ]
    for message in messages:
        decoded = decode(encode(message))
        assert decoded == message, message


def test_recovery_data_with_non_data_inner_frame_rejected():
    recovery = RecoveryData(sender=1, old_ring_id=3, message=data_message())
    blob = bytearray(encode(recovery))
    inner = encode(Token())
    # Replace the nested frame with a token of a different length: rebuild.
    prefix = struct.pack("<QQI", 1, 3, len(inner))
    body = prefix + inner
    header = struct.pack("<2sBBII", b"AR", 1, codec.TYPE_RECOVERY_DATA,
                         len(body), zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(DecodeError, match="non-data"):
        decode(header + body)
    assert decode(bytes(blob)) == recovery  # the original is still fine


# -- determinism -------------------------------------------------------------

def test_encoding_is_deterministic():
    message = data_message(payload={"b": 2, "a": 1, "set": frozenset({3, 1})})
    assert encode(message) == encode(message)
    token = Token(ring_id=2, rtr=(9, 4, 1))
    assert encode(token) == encode(token)


def test_encoded_size_matches_encode():
    for message in (Token(rtr=(1, 2, 3)), data_message(),
                    ProbeMessage(sender=1, ring_id=2)):
        assert codec.encoded_size(message) == len(encode(message))
