"""Extended membership scenarios and controller-level unit tests."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.evs import ConfigurationKind
from repro.harness.evsnet import EVSNetwork
from repro.membership import (
    CommitToken,
    EVSProcess,
    JoinMessage,
    MembershipTimeouts,
    ProbeMessage,
    State,
)


# ---------------------------------------------------------------------------
# Late join (spawn)
# ---------------------------------------------------------------------------

def test_late_join_merges_into_ring():
    net = EVSNetwork([1, 2, 3])
    net.run_until_converged()
    net.spawn(9)
    net.run_until_converged()
    for pid in (1, 2, 3, 9):
        assert net.processes[pid].ring.members == (1, 2, 3, 9)


def test_late_joiner_does_not_see_history():
    net = EVSNetwork([1, 2])
    net.run_until_converged()
    net.submit(1, "historic")
    net.run_quiet(200)
    net.spawn(5)
    net.run_until_converged()
    net.run_quiet(200)
    payloads = [m.payload for m in net.processes[5].delivered_messages()]
    assert "historic" not in payloads


def test_late_joiner_participates_in_ordering():
    net = EVSNetwork([1, 2])
    net.run_until_converged()
    net.spawn(3)
    net.run_until_converged()
    net.submit(3, "newbie-speaks", Service.SAFE)
    net.submit(1, "oldie-speaks")
    net.run_quiet(400)
    logs = {
        pid: [m.payload for m in net.processes[pid].delivered_messages()]
        for pid in (1, 2, 3)
    }
    for pid in (1, 2, 3):
        assert "newbie-speaks" in logs[pid]
    # The common suffix is identical (total order).
    tail = [p for p in logs[1] if p in ("newbie-speaks", "oldie-speaks")]
    for pid in (2, 3):
        assert [p for p in logs[pid] if p in tail] == tail


def test_spawn_duplicate_pid_rejected():
    net = EVSNetwork([1])
    with pytest.raises(ValueError):
        net.spawn(1)


def test_multiple_late_joins():
    net = EVSNetwork([1])
    net.run_quiet(30)
    net.spawn(2)
    net.run_until_converged()
    net.spawn(3)
    net.run_until_converged()
    assert net.processes[1].ring.members == (1, 2, 3)


# ---------------------------------------------------------------------------
# Controller-level unit tests (no network)
# ---------------------------------------------------------------------------

def fresh(pid=1, **timeout_kw):
    return EVSProcess(
        pid, ProtocolConfig(), MembershipTimeouts(**timeout_kw)
    )


def test_bootstrap_enters_gather_and_floods_join():
    process = fresh()
    outgoing = process.bootstrap()
    assert process.state is State.GATHER
    joins = [o for o in outgoing if isinstance(o.payload, JoinMessage)]
    assert len(joins) == 1
    assert joins[0].dst is None  # multicast
    assert joins[0].payload.proc_set == frozenset({1})


def test_join_merges_proc_sets_and_rebroadcasts():
    process = fresh(pid=1)
    process.bootstrap()
    outgoing = process.handle_ctrl(
        JoinMessage(sender=2, proc_set=frozenset({2, 3}),
                    fail_set=frozenset(), ring_seq=0),
        src=2,
    )
    # Join broadcasts are rate-limited (eager per-view-change flooding
    # melts the control plane under churn), so the union rebroadcast
    # arrives on a subsequent tick once the cooldown expires.
    for _tick in range(20):
        outgoing = outgoing + process.tick()
    joins = [o.payload for o in outgoing if isinstance(o.payload, JoinMessage)]
    assert joins and joins[-1].proc_set == frozenset({1, 2, 3})


def test_self_never_lands_in_fail_set():
    process = fresh(pid=1)
    process.bootstrap()
    process.handle_ctrl(
        JoinMessage(sender=2, proc_set=frozenset({1, 2}),
                    fail_set=frozenset({1}), ring_seq=0),
        src=2,
    )
    assert 1 not in process._fail_set


def test_consensus_of_singleton_choice():
    # A lone process that learns of another (via probe) but never hears
    # a join from it must fail it on timeout and proceed alone.
    process = fresh(pid=1, gather_ticks=2)
    process.bootstrap()
    process.handle_ctrl(ProbeMessage(sender=4, ring_id=4), src=4)
    assert 4 in process._proc_set
    # 4 stays silent: tick past the gather timeout, feeding any
    # self-addressed control messages (the commit token of a singleton
    # ring loops to ourselves) back into the process.  Silence only
    # counts as death after three consecutive gather timeouts (plus the
    # per-attempt timer jitter), so tick well past all three.
    pending = []
    for _tick in range(40):
        pending.extend(process.tick())
        while pending:
            out = pending.pop(0)
            if out.kind == "ctrl" and out.dst == 1:
                pending.extend(process.handle_ctrl(out.payload, src=1))
    assert 4 in process._fail_set
    assert process.state is State.OPERATIONAL
    assert process.ring.members == (1,)


def test_representative_emits_commit_token():
    a = fresh(pid=1)
    a.bootstrap()
    # 2's join already agrees with the union view {1, 2}: consensus
    # forms immediately and the representative (lowest id) commits.
    outgoing = a.handle_ctrl(
        JoinMessage(sender=2, proc_set=frozenset({1, 2}),
                    fail_set=frozenset(), ring_seq=0),
        src=2,
    )
    commits = [o for o in outgoing if isinstance(o.payload, CommitToken)]
    assert len(commits) == 1
    assert commits[0].payload.members == (1, 2)
    assert commits[0].dst == 2
    assert a.state is State.COMMIT
    # A duplicate of the same join must NOT abort the in-flight commit
    # (that way lies livelock).
    again = a.handle_ctrl(
        JoinMessage(sender=2, proc_set=frozenset({1, 2}),
                    fail_set=frozenset(), ring_seq=0),
        src=2,
    )
    assert again == []
    assert a.state is State.COMMIT


def test_non_representative_waits_for_commit():
    b = fresh(pid=5)
    b.bootstrap()
    outgoing = b.handle_ctrl(
        JoinMessage(sender=1, proc_set=frozenset({1, 5}),
                    fail_set=frozenset(), ring_seq=0),
        src=1,
    )
    commits = [o for o in outgoing if isinstance(o.payload, CommitToken)]
    assert commits == []  # pid 1 is the representative, not us
    assert b.state is State.GATHER


def test_commit_token_for_foreign_membership_ignored():
    process = fresh(pid=1)
    process.bootstrap()
    result = process.handle_ctrl(
        CommitToken(new_ring_id=99, members=(2, 3), rotation=1), src=2
    )
    assert result == []


def test_stale_probe_does_not_trigger_gather():
    net = EVSNetwork([1, 2])
    net.run_until_converged()
    process = net.processes[1]
    ring_id = process.ring.ring_id
    # A probe from a ring member for an OLDER ring id: stale, ignored.
    out = process.handle_ctrl(ProbeMessage(sender=2, ring_id=1), src=2)
    assert out == []
    assert process.state is State.OPERATIONAL


def test_probe_from_stranger_triggers_gather():
    net = EVSNetwork([1, 2])
    net.run_until_converged()
    process = net.processes[1]
    out = process.handle_ctrl(ProbeMessage(sender=77, ring_id=77), src=77)
    assert process.state is State.GATHER
    assert 77 in process._proc_set


# ---------------------------------------------------------------------------
# Stress: repeated partition/heal cycles
# ---------------------------------------------------------------------------

def test_repeated_partition_heal_cycles_stay_consistent():
    net = EVSNetwork([1, 2, 3, 4])
    net.run_until_converged()
    for cycle in range(3):
        net.set_partition({1, 2}, {3, 4})
        net.run_until_converged()
        net.submit(1, ("left", cycle))
        net.submit(3, ("right", cycle))
        net.run_quiet(300)
        net.heal()
        net.run_until_converged()
        net.submit(2, ("merged", cycle), Service.SAFE)
        net.run_quiet(300)
    for pid in (1, 2, 3, 4):
        payloads = [m.payload for m in net.processes[pid].delivered_messages()]
        for cycle in range(3):
            assert ("merged", cycle) in payloads
    # Ring ids strictly increased and everyone ends on the same ring.
    final = {net.processes[p].ring.ring_id for p in (1, 2, 3, 4)}
    assert len(final) == 1
