"""Direct tests of the Totem reference implementation and mini-driver.

(The differential tests in test_differential.py compare it against the
core engine; these pin the reference's own behaviour.)
"""

import pytest

from repro.net.links import PRESETS
from repro.totem import ReferenceRing, RefMessage, RefToken


def test_simple_run_delivers_everything():
    ring = ReferenceRing([1, 2, 3])
    for pid in (1, 2, 3):
        for index in range(10):
            ring.submit(pid, (pid, index), safe=index % 2 == 0)
    ring.run()
    for pid in (1, 2, 3):
        assert len(ring.delivered_payloads(pid)) == 30
    assert ring.delivered_payloads(1) == ring.delivered_payloads(2)


def test_seqs_are_dense_from_one():
    ring = ReferenceRing([1, 2])
    ring.submit(1, "a")
    ring.submit(2, "b")
    ring.run()
    assert ring.delivered_seqs(1) == [1, 2]


def test_personal_window_bounds_per_round():
    ring = ReferenceRing([1], personal_window=3)
    for index in range(10):
        ring.submit(1, index)
    ring.run()
    # 10 messages at 3 per round -> at least 4 sending rounds happened.
    assert ring.rounds >= 4
    assert ring.delivered_payloads(1) == list(range(10))


def test_empty_run_quiesces():
    ring = ReferenceRing([1, 2, 3])
    ring.run()
    assert ring.delivered_payloads(1) == []


def test_safe_messages_survive_loss():
    dropped = set()

    def drop_once(seq, dst):
        key = (seq, dst)
        if seq % 2 == 1 and key not in dropped:
            dropped.add(key)
            return True
        return False

    ring = ReferenceRing([1, 2, 3], drop_data=drop_once)
    for index in range(12):
        ring.submit(1, index, safe=True)
    ring.run()
    assert dropped
    for pid in (1, 2, 3):
        assert ring.delivered_payloads(pid) == list(range(12))


def test_needs_at_least_one_participant():
    with pytest.raises(ValueError):
        ReferenceRing([])


def test_ref_token_is_immutable_dataclass():
    token = RefToken(seq=1, aru=1, aru_id=None, fcc=0, rtr=())
    with pytest.raises(Exception):
        token.seq = 2


def test_ref_message_identity():
    message = RefMessage(seq=1, pid=2, safe=True, payload="x")
    assert message.seq == 1 and message.safe


def test_link_presets_registry():
    assert set(PRESETS) == {"1G", "10G", "10M"}
    assert PRESETS["10G"].rate_bps == pytest.approx(1e10)
