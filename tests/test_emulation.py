"""Integration tests: the protocol over real UDP sockets on localhost."""

import threading

import pytest

from repro.core import ProtocolConfig, Service
from repro.emulation import EmulatedRing


def payloads_of(messages):
    return [m.payload for m in messages]


@pytest.mark.parametrize(
    "config",
    [
        pytest.param(ProtocolConfig.accelerated(accelerated_window=10), id="accelerated"),
        pytest.param(ProtocolConfig.original_ring(), id="original"),
    ],
)
def test_total_order_over_real_sockets(config):
    with EmulatedRing(4, config) as ring:
        for pid in range(4):
            for i in range(25):
                ring.submit(pid, (pid, i))
        collected = ring.collect_deliveries(expected_per_node=100, timeout_s=20.0)
    sequences = {pid: [m.seq for m in msgs] for pid, msgs in collected.items()}
    for pid, seqs in sequences.items():
        assert seqs[:100] == list(range(1, 101)), "gaps at node %d" % pid
    first = payloads_of(collected[0])[:100]
    for pid in (1, 2, 3):
        assert payloads_of(collected[pid])[:100] == first


def test_safe_delivery_over_real_sockets():
    with EmulatedRing(3) as ring:
        for pid in range(3):
            ring.submit(pid, ("safe", pid), Service.SAFE)
        collected = ring.collect_deliveries(expected_per_node=3, timeout_s=20.0)
    orders = [payloads_of(collected[pid])[:3] for pid in range(3)]
    assert orders[0] == orders[1] == orders[2]
    assert sorted(orders[0]) == [("safe", 0), ("safe", 1), ("safe", 2)]


def test_fifo_over_real_sockets():
    with EmulatedRing(3) as ring:
        for i in range(30):
            ring.submit(0, ("seq", i))
        collected = ring.collect_deliveries(expected_per_node=30, timeout_s=20.0)
    for pid in range(3):
        mine = [p for p in payloads_of(collected[pid]) if p[0] == "seq"][:30]
        assert mine == [("seq", i) for i in range(30)]


def test_recovery_from_injected_send_loss():
    # Drop ~10% of data sends (first transmissions only) and rely on the
    # retransmission machinery over real sockets.
    lock = threading.Lock()
    dropped = set()

    def loss(kind, obj, dst):
        if kind != "data":
            return False
        key = (getattr(obj, "seq", None), dst)
        if key[0] is None or key[0] % 9 != 0:
            return False
        with lock:
            if key in dropped:
                return False
            dropped.add(key)
            return True

    with EmulatedRing(3, loss_rule=loss) as ring:
        for pid in range(3):
            for i in range(20):
                ring.submit(pid, (pid, i))
        collected = ring.collect_deliveries(expected_per_node=60, timeout_s=30.0)
    assert dropped, "loss rule never fired"
    first = payloads_of(collected[0])[:60]
    for pid in (1, 2):
        assert payloads_of(collected[pid])[:60] == first


def test_token_loss_recovered_by_wallclock_timer():
    lock = threading.Lock()
    state = {"dropped": False}

    def loss(kind, obj, dst):
        if kind != "token":
            return False
        with lock:
            # Drop a mid-stream token exactly once.
            if not state["dropped"] and getattr(obj, "hop", 0) == 7:
                state["dropped"] = True
                return True
        return False

    config = ProtocolConfig.accelerated(token_retransmit_timeout_s=0.02,
                                        token_retransmit_limit=100)
    with EmulatedRing(3, config, loss_rule=loss) as ring:
        for pid in range(3):
            for i in range(10):
                ring.submit(pid, (pid, i))
        # Generous deadline: under a fully loaded test host the node
        # threads may be scheduled sparsely.
        collected = ring.collect_deliveries(expected_per_node=30, timeout_s=60.0)
        resent = sum(node.tokens_resent for node in ring.nodes.values())
    assert state["dropped"]
    assert resent >= 1
    first = payloads_of(collected[0])[:30]
    assert payloads_of(collected[1])[:30] == first


def test_single_node_ring_over_sockets():
    with EmulatedRing(1) as ring:
        for i in range(10):
            ring.submit(0, i)
        collected = ring.collect_deliveries(expected_per_node=10, timeout_s=10.0)
    assert payloads_of(collected[0])[:10] == list(range(10))
