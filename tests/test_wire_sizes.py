"""Size-model drift guard: the sim's byte constants vs the real codec.

The figure benchmarks charge ``TOKEN_BASE_SIZE + 4/rtr`` per token and
``payload_size + header_bytes`` per data message.  These used to be
hand-set constants; now they must equal, byte for byte, what
:mod:`repro.wire.codec` actually puts on the wire — so the simulated
figures measure the datagrams a real deployment would send.  If the
wire format changes without the model (or vice versa), this file fails.
"""

import pytest

from repro.core import Token
from repro.core.messages import (
    DATA_HEADER_SIZE,
    DataMessage,
    TOKEN_BASE_SIZE,
    TOKEN_RTR_ENTRY_SIZE,
)
from repro.core.config import Service
from repro.net import Frame, Traffic
from repro.sim import DAEMON, LIBRARY, SPREAD
from repro.wire import codec


def test_token_base_size_matches_codec():
    assert codec.encoded_size(Token()) == TOKEN_BASE_SIZE


def test_token_rtr_entry_growth_matches_codec():
    base = codec.encoded_size(Token())
    for count in (1, 2, 7, 100):
        token = Token(rtr=tuple(range(1, count + 1)))
        assert codec.encoded_size(token) == base + count * TOKEN_RTR_ENTRY_SIZE


def test_token_size_property_matches_codec_exactly():
    # Token.size is what SimNode stamps on token frames.
    for token in (
        Token(),
        Token(ring_id=9, hop=1_000_000, seq=2 ** 40, aru=2 ** 40 - 5,
              aru_id=7, fcc=3, rtr=(1, 2, 3)),
        Token(rtr=tuple(range(500))),
    ):
        assert token.size == codec.encoded_size(token)


def test_data_header_overhead_matches_codec():
    assert codec.DATA_HEADER_SIZE == DATA_HEADER_SIZE
    for size in (0, 1, 1350, 8850):
        message = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                              payload=b"x" * size, payload_size=size,
                              submitted_at=0.125)
        assert codec.encoded_size(message) == size + DATA_HEADER_SIZE


def test_library_profile_charges_the_real_wire_header():
    # The library implementation *is* this repo's wire format: the frame
    # size the simulator charges equals the encoded datagram size.
    assert LIBRARY.header_bytes == DATA_HEADER_SIZE


def test_daemon_and_spread_profiles_stay_above_the_wire_floor():
    # Their extra header bytes model IPC / group-name overhead on top of
    # the physical wire framing; they can never be thinner than the
    # codec's actual framing.
    assert DAEMON.header_bytes >= DATA_HEADER_SIZE
    assert SPREAD.header_bytes >= DATA_HEADER_SIZE


def test_sim_frame_sizes_cross_validate_against_codec():
    """Frames exactly as SimNode builds them, checked against encode()."""
    payload_size = 1350
    message = DataMessage(seq=4, pid=1, round=3, service=Service.AGREED,
                          payload=b"p" * payload_size,
                          payload_size=payload_size, submitted_at=0.5)
    data_frame = Frame(src=1, dst=None, traffic=Traffic.DATA,
                       size=payload_size + LIBRARY.header_bytes,
                       payload=message)
    assert data_frame.size == codec.encoded_size(message)

    token = Token(ring_id=0, hop=11, seq=44, aru=40, aru_id=2, fcc=4,
                  rtr=(41, 42))
    token_frame = Frame(src=1, dst=2, traffic=Traffic.TOKEN,
                        size=token.size, payload=token)
    assert token_frame.size == codec.encoded_size(token)


def test_oversize_rtr_entry_fails_encode_rather_than_lying():
    # The size model says 4 bytes per rtr entry; an entry that cannot fit
    # in 4 bytes must be an error, not a silently wider encoding.
    with pytest.raises(codec.EncodeError):
        codec.encode(Token(rtr=(codec.MAX_RTR_SEQ + 1,)))
