"""Multi-participant aru ownership scenarios driven by hand.

These walk the token around small rings manually (no harness) to pin
down the exact aru ownership transitions of Section III-A-2.
"""

import pytest

from repro.core import (
    Participant,
    ProtocolConfig,
    Ring,
    Service,
    initial_token,
    token_of,
)


def make_ring(n, **config_kw):
    ring = Ring.of(range(1, n + 1))
    config = ProtocolConfig(**config_kw)
    return ring, {pid: Participant(pid, ring, config) for pid in ring}


def pump_data(participants, sends, exclude=()):
    """Deliver multicast messages to everyone else."""
    for message in sends:
        for pid, participant in participants.items():
            if pid != message.pid and pid not in exclude:
                participant.on_data(message)


def handle(participants, pid, token, deliver_to_others=True, exclude=()):
    from repro.core import SendData

    actions = participants[pid].on_token(token)
    sends = [a.message for a in actions if isinstance(a, SendData)]
    if deliver_to_others:
        pump_data(participants, sends, exclude)
    return token_of(actions), sends


def test_aru_ownership_moves_to_slowest_participant():
    ring, participants = make_ring(3, accelerated_window=100)
    # P1 sends 5 messages, all post-token; P2 handles the token before
    # the data arrives (acceleration) and lowers the aru.
    for _i in range(5):
        participants[1].submit(b"x", Service.AGREED)
    actions = participants[1].on_token(initial_token())
    token1 = token_of(actions)
    assert token1.aru == token1.seq == 5  # sender holds its own

    token2, _ = handle(participants, 2, token1, deliver_to_others=False)
    assert token2.aru == 0 and token2.aru_id == 2

    # Now P1's messages reach P2 and P3 before the next visits.
    from repro.core import SendData

    sends = [a.message for a in actions if isinstance(a, SendData)]
    pump_data(participants, sends)

    token3, _ = handle(participants, 3, token2)
    # P3 has everything but does not own the aru: leaves it alone.
    assert token3.aru == 0 and token3.aru_id == 2

    token4, _ = handle(participants, 1, token3)
    assert token4.aru == 0 and token4.aru_id == 2

    # The owner raises once the token returns: fully caught up.
    token5, _ = handle(participants, 2, token4)
    assert token5.aru == 5
    assert token5.aru_id is None


def test_ownership_steals_to_lower_participant():
    ring, participants = make_ring(3, accelerated_window=100)
    for _i in range(4):
        participants[1].submit(b"x", Service.AGREED)
    actions = participants[1].on_token(initial_token())
    token1 = token_of(actions)
    from repro.core import SendData

    sends = [a.message for a in actions if isinstance(a, SendData)]

    # P2 receives NOTHING; P3 receives everything.
    token2, _ = handle(participants, 2, token1, deliver_to_others=False)
    assert token2.aru == 0 and token2.aru_id == 2
    pump_data(participants, sends, exclude=(2,))

    token3, _ = handle(participants, 3, token2)
    assert (token3.aru, token3.aru_id) == (0, 2)

    token4, _ = handle(participants, 1, token3)
    token5, _ = handle(participants, 2, token4, deliver_to_others=False)
    # P2 still has nothing: it raises only to its local aru (0), keeping
    # ownership because it is still behind.
    assert token5.aru == 0 and token5.aru_id == 2

    # P2 finally receives the messages; next visit releases ownership.
    pump_data({2: participants[2]}, sends)
    token6, _ = handle(participants, 3, token5)
    token7, _ = handle(participants, 1, token6)
    token8, _ = handle(participants, 2, token7)
    assert token8.aru == 4 and token8.aru_id is None


def test_safe_bound_advances_only_after_two_full_arus():
    ring, participants = make_ring(2, accelerated_window=0)
    participants[1].submit(b"s", Service.SAFE)
    actions = participants[1].on_token(initial_token())
    token1 = token_of(actions)
    from repro.core import SendData, Deliver

    sends = [a.message for a in actions if isinstance(a, SendData)]
    assert not any(isinstance(a, Deliver) for a in actions)
    pump_data(participants, sends)
    token2, _ = handle(participants, 2, token1)
    assert token2.aru == 1
    # P1's second handling: its last two sent arus are (1, 1) -> bound 1.
    actions = participants[1].on_token(token2)
    delivered = [a.message for a in actions if isinstance(a, Deliver)]
    assert [m.seq for m in delivered] == [1]
    assert participants[1].safe_bound == 1


def test_singleton_participant_full_cycle():
    ring = Ring.of([7])
    participant = Participant(7, ring, ProtocolConfig(accelerated_window=5))
    participant.submit("a", Service.AGREED)
    participant.submit("b", Service.SAFE)
    token = initial_token()
    all_delivered = []
    for _round in range(3):
        actions = participant.on_token(token)
        token = token_of(actions)
        from repro.core import Deliver

        all_delivered.extend(
            a.message.payload for a in actions if isinstance(a, Deliver)
        )
    assert all_delivered == ["a", "b"]
    assert participant.safe_bound >= 2


def test_discarded_messages_not_retransmitted_but_ignored():
    ring, participants = make_ring(2, accelerated_window=0)
    for _i in range(3):
        participants[1].submit(b"x", Service.AGREED)
    actions = participants[1].on_token(initial_token())
    token1 = token_of(actions)
    from repro.core import SendData

    pump_data(participants, [a.message for a in actions if isinstance(a, SendData)])
    token2, _ = handle(participants, 2, token1)
    token3, _ = handle(participants, 1, token2)
    token4, _ = handle(participants, 2, token3)
    # By now everything is stable and discarded at both.
    assert participants[1].buffer.discarded_upto == 3
    # A stale request for a discarded message is dropped silently.
    stale = token4.evolve(hop=token4.hop + 2, rtr=(1, 2))
    actions = participants[1].on_token(stale)
    retrans = [a for a in actions if isinstance(a, SendData) and a.retransmission]
    assert retrans == []
    assert token_of(actions).rtr == ()
