"""``.rcap`` capture layer: writer/reader, taps in both worlds, decoder.

The point under test is the tentpole claim: the simulated switch and the
real UDP transport write the *same* capture format, so one decoder
serves both and the committed reference samples stay readable.
"""

import os

import pytest

from repro.core import ProtocolConfig, Service, Token
from repro.core.messages import DataMessage
from repro.emulation import EmulatedRing
from repro.net import GIGABIT
from repro.sim import LIBRARY
from repro.sim.cluster import SimCluster
from repro.wire import codec
from repro.wire.capture import (
    MULTICAST,
    TRAFFIC_DATA,
    TRAFFIC_TOKEN,
    WORLD_EMULATION,
    WORLD_SIM,
    CaptureError,
    CaptureReader,
    CaptureWriter,
)
from repro.wire.decode import render_capture, render_summary, summarize_capture

SAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench_results", "captures",
)


def data_message(seq=1):
    return DataMessage(seq=seq, pid=0, round=1, service=Service.AGREED,
                       payload=b"capture", payload_size=7, submitted_at=0.5)


# -- writer / reader ----------------------------------------------------------

def test_capture_roundtrip(tmp_path):
    path = str(tmp_path / "round.rcap")
    token = Token(ring_id=3, seq=9, aru=9)
    with CaptureWriter(path, WORLD_SIM, label="unit test") as writer:
        assert writer.write_message(0.25, 1, None, TRAFFIC_DATA,
                                    data_message(), ring_id=3)
        assert writer.write_message(0.5, 1, 2, TRAFFIC_TOKEN, token)
        assert writer.records_written == 2

    reader = CaptureReader(path)
    assert reader.world_name == "sim"
    assert reader.label == "unit test"
    records = list(reader)
    assert not reader.truncated_tail
    assert [r.traffic for r in records] == [TRAFFIC_DATA, TRAFFIC_TOKEN]
    assert records[0].dst == MULTICAST
    assert records[0].timestamp == 0.25
    first = records[0].decode()
    assert first.message == data_message()
    assert first.ring_id == 3
    assert records[1].decode().message == token


def test_capture_unencodable_payload_is_skipped_not_fatal(tmp_path):
    path = str(tmp_path / "skip.rcap")

    class SimOnly:
        pass

    with CaptureWriter(path, WORLD_SIM) as writer:
        assert not writer.write_message(0.0, 0, None, TRAFFIC_DATA, SimOnly())
        assert writer.write_message(0.1, 0, None, TRAFFIC_DATA, data_message())
        assert writer.records_skipped == 1
        assert writer.records_written == 1
    assert len(list(CaptureReader(path))) == 1


def test_capture_truncated_tail_detected(tmp_path):
    path = str(tmp_path / "trunc.rcap")
    with CaptureWriter(path, WORLD_EMULATION) as writer:
        writer.write_message(0.0, 0, None, TRAFFIC_DATA, data_message(1))
        writer.write_message(1.0, 1, None, TRAFFIC_DATA, data_message(2))
    with open(path, "rb") as handle:
        blob = handle.read()
    cut = str(tmp_path / "cut.rcap")
    with open(cut, "wb") as handle:
        handle.write(blob[:-10])  # crash mid-record

    reader = CaptureReader(cut)
    records = list(reader)
    assert reader.truncated_tail
    assert len(records) == 1  # the complete record before the tear survives
    assert records[0].decode().message == data_message(1)
    lines = list(render_capture(cut))
    assert any("mid-record" in line for line in lines)


def test_capture_rejects_non_rcap_files(tmp_path):
    bogus = str(tmp_path / "bogus.rcap")
    with open(bogus, "wb") as handle:
        handle.write(b"not a capture at all")
    with pytest.raises(CaptureError):
        CaptureReader(bogus)


def test_corrupt_record_renders_as_undecodable(tmp_path):
    path = str(tmp_path / "corrupt.rcap")
    with CaptureWriter(path, WORLD_SIM) as writer:
        writer.write(0.0, 0, None, TRAFFIC_DATA, b"\x00" * 30)
        writer.write_message(0.1, 0, None, TRAFFIC_DATA, data_message())
    lines = list(render_capture(path))
    assert any("UNDECODABLE" in line for line in lines)
    summary = summarize_capture(path)
    assert summary["undecodable"] == 1
    assert summary["records"] == 2


# -- taps: the same format out of both worlds ---------------------------------

def test_sim_switch_tap_produces_decodable_capture(tmp_path):
    path = str(tmp_path / "sim.rcap")
    config = ProtocolConfig.accelerated(personal_window=4,
                                        accelerated_window=2)
    with CaptureWriter(path, WORLD_SIM, label="tap test") as writer:
        cluster = SimCluster(4, GIGABIT, LIBRARY, config, seed=1)
        cluster.attach_capture(writer)
        cluster.inject_at_rate(40e6, 0.005)
        cluster.run(0.005, 0.0, offered_bps=40e6)
    summary = summarize_capture(path)
    assert summary["world"] == "sim"
    assert summary["records"] > 0
    assert summary["undecodable"] == 0
    assert summary["records_by_kind"].get("token", 0) > 0
    assert summary["records_by_kind"].get("data", 0) > 0
    # The sim models payload bytes (payload=None, payload_size=1350), so
    # a captured data frame is exactly the wire header; the frame size
    # the sim charges is that header plus the modeled payload — the size
    # model and the codec agree record by record.
    for record in CaptureReader(path):
        decoded = record.decode()
        if record.traffic == TRAFFIC_DATA:
            assert len(record.blob) == codec.DATA_HEADER_SIZE
            assert (decoded.message.payload_size + len(record.blob)
                    == decoded.message.payload_size + LIBRARY.header_bytes)
        else:
            # Tokens carry everything on the wire: blob == modeled size.
            assert len(record.blob) == decoded.message.size


def test_emulation_tap_produces_decodable_capture(tmp_path):
    path = str(tmp_path / "emu.rcap")
    with CaptureWriter(path, WORLD_EMULATION, label="tap test") as writer:
        with EmulatedRing(3, capture=writer) as ring:
            for pid in range(3):
                ring.submit(pid, ("cap", pid), Service.AGREED)
            ring.collect_deliveries(expected_per_node=3, timeout_s=20.0)
    summary = summarize_capture(path)
    assert summary["world"] == "emulation"
    assert summary["undecodable"] == 0
    assert summary["records_by_kind"].get("token", 0) > 0
    assert summary["records_by_kind"].get("data", 0) >= 3


# -- the committed reference samples ------------------------------------------

@pytest.mark.parametrize("name,world", [
    ("sim_sample.rcap", "sim"),
    ("emu_sample.rcap", "emulation"),
])
def test_committed_samples_decode(name, world):
    path = os.path.join(SAMPLES_DIR, name)
    assert os.path.exists(path), "reference capture %s missing" % name
    summary = summarize_capture(path)
    assert summary["world"] == world
    assert summary["records"] > 0
    assert summary["undecodable"] == 0
    assert not summary["truncated_tail"]
    assert summary["records_by_kind"].get("token", 0) > 0
    assert summary["records_by_kind"].get("data", 0) > 0
    lines = list(render_capture(path, limit=5))
    assert lines[0].startswith("# rcap world=%s" % world)
    assert any("token" in line for line in lines[1:])
    assert list(render_summary(path))


def test_cli_decode_command_renders_samples(capsys):
    from repro.cli import main

    path = os.path.join(SAMPLES_DIR, "sim_sample.rcap")
    assert main(["decode", path, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "# rcap world=sim" in out
    assert "suppressed by --limit" in out

    assert main(["decode", path, "--summary"]) == 0
    out = capsys.readouterr().out
    assert "record(s)" in out
