"""The EVS axiom checkers — unit tests plus full-stack enforcement.

The second half runs real membership scenarios and feeds every
process's log through check_all, so ALL the axioms are enforced on
every scenario, not just the property each scenario was written for.
"""

import pytest

from repro.core import Service
from repro.evs import AppMessage, ConfigChange, Configuration, EVSViolation
from repro.evs.semantics import (
    check_all,
    check_messages_within_configuration,
    check_no_duplicates,
    check_self_inclusion,
    check_seq_order_within_configuration,
    check_transitional_placement,
    check_virtual_synchrony,
)
from repro.harness.evsnet import EVSNetwork


def regular(ring_id, members):
    return ConfigChange(Configuration.regular(ring_id, members))


def transitional(ring_id, members):
    return ConfigChange(Configuration.transitional(ring_id, members))


def msg(ring_id, seq, sender=1, payload=None, trans=False):
    return AppMessage(ring_id=ring_id, seq=seq, sender=sender,
                      payload=payload or ("p", seq), safe=False,
                      transitional=trans)


# ---------------------------------------------------------------------------
# Checker unit tests (synthetic logs)
# ---------------------------------------------------------------------------

def test_self_inclusion_violation_detected():
    log = [regular(1, (2, 3))]
    with pytest.raises(EVSViolation):
        check_self_inclusion(log, pid=1)


def test_message_before_configuration_rejected():
    with pytest.raises(EVSViolation):
        check_messages_within_configuration([msg(1, 1)])


def test_wrong_ring_attribution_detected():
    log = [regular(1, (1,)), msg(2, 1)]
    with pytest.raises(EVSViolation):
        check_messages_within_configuration(log)


def test_seq_regression_detected():
    log = [regular(1, (1,)), msg(1, 2), msg(1, 1)]
    with pytest.raises(EVSViolation):
        check_seq_order_within_configuration(log)


def test_transitional_message_in_regular_config_detected():
    log = [regular(1, (1,)), msg(1, 1, trans=True)]
    with pytest.raises(EVSViolation):
        check_transitional_placement(log)


def test_duplicate_delivery_detected():
    log = [regular(1, (1,)), msg(1, 1), msg(1, 1)]
    with pytest.raises(EVSViolation):
        check_no_duplicates(log)


def test_closed_segment_divergence_detected():
    a = [regular(1, (1, 2)), msg(1, 1, payload="x"), regular(2, (1, 2))]
    b = [regular(1, (1, 2)), msg(1, 1, payload="y"), regular(2, (1, 2))]
    with pytest.raises(EVSViolation):
        check_virtual_synchrony({1: a, 2: b})


def test_open_segment_prefix_allowed():
    a = [regular(1, (1, 2)), msg(1, 1), msg(1, 2)]
    b = [regular(1, (1, 2)), msg(1, 1)]
    check_virtual_synchrony({1: a, 2: b})  # prefix-related: fine


def test_open_segment_divergence_detected():
    a = [regular(1, (1, 2)), msg(1, 1, payload="x")]
    b = [regular(1, (1, 2)), msg(1, 1, payload="y")]
    with pytest.raises(EVSViolation):
        check_virtual_synchrony({1: a, 2: b})


def test_clean_log_passes_everything():
    logs = {
        pid: [
            regular(pid, (pid,)),
            transitional(pid, (pid,)),
            regular(100, (1, 2)),
            msg(100, 1),
            msg(100, 2),
        ]
        for pid in (1, 2)
    }
    check_all(logs)


# ---------------------------------------------------------------------------
# Full-stack enforcement on real membership scenarios
# ---------------------------------------------------------------------------

def logs_of(net):
    return {
        pid: net.processes[pid].app_log
        for pid in net.pids
        if pid not in net.crashed
    }


def test_axioms_hold_through_formation_and_traffic():
    net = EVSNetwork([1, 2, 3, 4])
    net.run_until_converged()
    for pid in (1, 2, 3, 4):
        for i in range(8):
            net.submit(pid, (pid, i), Service.SAFE if i % 2 else Service.AGREED)
    net.run_quiet(400)
    check_all(logs_of(net))


def test_axioms_hold_through_crash():
    net = EVSNetwork([1, 2, 3, 4])
    net.run_until_converged()
    for pid in (1, 2, 3, 4):
        for i in range(10):
            net.submit(pid, (pid, i))
    net.run_quiet(6)
    net.crash(4)
    net.run_until_converged()
    net.run_quiet(300)
    check_all(logs_of(net))


def test_axioms_hold_through_partition_and_merge():
    net = EVSNetwork([1, 2, 3, 4, 5])
    net.run_until_converged()
    for pid in net.pids:
        net.submit(pid, ("pre", pid), Service.SAFE)
    net.run_quiet(5)
    net.set_partition({1, 2, 3}, {4, 5})
    net.run_until_converged()
    net.submit(1, "left")
    net.submit(4, "right")
    net.run_quiet(300)
    check_all(logs_of(net))
    net.heal()
    net.run_until_converged()
    for pid in net.pids:
        net.submit(pid, ("post", pid))
    net.run_quiet(400)
    check_all(logs_of(net))


def test_axioms_hold_through_late_join_and_cascade():
    net = EVSNetwork([1, 2, 3])
    net.run_until_converged()
    net.submit(2, "early", Service.SAFE)
    net.run_quiet(200)
    net.spawn(8)
    net.run_until_converged()
    net.crash(1)
    net.run_until_converged()
    net.submit(8, "late")
    net.run_quiet(300)
    check_all(logs_of(net))
