"""Wire codec coverage for the three gossip message types."""

import pytest

from repro.membership.gossip import (
    ALIVE,
    DEAD,
    SUSPECT,
    GossipAck,
    GossipPing,
    GossipPingReq,
    GossipUpdate,
)
# Import from the codec module, not the package: the package also has
# a `decode` *submodule* (the capture analyzer) which shadows the
# package-level `decode` function once anything imports it.
from repro.wire.codec import (
    GOSSIP_BASE_SIZE,
    GOSSIP_REQ_BASE_SIZE,
    GOSSIP_UPDATE_SIZE,
    DecodeError,
    EncodeError,
    decode,
    encode,
    encoded_size,
)

UPDATES = (
    GossipUpdate(3, 0, ALIVE),
    GossipUpdate(7, 2, SUSPECT),
    GossipUpdate(11, 5, DEAD),
)

MESSAGES = [
    GossipPing(1, 0, 42),
    GossipPing(2, 3, 77, UPDATES),
    GossipPingReq(4, 1, 9, 101, UPDATES[:2]),
    GossipAck(9, 6, 101),
    GossipAck(9, 6, 101, UPDATES),
]


@pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
def test_gossip_roundtrip(message):
    blob = encode(message)
    assert decode(blob) == message
    assert len(blob) == encoded_size(message)


@pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
def test_gossip_sizes_match_sim_charging(message):
    # The sim charges GOSSIP_*_SIZE for gossip frames; the real codec
    # must agree, or the packet-level model drifts from the bytes.
    base = (GOSSIP_REQ_BASE_SIZE if isinstance(message, GossipPingReq)
            else GOSSIP_BASE_SIZE)
    assert len(encode(message)) == \
        base + len(message.updates) * GOSSIP_UPDATE_SIZE


def test_gossip_update_status_is_validated():
    bad = GossipPing(1, 0, 1, (GossipUpdate(2, 0, 9),))
    with pytest.raises(EncodeError):
        encode(bad)


def test_truncated_gossip_frame_is_rejected():
    blob = encode(GossipPing(2, 3, 77, UPDATES))
    with pytest.raises(DecodeError):
        decode(blob[: len(blob) - 5])


def test_corrupt_update_count_is_rejected():
    blob = bytearray(encode(GossipAck(9, 6, 101, UPDATES)))
    # The update count lives right after the fixed body; inflate it.
    count_offset = GOSSIP_BASE_SIZE - 4
    blob[count_offset:count_offset + 4] = (10 ** 6).to_bytes(4, "little")
    with pytest.raises(DecodeError):
        decode(bytes(blob))
