"""Property round-trips: ``decode(encode(m)) == m`` for every wire type.

Hypothesis ``builds()`` strategies cover each membership and spreadlike
message, the token (empty through maximal rtr lists), and data messages
with arbitrary structured payloads.  The example budget is bounded so
tier-1 stays fast; ``make wire-fuzz-smoke`` raises it via
``REPRO_WIRE_EXAMPLES``.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.core.packing import PackedItem, PackedPayload
from repro.membership.messages import (
    CommitToken,
    JoinMessage,
    MemberInfo,
    ProbeMessage,
    RecoveryComplete,
    RecoveryData,
)
from repro.spreadlike.protocol import (
    MAX_GROUP_NAME,
    ClientDisconnect,
    ClientId,
    GroupCast,
    GroupJoin,
    GroupLeave,
    GroupMessage,
    MembershipNotice,
    PrivateCast,
    PrivateMessage,
)
from repro.wire.codec import decode, decode_detail, encode, encoded_size

EXAMPLES = settings(
    max_examples=int(os.environ.get("REPRO_WIRE_EXAMPLES", "25")),
    deadline=None,
)

u64 = st.integers(0, 2 ** 64 - 1)
i64 = st.integers(-(2 ** 63), 2 ** 63 - 1)
u32 = st.integers(0, 2 ** 32 - 1)
services = st.sampled_from(list(Service))

# Group names: Spread-style, 1..MAX_GROUP_NAME chars, no whitespace.
# The boundary lengths (1 and 32) and non-ASCII names are explicit
# examples below; the strategy also reaches them.
group_names = st.text(
    st.characters(blacklist_categories=("Zs", "Zl", "Zp", "Cc", "Cs")),
    min_size=1, max_size=MAX_GROUP_NAME,
)
client_ids = st.builds(ClientId, daemon=u64, name=st.text(max_size=40))

# Structured payload values: everything the TLV value codec supports.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2 ** 80), 2 ** 80),  # crosses the i64/bigint boundary
    st.floats(allow_nan=False),
    st.binary(max_size=64),
    st.text(max_size=32),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
        st.dictionaries(scalars, children, max_size=4),
        st.frozensets(scalars, max_size=4),
        st.sets(scalars, max_size=4),
    ),
    max_leaves=12,
)

tokens = st.builds(
    Token,
    ring_id=u64, hop=u64, seq=u64, aru=u64,
    aru_id=st.one_of(st.none(), st.integers(0, 2 ** 63 - 1)),
    fcc=u64,
    rtr=st.lists(u32, max_size=40).map(tuple),
)

data_messages = st.builds(
    DataMessage,
    seq=u64, pid=u64, round=u64,
    service=services,
    payload=st.one_of(st.binary(max_size=200), values),
    payload_size=u32,
    submitted_at=st.one_of(st.none(), st.floats(allow_nan=False)),
    sent_after_token=st.booleans(),
)

member_infos = st.builds(
    MemberInfo,
    pid=u64, old_ring_id=i64, old_aru=i64, high_seq=i64,
    old_members=st.lists(u64, max_size=8).map(tuple),
    old_safe_bound=i64, old_delivered_upto=i64,
)

membership_messages = st.one_of(
    st.builds(ProbeMessage, sender=u64, ring_id=u64),
    st.builds(
        JoinMessage,
        sender=u64,
        proc_set=st.frozensets(u64, max_size=16),
        fail_set=st.frozensets(u64, max_size=16),
        ring_seq=u64,
    ),
    st.builds(
        CommitToken,
        new_ring_id=u64,
        members=st.lists(u64, max_size=16).map(tuple),
        rotation=u32,
        collected=st.lists(member_infos, max_size=8).map(tuple),
    ),
    st.builds(RecoveryData, sender=u64, old_ring_id=u64,
              message=data_messages),
    st.builds(RecoveryComplete, sender=u64, new_ring_id=u64),
)

spreadlike_payloads = st.one_of(
    st.builds(GroupJoin, group=group_names, client=client_ids),
    st.builds(GroupLeave, group=group_names, client=client_ids),
    st.builds(ClientDisconnect, client=client_ids),
    st.builds(PrivateCast, dst=client_ids, sender=client_ids, payload=values),
    st.builds(GroupCast, groups=st.lists(group_names, max_size=4).map(tuple),
              sender=client_ids, payload=values),
    st.builds(GroupMessage, groups=st.lists(group_names, max_size=4).map(tuple),
              sender=client_ids, payload=values, service=services, seq=u64),
    st.builds(PrivateMessage, sender=client_ids, payload=values,
              service=services, seq=u64),
    st.builds(
        MembershipNotice,
        group=group_names,
        members=st.lists(client_ids, max_size=4).map(tuple),
        joined=st.lists(client_ids, max_size=4).map(tuple),
        left=st.lists(client_ids, max_size=4).map(tuple),
        seq=u64,
    ),
)

packed_payloads = st.builds(
    PackedPayload,
    items=st.lists(
        st.builds(
            PackedItem,
            payload=st.one_of(st.binary(max_size=64), values),
            # Bounded so the packed total still fits the outer message's
            # u32 payload_size field.
            payload_size=st.integers(0, 2 ** 20),
            submitted_at=st.one_of(st.none(), st.floats(allow_nan=False)),
        ),
        max_size=6,
    ).map(tuple),
)


@EXAMPLES
@given(token=tokens)
def test_token_roundtrip(token):
    decoded = decode_detail(encode(token))
    assert decoded.message == token
    assert decoded.kind == "token"
    # Token frames are self-describing: the frame ring id is the token's.
    assert decoded.ring_id == token.ring_id


def test_token_rtr_extremes_roundtrip():
    empty = Token(rtr=())
    assert decode(encode(empty)) == empty
    maximal = Token(rtr=tuple(range(10_000)) + (2 ** 32 - 1,))
    assert decode(encode(maximal)) == maximal
    assert encoded_size(maximal) == len(encode(maximal))


@EXAMPLES
@given(message=data_messages)
def test_data_roundtrip(message):
    assert decode(encode(message)) == message


@EXAMPLES
@given(message=membership_messages)
def test_membership_roundtrip(message):
    assert decode(encode(message)) == message


@EXAMPLES
@given(payload=spreadlike_payloads, seq=u64)
def test_spreadlike_payload_roundtrip(payload, seq):
    message = DataMessage(seq=seq, pid=1, round=1, service=Service.AGREED,
                          payload=payload, payload_size=100,
                          submitted_at=None)
    assert decode(encode(message)) == message


@EXAMPLES
@given(packed=packed_payloads)
def test_packed_payload_roundtrip(packed):
    message = DataMessage(seq=3, pid=0, round=2, service=Service.SAFE,
                          payload=packed, payload_size=packed.total_size,
                          submitted_at=0.5)
    assert decode(encode(message)) == message


def test_group_name_boundaries_roundtrip():
    cid = ClientId(0, "c")
    for name in ("g",                       # minimum length
                 "g" * MAX_GROUP_NAME,      # maximum length
                 "π" * MAX_GROUP_NAME,      # max length, multibyte UTF-8
                 "grp-with_punct.32"):
        payload = GroupJoin(group=name, client=cid)
        message = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                              payload=payload, payload_size=64,
                              submitted_at=None)
        assert decode(encode(message)) == message


@EXAMPLES
@given(message=st.one_of(tokens, data_messages, membership_messages))
def test_encoded_size_and_determinism(message):
    blob = encode(message)
    assert encoded_size(message) == len(blob)
    assert encode(message) == blob
