"""Metric conservation: the registry, the monitor, and the raw counters
must be three views of the same numbers.

The unified :class:`~repro.obs.registry.MetricsRegistry` only *binds*
views over counters the hot paths already maintain, so on any seeded
run its per-node values, its cluster aggregates, the
:class:`~repro.net.monitors.FabricMonitor` snapshot, and the
participants' own stats must agree exactly — any drift means a counter
was double-registered or a shim stopped being a shim.
"""

from repro.core import ProtocolConfig
from repro.net import GIGABIT
from repro.sim import LIBRARY
from repro.sim.cluster import SimCluster


def _run_cluster(seed=2, n_nodes=4, duration_s=0.01, rate_bps=200e6):
    config = ProtocolConfig.accelerated(
        personal_window=4, accelerated_window=2
    )
    cluster = SimCluster(n_nodes, GIGABIT, LIBRARY, config, seed=seed)
    cluster.inject_at_rate(rate_bps, duration_s)
    result = cluster.run(duration_s, 0.0, offered_bps=rate_bps)
    return cluster, result


def test_registry_matches_participant_stats_exactly():
    cluster, _ = _run_cluster()
    names = (
        "tokens_handled", "messages_initiated", "data_received",
        "delivered", "retransmissions_sent",
    )
    for name in names:
        metric = "core.participant." + name
        total = 0
        for pid, node in cluster.nodes.items():
            raw = getattr(node.participant.stats, name)
            assert cluster.metrics.value(metric, node=pid) == raw
            total += raw
        assert cluster.metrics.total(metric) == total
    assert cluster.metrics.total("core.participant.delivered") > 0


def test_registry_matches_fabric_monitor_exactly():
    cluster, _ = _run_cluster()
    snap = cluster.monitor.snapshot()
    metrics = cluster.metrics
    assert metrics.total("net.nic.frames_sent") == snap.frames_sent
    assert metrics.total("net.nic.bytes_sent") == snap.bytes_sent
    assert metrics.total("net.port.frames_forwarded") == snap.frames_forwarded
    assert metrics.total("net.nic.drops_overflow") == snap.nic_drops
    # Per-node NIC views agree with the raw attributes.
    for node in cluster.nodes.values():
        pid = node.pid
        assert metrics.value("net.nic.frames_sent", node=pid) == (
            node.nic.frames_sent
        )


def test_traffic_class_breakdown_conserves_switch_totals():
    cluster, _ = _run_cluster()
    snap = cluster.monitor.snapshot()
    switch = cluster.switch
    # The per-class breakdown partitions switch ingress exactly.
    assert sum(snap.frames_by_class.values()) == switch.frames_received
    assert snap.frames_by_class == dict(switch.class_frames)
    # And the registry's bound per-class views read the same numbers.
    for cls, frames in snap.frames_by_class.items():
        assert cluster.metrics.value(
            "net.switch.class.%s.frames" % cls
        ) == frames
        assert cluster.metrics.value(
            "net.switch.class.%s.bytes" % cls
        ) == snap.bytes_by_class[cls]


def test_frame_conservation_across_the_fabric():
    cluster, result = _run_cluster()
    snap = cluster.monitor.snapshot()
    # Every frame a NIC accepted reached switch ingress (the sim fabric
    # has no lossy segment between NIC and switch).
    assert snap.frames_sent == cluster.switch.frames_received
    # Switch ingress fans out: forwarded + dropped covers every
    # (frame, egress-port) pair the forwarding decision produced.
    total_ports_drops = sum(
        cluster.switch.port(h).drops_overflow
        + cluster.switch.port(h).drops_injected
        for h in cluster.switch.host_ids
    )
    # Multicast data fans to n-1 ports and unicast tokens to one, so
    # rather than re-deriving the exact fan-out mix, check the
    # accounting identity: registry, snapshot and switch agree.
    assert snap.switch_drops == cluster.switch.total_drops()
    assert cluster.metrics.total("net.port.drops_overflow") + (
        cluster.metrics.total("net.port.drops_injected")
    ) == total_ports_drops
    assert result.switch_drops == snap.switch_drops


def test_snapshot_delta_of_identical_state_is_zero():
    cluster, _ = _run_cluster()
    before = cluster.metrics.snapshot()
    delta = cluster.metrics.delta(before)
    for block in list(delta["nodes"].values()) + [delta["cluster"]]:
        for name, value in block.items():
            if isinstance(value, dict):
                assert value["count"] == 0
            else:
                assert value == 0, "metric %s drifted by %r" % (name, value)


def test_registry_snapshot_totals_match_sim_result():
    cluster, result = _run_cluster()
    snap = cluster.metrics.snapshot()
    cluster_block = snap["cluster"]
    assert cluster_block["sim.node.socket_drops"] == result.socket_drops
    assert cluster_block["sim.node.tokens_resent"] == result.tokens_resent
    assert cluster_block["core.participant.retransmissions_sent"] == (
        result.retransmissions
    )
    assert cluster_block["net.nic.drops_overflow"] == result.nic_drops
