"""RoundMarker on the wire: codec registration and size drift-guard."""

from repro.core.config import Service
from repro.core.messages import DataMessage
from repro.multiring import MARKER_WIRE_SIZE, RoundMarker
from repro.wire import codec


def test_marker_roundtrips_as_a_data_payload():
    message = DataMessage(
        seq=42, pid=3, round=7, service=Service.AGREED,
        payload=RoundMarker(ring_index=2, round=91),
        payload_size=MARKER_WIRE_SIZE,
    )
    assert codec.decode(codec.encode(message)) == message


def test_marker_roundtrips_inside_containers():
    payload = ("wrapped", [RoundMarker(0, 1), RoundMarker(1, 2)])
    message = DataMessage(
        seq=1, pid=0, round=1, service=Service.AGREED,
        payload=payload, payload_size=100,
    )
    assert codec.decode(codec.encode(message)).payload == payload


def test_marker_wire_size_constant_matches_codec():
    """The sim charges markers MARKER_WIRE_SIZE bytes of payload; this
    pins the constant to the codec's actual value encoding so the two
    can never drift apart silently."""
    chunk = bytearray()
    codec._encode_value(RoundMarker(ring_index=7, round=123456), chunk)
    assert len(chunk) == MARKER_WIRE_SIZE
    # Field values do not change the size (both fields are fixed i64).
    chunk2 = bytearray()
    codec._encode_value(RoundMarker(ring_index=0, round=1), chunk2)
    assert len(chunk2) == MARKER_WIRE_SIZE


def test_oversized_round_number_still_roundtrips():
    # Rounds past i64 take the BIGINT value encoding (larger frame,
    # same exact round-trip) — a ring would need ~10^18 rounds first.
    too_big = RoundMarker(ring_index=0, round=1 << 70)
    message = DataMessage(
        seq=1, pid=0, round=1, service=Service.AGREED,
        payload=too_big, payload_size=64,
    )
    assert codec.decode(codec.encode(message)).payload == too_big


def test_marker_tag_is_stable():
    """0x3B is RoundMarker's wire tag forever (append-only registry)."""
    assert codec._OBJECT_TAGS[RoundMarker] == 0x3B
    cls, fields = codec._OBJECT_SCHEMAS[0x3B]
    assert cls is RoundMarker
    assert fields == ("ring_index", "round")
