"""Per-fragment loss: the paper's large-datagram caveat, quantified."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.net import PerFragmentLoss, TEN_GIGABIT, Frame, Traffic
from repro.sim import LIBRARY, run_point


def frame_of(size):
    return Frame(src=0, dst=None, traffic=Traffic.DATA, size=size, payload=None)


def test_single_fragment_loss_rate_matches_p():
    loss = PerFragmentLoss(0.05, seed=1)
    drops = sum(loss(frame_of(1350)) for _i in range(4000))
    assert drops / 4000 == pytest.approx(0.05, abs=0.012)


def test_large_datagrams_amplify_loss():
    # 8922-byte datagrams span 6 fragments: datagram loss approx
    # 1 - (1 - p)^6, about 6x the single-fragment rate for small p.
    p = 0.02
    small_loss = PerFragmentLoss(p, seed=2)
    large_loss = PerFragmentLoss(p, seed=2)
    n = 5000
    small_rate = sum(small_loss(frame_of(1350)) for _i in range(n)) / n
    large_rate = sum(large_loss(frame_of(8922)) for _i in range(n)) / n
    expected_large = 1 - (1 - p) ** 6
    assert large_rate == pytest.approx(expected_large, abs=0.02)
    assert large_rate > small_rate * 3


def test_token_spared_by_default():
    loss = PerFragmentLoss(1.0, seed=3)
    token_frame = Frame(src=0, dst=1, traffic=Traffic.TOKEN, size=72,
                        payload=None)
    assert not loss(token_frame)
    assert loss(frame_of(1350))


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        PerFragmentLoss(1.5)


def test_protocol_absorbs_fragment_loss_on_large_payloads():
    # End-to-end: 8850-byte payloads under per-fragment loss still
    # deliver the offered load via retransmission, at elevated latency.
    clean = run_point(
        ProtocolConfig.accelerated(personal_window=40, accelerated_window=30,
                                   global_window=400),
        LIBRARY, TEN_GIGABIT, 2000e6,
        payload_size=8850, duration_s=0.08, warmup_s=0.025,
    )
    lossy = run_point(
        ProtocolConfig.accelerated(personal_window=40, accelerated_window=30,
                                   global_window=400),
        LIBRARY, TEN_GIGABIT, 2000e6,
        payload_size=8850, duration_s=0.08, warmup_s=0.025,
        loss=PerFragmentLoss(0.001, seed=4),
    )
    assert lossy.retransmissions > 0
    assert lossy.achieved_bps == pytest.approx(2000e6, rel=0.15)
    assert lossy.latency.mean_s >= clean.latency.mean_s
