"""Edge cases of the simulated host model."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import LIBRARY, SPREAD, SimCluster, run_point


def test_socket_buffer_overflow_recovers():
    # On 10G, frames arrive faster than Spread-profile processing, so a
    # tiny receive socket overflows during bursts; the protocol's
    # retransmissions must still converge near the offered load.
    from repro.net import TEN_GIGABIT

    tiny = TEN_GIGABIT.with_overrides(socket_buffer_bytes=24 * 1024)
    config = ProtocolConfig(personal_window=30, global_window=300,
                            accelerated_window=25)
    result = run_point(
        config, SPREAD, tiny, 2200e6,
        duration_s=0.1, warmup_s=0.03, n_nodes=6,
    )
    assert result.socket_drops > 0
    assert result.retransmissions > 0
    # Goodput degrades under the loss/retransmission churn but the
    # service keeps flowing rather than collapsing.
    assert result.achieved_bps > 800e6


def test_zero_payload_messages_flow():
    config = ProtocolConfig.accelerated(personal_window=5, accelerated_window=5)
    cluster = SimCluster(3, GIGABIT, LIBRARY, config, payload_size=1)
    cluster.inject_at_rate(1e6, duration_s=0.02)
    result = cluster.run(0.02, warmup_s=0.005, offered_bps=1e6)
    assert result.achieved_bps > 0


def test_single_node_cluster_runs():
    config = ProtocolConfig.accelerated()
    cluster = SimCluster(1, GIGABIT, LIBRARY, config)
    cluster.inject_at_rate(50e6, duration_s=0.02)
    result = cluster.run(0.02, warmup_s=0.005, offered_bps=50e6)
    assert result.achieved_bps == pytest.approx(50e6, rel=0.2)
    assert not result.saturated


def test_two_node_cluster_total_order():
    delivered = {0: [], 1: []}
    config = ProtocolConfig.accelerated(personal_window=10, accelerated_window=5)
    cluster = SimCluster(2, GIGABIT, LIBRARY, config)
    for pid in (0, 1):
        cluster.nodes[pid]._deliver_callback = (
            lambda p, m, pid=pid: delivered[pid].append(m.seq)
        )
    cluster.inject_at_rate(100e6, duration_s=0.03)
    cluster.run(0.03, warmup_s=0.0, offered_bps=100e6)
    shortest = min(len(delivered[0]), len(delivered[1]))
    assert shortest > 10
    assert delivered[0][:shortest] == delivered[1][:shortest]


def test_result_row_rendering():
    result = run_point(
        ProtocolConfig.accelerated(), LIBRARY, GIGABIT, 100e6,
        duration_s=0.02, warmup_s=0.005, n_nodes=2,
    )
    row = result.row()
    assert "library" in row and "Mbps" in row
    assert result.latency_us > 0
    assert result.achieved_mbps == pytest.approx(result.achieved_bps / 1e6)
