"""RingPartitioner: stable, balanced, resize-friendly sharding."""

import pytest

from repro.multiring import RingPartitioner


def test_assignment_is_deterministic_and_in_range():
    partitioner = RingPartitioner(4)
    groups = ["chat", "orders", "audit"] + ["g%02d" % i for i in range(40)]
    first = partitioner.assignments(groups)
    second = partitioner.assignments(groups)
    assert first == second
    assert all(0 <= ring < 4 for ring in first.values())


def test_single_ring_takes_everything():
    partitioner = RingPartitioner(1)
    assert partitioner.ring_of("anything") == 0
    assert partitioner.shards(["a", "b", "c"]) == [["a", "b", "c"]]


def test_rejects_zero_rings():
    with pytest.raises(ValueError):
        RingPartitioner(0)


def test_assignment_is_cross_process_stable():
    """CRC-based placement, not Python hash(): pin a few exemplars so
    any change to the placement function is a visible, deliberate
    break (committed merge fingerprints depend on it)."""
    partitioner = RingPartitioner(4)
    assert partitioner.assignments(
        ["chat", "orders", "audit", "alpha", "beta"]
    ) == {"chat": 3, "orders": 3, "audit": 1, "alpha": 1, "beta": 2}
    assert partitioner.fill(2) == [
        ["g000", "g001"], ["g090", "g091"], ["g080", "g081"],
        ["g010", "g011"],
    ]


def test_rendezvous_stability_under_resize():
    """Adding a ring only *steals* groups for the new ring; no group
    moves between surviving rings (the rendezvous property)."""
    groups = ["group-%03d" % i for i in range(200)]
    before = RingPartitioner(4).assignments(groups)
    after = RingPartitioner(5).assignments(groups)
    moved_elsewhere = [
        g for g in groups if after[g] != before[g] and after[g] != 4
    ]
    assert moved_elsewhere == []
    stolen = sum(1 for g in groups if after[g] == 4)
    # Roughly 1/5 of groups move to the new ring; generous bounds, the
    # exact count is deterministic anyway.
    assert 10 <= stolen <= 80


def test_removal_only_moves_the_dead_rings_groups():
    groups = ["group-%03d" % i for i in range(200)]
    wide = RingPartitioner(5).assignments(groups)
    narrow = RingPartitioner(4).assignments(groups)
    for group in groups:
        if wide[group] != 4:
            assert narrow[group] == wide[group]


def test_shards_partition_the_input():
    partitioner = RingPartitioner(3)
    groups = ["s%02d" % i for i in range(30)]
    shards = partitioner.shards(groups)
    assert sorted(g for shard in shards for g in shard) == sorted(groups)
    for ring_index, shard in enumerate(shards):
        for group in shard:
            assert partitioner.ring_of(group) == ring_index


def test_fill_balances_exactly_with_real_placement():
    partitioner = RingPartitioner(4)
    shards = partitioner.fill(3)
    assert [len(shard) for shard in shards] == [3, 3, 3, 3]
    # Every kept candidate really lives where the hash puts it.
    for ring_index, shard in enumerate(shards):
        for group in shard:
            assert partitioner.ring_of(group) == ring_index
    # And the walk is deterministic.
    assert shards == RingPartitioner(4).fill(3)
