"""RoundMerger: determinism, skips, lag accounting, error paths.

The property at the heart of the merge layer — the global order is a
pure function of the per-ring streams, independent of how those
streams interleave at the observer — is driven here with hypothesis:
random per-ring batch structures (including idle rings that only emit
markers) are fed to one merger per random interleaving, and every
interleaving must produce byte-identical output that is also a legal
interleaving of the sources.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multiring import (
    CrossRingChecker,
    MergeError,
    RoundMarker,
    RoundMerger,
    merge_fingerprint,
)
from repro.multiring.merge import merge_streams


def _marked_stream(ring_index, rounds):
    """Build one ring's agreed stream: data batches chopped by markers.

    ``rounds`` is a list of batch sizes; seqs count up through data and
    markers alike, like a real ring where markers consume sequence
    numbers too.
    """
    stream = []
    seq = 0
    for round_number, batch in enumerate(rounds, start=1):
        for item in range(batch):
            stream.append((seq, ring_index,
                           ("r%d" % ring_index, round_number, item)))
            seq += 1
        stream.append((seq, ring_index, RoundMarker(ring_index, round_number)))
        seq += 1
    return stream


# -- basics ----------------------------------------------------------------


def test_single_ring_passthrough():
    merger = RoundMerger(1)
    for entry in _marked_stream(0, [2, 0, 3]):
        merger.push(0, *entry)
    payloads = [e.payload for e in merger.merged]
    assert payloads == [
        ("r0", 1, 0), ("r0", 1, 1),
        ("r0", 3, 0), ("r0", 3, 1), ("r0", 3, 2),
    ]
    assert merger.rounds_merged == 3
    assert merger.skips_filled == 1
    assert merger.frontier == 3


def test_idle_ring_never_stalls_the_merge():
    """Ring 1 is idle (markers only); ring 0's data still merges, one
    round behind ring 1's marker progress at worst."""
    merger = RoundMerger(2)
    for entry in _marked_stream(0, [1, 1]):
        merger.push(0, *entry)
    assert merger.merged == []  # ring 1 has closed nothing yet
    merger.push(1, 0, 1, RoundMarker(1, 1))
    assert [e.payload for e in merger.merged] == [("r0", 1, 0)]
    merger.push(1, 1, 1, RoundMarker(1, 2))
    assert [e.payload for e in merger.merged] == [
        ("r0", 1, 0), ("r0", 2, 0),
    ]
    assert merger.skips_filled == 2
    assert merger.markers_seen == 4


def test_ring_lag_and_pending_track_the_slow_ring():
    merger = RoundMerger(2)
    for entry in _marked_stream(0, [2, 2, 2]):
        merger.push(0, *entry)
    assert merger.ring_lag(1) == 3
    assert merger.ring_lag(0) == 0
    assert merger.pending_entries(0) == 6
    merger.push(1, 0, 1, RoundMarker(1, 1))
    assert merger.ring_lag(1) == 2
    assert merger.pending_entries(0) == 4


def test_marker_out_of_order_is_a_merge_error():
    merger = RoundMerger(2)
    merger.push_marker(0, 1)
    with pytest.raises(MergeError):
        merger.push_marker(0, 3)
    with pytest.raises(MergeError):
        merger.push_marker(0, 1)


def test_foreign_marker_is_a_merge_error():
    merger = RoundMerger(2)
    with pytest.raises(MergeError):
        merger.push(0, 0, 0, RoundMarker(1, 1))


def test_on_entry_streams_in_merge_order():
    streamed = []
    merger = RoundMerger(2, on_entry=streamed.append)
    for ring in (0, 1):
        for entry in _marked_stream(ring, [1, 2]):
            merger.push(ring, *entry)
    assert streamed == merger.merged


def test_needs_at_least_one_ring():
    with pytest.raises(MergeError):
        RoundMerger(0)


# -- the determinism property ----------------------------------------------

#: Per-ring round structures: 1-4 rings, each with the same number of
#: rounds (1-6), each round holding 0-4 data messages.  Zero-size
#: rounds exercise the skip path; all-zero rings are fully idle.
_structures = st.integers(min_value=1, max_value=4).flatmap(
    lambda n_rings: st.lists(
        st.lists(st.integers(min_value=0, max_value=4),
                 min_size=1, max_size=6),
        min_size=n_rings, max_size=n_rings,
    ).filter(lambda rings: len({len(r) for r in rings}) == 1)
)


@given(_structures, st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_merge_is_interleaving_invariant(structure, rng):
    """Any arrival interleaving of the ring streams yields the same
    global order, and that order is a legal interleaving of sources."""
    streams = [
        _marked_stream(ring_index, rounds)
        for ring_index, rounds in enumerate(structure)
    ]
    reference = merge_streams(streams)
    reference_fp = merge_fingerprint(reference)

    # A random interleaving: repeatedly pop from a random non-empty
    # ring's head (ring-internal order is preserved, as the ring's
    # agreed order guarantees; cross-ring arrival order is arbitrary).
    cursors = [0] * len(streams)
    merger = RoundMerger(len(streams))
    while True:
        candidates = [
            i for i, stream in enumerate(streams) if cursors[i] < len(stream)
        ]
        if not candidates:
            break
        ring_index = rng.choice(candidates)
        entry = streams[ring_index][cursors[ring_index]]
        cursors[ring_index] += 1
        merger.push(ring_index, *entry)

    assert merge_fingerprint(merger.merged) == reference_fp
    assert merger.merged == reference

    # And the reference order passes the cross-ring oracle against the
    # per-ring data orders (markers excluded, as in the sim checker).
    ring_orders = {
        ring_index: [
            (seq, sender, payload) for seq, sender, payload in stream
            if type(payload) is not RoundMarker
        ]
        for ring_index, stream in enumerate(streams)
    }
    checker = CrossRingChecker()
    checker.check(reference, ring_orders)
    assert checker.ok, checker.violations


@given(_structures)
@settings(max_examples=50, deadline=None)
def test_merged_order_counts_reconcile(structure):
    streams = [
        _marked_stream(ring_index, rounds)
        for ring_index, rounds in enumerate(structure)
    ]
    merger = RoundMerger(len(streams))
    for ring_index, stream in enumerate(streams):
        for entry in stream:
            merger.push(ring_index, *entry)
    n_rounds = len(structure[0])
    assert merger.rounds_merged == n_rounds
    assert merger.frontier == n_rounds
    assert merger.entries_merged == sum(sum(r) for r in structure)
    assert merger.entries_merged == len(merger.merged)
    assert merger.skips_filled == sum(
        1 for rounds in structure for batch in rounds if batch == 0
    )
    assert merger.markers_seen == n_rounds * len(structure)
    assert all(merger.pending_entries(i) == 0 for i in range(len(streams)))
