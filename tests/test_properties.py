"""Property-based tests (hypothesis) on protocol invariants.

Random workloads, ring sizes, window configurations and loss patterns;
the invariants of DESIGN.md Section 5 must hold for every combination.
"""

import random

from hypothesis import example, given, settings, HealthCheck
from hypothesis import strategies as st

from repro import LoopbackRing, PriorityMethod, ProtocolConfig, Service
from repro.core import ReceiveBuffer, Service as Svc
from repro.core.messages import DataMessage
from helpers import FirstTimeLoss, assert_same_sequences


# ---------------------------------------------------------------------------
# ReceiveBuffer properties
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=60), max_size=120))
def test_buffer_aru_is_longest_prefix(seqs):
    buffer = ReceiveBuffer()
    for seq in seqs:
        buffer.insert(DataMessage(seq=seq, pid=1, round=1, service=Svc.AGREED))
    present = set(seqs)
    expected = 0
    while expected + 1 in present:
        expected += 1
    assert buffer.local_aru == expected


@given(
    st.sets(st.integers(min_value=1, max_value=50)),
    st.integers(min_value=0, max_value=50),
)
def test_buffer_missing_between_is_complement(present, hi):
    buffer = ReceiveBuffer()
    for seq in present:
        buffer.insert(DataMessage(seq=seq, pid=1, round=1, service=Svc.AGREED))
    lo = buffer.local_aru
    missing = buffer.missing_between(lo, hi)
    assert missing == [s for s in range(lo + 1, hi + 1) if s not in present]


# ---------------------------------------------------------------------------
# Whole-ring properties
# ---------------------------------------------------------------------------

ring_configs = st.builds(
    ProtocolConfig,
    personal_window=st.integers(min_value=1, max_value=30),
    global_window=st.integers(min_value=30, max_value=200),
    accelerated_window=st.integers(min_value=0, max_value=40),
    priority_method=st.sampled_from(list(PriorityMethod)),
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    config=ring_configs,
    n=st.integers(min_value=1, max_value=7),
    per_pid=st.integers(min_value=0, max_value=25),
    safe_fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_total_order_and_stability_any_config(config, n, per_pid, safe_fraction, seed):
    pids = list(range(1, n + 1))
    rng = random.Random(seed)
    ring = LoopbackRing(pids, config)  # stability checked inside harness
    total = 0
    for pid in pids:
        for i in range(per_pid):
            service = Service.SAFE if rng.random() < safe_fraction else Service.AGREED
            ring.submit(pid, (pid, i), service)
            total += 1
    ring.run(max_steps=2_000_000)
    sequences = {p: ring.delivered_seqs(p) for p in pids}
    assert_same_sequences(sequences)
    assert sequences[pids[0]] == list(range(1, total + 1))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    accel=st.integers(min_value=0, max_value=25),
    method=st.sampled_from(list(PriorityMethod)),
    loss_seed=st.integers(min_value=0, max_value=10_000),
    loss_p=st.floats(min_value=0.0, max_value=0.25),
)
# Regression: a single first-transmission drop late in the run used to
# park the LoopbackRing one token rotation short of the Safe
# two-rotation stability rule — three participants stalled with Safe
# messages buffered but undelivered (run()'s idle heuristic now resets
# on delivery progress).
@example(accel=0, method=PriorityMethod.CONSERVATIVE,
         loss_seed=9968, loss_p=0.015625)
def test_total_order_under_random_loss(accel, method, loss_seed, loss_p):
    pids = [1, 2, 3, 4]
    config = ProtocolConfig(accelerated_window=accel, priority_method=method)
    loss = FirstTimeLoss(loss_seed, pids=pids, p=loss_p)
    ring = LoopbackRing(pids, config, drop_data=loss)
    for pid in pids:
        for i in range(15):
            ring.submit(pid, (pid, i), Service.SAFE if i % 4 == 0 else Service.AGREED)
    ring.run(max_steps=2_000_000)
    sequences = {p: ring.delivered_seqs(p) for p in pids}
    assert_same_sequences(sequences)
    assert sequences[1] == list(range(1, 61))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    accel=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_fifo_property_random(accel, seed):
    pids = [1, 2, 3]
    rng = random.Random(seed)
    ring = LoopbackRing(pids, ProtocolConfig(accelerated_window=accel))
    counts = {pid: 0 for pid in pids}
    for _ in range(60):
        pid = rng.choice(pids)
        ring.submit(pid, (pid, counts[pid]), Service.AGREED)
        counts[pid] += 1
    ring.run(max_steps=2_000_000)
    for viewer in pids:
        for sender in pids:
            ordered = [i for (p, i) in ring.delivered_payloads(viewer) if p == sender]
            assert ordered == sorted(ordered)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    accel=st.integers(min_value=0, max_value=20),
)
def test_no_retransmission_of_current_round_messages(seed, accel):
    """The accelerated protocol never requests messages covered only by
    the current token (DESIGN.md invariant: retransmission discipline)."""
    pids = [1, 2, 3, 4]
    config = ProtocolConfig(accelerated_window=accel)
    ring = LoopbackRing(pids, config)

    violations = []

    def check(pid, seqs):
        participant = ring.participants[pid]
        # Requests must lie within the previous-round horizon.
        horizon = participant._retransmit.request_horizon
        for seq in seqs:
            if seq > horizon:
                violations.append((pid, seq, horizon))

    ring.hub.subscribe("retransmission_requested", check)
    rng = random.Random(seed)
    for pid in pids:
        for i in range(rng.randint(0, 30)):
            ring.submit(pid, (pid, i))
    ring.run(max_steps=2_000_000)
    assert violations == []


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_no_loss_means_no_retransmissions(seed):
    pids = [1, 2, 3, 4, 5]
    ring = LoopbackRing(pids, ProtocolConfig.accelerated())
    rng = random.Random(seed)
    for pid in pids:
        for i in range(rng.randint(0, 40)):
            ring.submit(pid, (pid, i), Service.SAFE if i % 5 == 0 else Service.AGREED)
    ring.run(max_steps=2_000_000)
    for pid in pids:
        stats = ring.participants[pid].stats
        assert stats.retransmissions_requested == 0
        assert stats.retransmissions_sent == 0
