"""Tests for flow-control arithmetic and the delivery engine."""

import pytest

from repro.core import DeliveryEngine, ProtocolConfig, ReceiveBuffer, Service, Token
from repro.core.flow_control import new_message_budget, updated_fcc
from repro.core.messages import DataMessage


def msg(seq, safe=False, pid=1):
    return DataMessage(
        seq=seq, pid=pid, round=1,
        service=Service.SAFE if safe else Service.AGREED,
    )


# ---------------------------------------------------------------------------
# Flow control (Section III-A-1 formula)
# ---------------------------------------------------------------------------

def config(**kw):
    defaults = dict(personal_window=10, global_window=30, max_seq_gap=100)
    defaults.update(kw)
    return ProtocolConfig(**defaults)


def test_backlog_limits_budget():
    decision = new_message_budget(config(), Token(), backlog=3, num_retransmissions=0)
    assert decision.allowed_new == 3
    assert decision.limited_by_backlog


def test_personal_window_limits_budget():
    decision = new_message_budget(config(), Token(), backlog=50, num_retransmissions=0)
    assert decision.allowed_new == 10
    assert decision.limited_by_personal_window


def test_global_window_subtracts_fcc_and_retransmissions():
    token = Token(fcc=25)
    decision = new_message_budget(config(), token, backlog=50, num_retransmissions=2)
    # 30 - 25 - 2 = 3
    assert decision.allowed_new == 3
    assert decision.limited_by_global_window


def test_budget_never_negative():
    token = Token(fcc=100)
    decision = new_message_budget(config(), token, backlog=50, num_retransmissions=0)
    assert decision.allowed_new == 0


def test_seq_gap_limits_budget():
    # seq is far ahead of the global aru: only the remaining gap is allowed.
    token = Token(seq=95, aru=0)
    decision = new_message_budget(
        config(max_seq_gap=100), token, backlog=50, num_retransmissions=0
    )
    assert decision.allowed_new == 5
    assert decision.limited_by_seq_gap


def test_updated_fcc_swaps_contribution():
    token = Token(fcc=12)
    assert updated_fcc(token, sent_last_round=5, sending_this_round=8) == 15
    assert updated_fcc(token, sent_last_round=12, sending_this_round=0) == 0


# ---------------------------------------------------------------------------
# Delivery engine (Sections III-A-4, III-B)
# ---------------------------------------------------------------------------

def test_agreed_delivered_when_contiguous():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq))
    delivered = engine.collect_deliverable(buffer)
    assert [m.seq for m in delivered] == [1, 2, 3]
    assert engine.delivered_upto == 3


def test_gap_stops_delivery():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    buffer.insert(msg(1))
    buffer.insert(msg(3))
    assert [m.seq for m in engine.collect_deliverable(buffer)] == [1]
    buffer.insert(msg(2))
    assert [m.seq for m in engine.collect_deliverable(buffer)] == [2, 3]


def test_safe_waits_for_stability_bound():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    buffer.insert(msg(1, safe=True))
    assert engine.collect_deliverable(buffer) == []
    engine.note_token_sent(1)
    assert engine.collect_deliverable(buffer) == []  # only one round so far
    engine.note_token_sent(1)
    assert [m.seq for m in engine.collect_deliverable(buffer)] == [1]


def test_safe_bound_is_min_of_last_two_arus():
    engine = DeliveryEngine()
    engine.note_token_sent(5)
    engine.note_token_sent(9)
    assert engine.safe_bound == 5
    engine.note_token_sent(7)
    assert engine.safe_bound == 7


def test_safe_bound_is_monotone():
    engine = DeliveryEngine()
    engine.note_token_sent(5)
    engine.note_token_sent(9)
    assert engine.safe_bound == 5
    engine.note_token_sent(2)  # a lowered aru cannot retract the bound
    assert engine.safe_bound == 5


def test_undelivered_safe_blocks_later_agreed():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    buffer.insert(msg(1, safe=True))
    buffer.insert(msg(2, safe=False))
    assert engine.collect_deliverable(buffer) == []
    engine.note_token_sent(2)
    engine.note_token_sent(2)
    assert [m.seq for m in engine.collect_deliverable(buffer)] == [1, 2]


def test_discardable_requires_delivery_and_stability():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    buffer.insert(msg(1))
    buffer.insert(msg(2))
    engine.collect_deliverable(buffer)
    assert engine.discardable_upto() == 0  # delivered but not stable
    engine.note_token_sent(2)
    engine.note_token_sent(2)
    assert engine.discardable_upto() == 2


def test_total_delivered_counter():
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    for seq in range(1, 6):
        buffer.insert(msg(seq))
    engine.collect_deliverable(buffer)
    assert engine.total_delivered == 5
