"""Integration tests: full rings over the loopback harness."""

import pytest

from repro import LoopbackRing, PriorityMethod, ProtocolConfig, Service
from helpers import FirstTimeLoss, assert_same_sequences, mixed_workload


def run_ring(pids, config, plan, **kw):
    ring = LoopbackRing(pids, config, **kw)
    for pid, payload, service in plan:
        ring.submit(pid, payload, service)
    ring.run(max_steps=1_000_000)
    return ring


ALL_CONFIGS = [
    pytest.param(ProtocolConfig.original_ring(), id="original"),
    pytest.param(ProtocolConfig.accelerated(), id="accelerated-m2"),
    pytest.param(
        ProtocolConfig.accelerated(priority_method=PriorityMethod.AGGRESSIVE),
        id="accelerated-m1",
    ),
    pytest.param(ProtocolConfig(accelerated_window=1), id="window-1"),
    pytest.param(ProtocolConfig(accelerated_window=1000), id="window-huge"),
]


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_total_order_no_loss(config):
    pids = list(range(1, 9))
    plan = mixed_workload(seed=1, pids=pids, per_pid=30)
    ring = run_ring(pids, config, plan)
    sequences = {p: ring.delivered_seqs(p) for p in pids}
    assert_same_sequences(sequences)
    assert sequences[1] == list(range(1, len(plan) + 1))


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_total_order_under_loss(config):
    pids = list(range(1, 6))
    plan = mixed_workload(seed=2, pids=pids, per_pid=40)
    loss = FirstTimeLoss(seed=3, pids=pids, p=0.08)
    ring = run_ring(pids, config, plan, drop_data=loss)
    assert loss.drops > 0
    sequences = {p: ring.delivered_seqs(p) for p in pids}
    assert_same_sequences(sequences)
    assert sequences[1] == list(range(1, len(plan) + 1))


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_fifo_per_sender(config):
    pids = [1, 2, 3]
    plan = mixed_workload(seed=4, pids=pids, per_pid=25, safe_fraction=0.5)
    ring = run_ring(pids, config, plan)
    for viewer in pids:
        payloads = ring.delivered_payloads(viewer)
        for sender in pids:
            mine = [p for p in payloads if p.startswith("p%d-" % sender)]
            indices = [int(p.split("-")[1]) for p in mine]
            assert indices == sorted(indices), "FIFO violated for sender %d" % sender


def test_safe_stability_checked_throughout():
    # The harness asserts, at the moment of every Safe delivery, that all
    # participants hold the message; a full run without StabilityViolation
    # is the test.
    pids = [1, 2, 3, 4]
    plan = mixed_workload(seed=5, pids=pids, per_pid=30, safe_fraction=1.0)
    loss = FirstTimeLoss(seed=6, pids=pids, p=0.1)
    ring = run_ring(pids, ProtocolConfig.accelerated(), plan, drop_data=loss)
    assert ring.delivered_seqs(1) == list(range(1, len(plan) + 1))


def test_garbage_collection_bounds_buffers():
    pids = [1, 2, 3]
    plan = mixed_workload(seed=7, pids=pids, per_pid=100, safe_fraction=0.0)
    ring = run_ring(pids, ProtocolConfig.accelerated(), plan)
    for pid in pids:
        assert len(ring.participants[pid].buffer) < 100
        assert ring.discarded_upto[pid] > 0


def test_single_participant_ring():
    ring = LoopbackRing([1], ProtocolConfig.accelerated())
    for i in range(10):
        ring.submit(1, i, Service.SAFE if i % 2 else Service.AGREED)
    ring.run()
    assert ring.delivered_payloads(1) == list(range(10))


def test_two_participant_ring():
    ring = LoopbackRing([1, 2], ProtocolConfig.accelerated())
    ring.submit_many(1, ["a", "b"])
    ring.submit_many(2, ["c", "d"])
    ring.run()
    assert ring.delivered_payloads(1) == ring.delivered_payloads(2)
    assert sorted(ring.delivered_payloads(1)) == ["a", "b", "c", "d"]


def test_token_loss_recovered_by_retransmission():
    dropped = {"count": 0}

    def drop_first_token_to_3(token, dst):
        if dst == 3 and dropped["count"] == 0:
            dropped["count"] += 1
            return True
        return False

    ring = LoopbackRing([1, 2, 3], ProtocolConfig.accelerated(),
                        drop_token=drop_first_token_to_3)
    ring.submit_many(1, list(range(5)))
    ring.start()
    # Run until the ring stalls (token lost en route to 3).
    while ring.step():
        pass
    assert dropped["count"] == 1
    # Participant 2's retransmission timer fires.
    assert not ring.participants[2].progress_since_token_send()
    ring.retransmit_token(2)
    ring.run()
    assert ring.delivered_payloads(3) == list(range(5))


def test_duplicate_token_after_spurious_retransmit_is_harmless():
    ring = LoopbackRing([1, 2, 3], ProtocolConfig.accelerated())
    ring.submit_many(1, list(range(5)))
    ring.run_rounds(2)
    # A spurious timer: retransmit although the token was not lost.
    ring.retransmit_token(1)
    ring.run()
    total_dupes = sum(
        ring.participants[p].stats.duplicate_tokens for p in (1, 2, 3)
    )
    assert total_dupes >= 1
    assert ring.delivered_payloads(2) == list(range(5))


def test_backlog_drains_over_multiple_rounds():
    config = ProtocolConfig(personal_window=5, accelerated_window=2)
    ring = LoopbackRing([1, 2], config)
    ring.submit_many(1, list(range(23)))
    ring.run()
    assert ring.delivered_payloads(2) == list(range(23))
    # 23 messages at 5 per round needs at least 5 handlings.
    assert ring.participants[1].stats.tokens_handled >= 5


def test_flow_control_personal_window_respected():
    config = ProtocolConfig(personal_window=4, accelerated_window=2)
    hub_rounds = []

    ring = LoopbackRing([1, 2, 3], config)
    ring.hub.subscribe(
        "token_handled",
        lambda pid, received, sent, new_messages, retransmissions: hub_rounds.append(
            new_messages
        ),
    )
    for pid in (1, 2, 3):
        ring.submit_many(pid, list(range(40)))
    ring.run()
    assert hub_rounds and max(hub_rounds) <= 4


def test_flow_control_global_window_respected():
    config = ProtocolConfig(personal_window=50, global_window=60,
                            accelerated_window=10)
    ring = LoopbackRing([1, 2, 3], config)
    per_round_total = []
    ring.hub.subscribe(
        "token_handled",
        lambda pid, received, sent, new_messages, retransmissions: per_round_total.append(
            (new_messages, retransmissions, sent.fcc)
        ),
    )
    for pid in (1, 2, 3):
        ring.submit_many(pid, list(range(100)))
    ring.run()
    assert all(fcc <= 60 for _n, _r, fcc in per_round_total)
