"""Loss-model regressions: per-port RNG derivation and traffic guards."""

import pytest

from repro.core import Token
from repro.net import (
    BernoulliLoss,
    Frame,
    PerFragmentLoss,
    ReceiverLoss,
    SequenceLoss,
    Traffic,
    derive_port_loss,
)


def data_frame(seq, src=0, size=1350):
    class _Payload:
        def __init__(self, seq):
            self.seq = seq

    return Frame(src, None, Traffic.DATA, size, _Payload(seq))


def token_frame(seq=5, src=0):
    token = Token(seq=seq)
    return Frame(src, 1, Traffic.TOKEN, token.size, token)


# ---------------------------------------------------------------------------
# SequenceLoss: the traffic guard must run before the payload peek
# ---------------------------------------------------------------------------

def test_sequence_loss_never_drops_tokens():
    # Tokens expose a ``seq`` attribute too; a token whose seq is listed
    # must be neither dropped nor counted against the drop budget.
    loss = SequenceLoss([5], times=1)
    assert not loss(token_frame(seq=5))
    assert loss.dropped == 0
    # The budget is intact: the DATA frame with seq 5 still gets dropped.
    assert loss(data_frame(5))
    assert loss.dropped == 1
    # Budget exhausted: the retransmission gets through.
    assert not loss(data_frame(5))


def test_sequence_loss_token_does_not_consume_budget():
    loss = SequenceLoss([7], times=2)
    for _ in range(10):
        assert not loss(token_frame(seq=7))
    assert loss(data_frame(7))
    assert loss(data_frame(7))
    assert not loss(data_frame(7))
    assert loss.dropped == 2


# ---------------------------------------------------------------------------
# Per-port derivation: outcomes independent of port iteration order
# ---------------------------------------------------------------------------

def _port_outcomes(cls, order, frames=200, **kwargs):
    base = cls(0.3, seed=11, **kwargs)
    models = {port: base.for_port(port) for port in order}
    results = {port: [] for port in order}
    for i in range(frames):
        for port in order:
            results[port].append(models[port](data_frame(i + 1)))
    return base, results


@pytest.mark.parametrize("cls", [BernoulliLoss, PerFragmentLoss])
def test_per_port_outcomes_stable_under_port_reordering(cls):
    _, a = _port_outcomes(cls, [1, 2, 3])
    _, b = _port_outcomes(cls, [3, 1, 2])
    for port in (1, 2, 3):
        assert a[port] == b[port]


@pytest.mark.parametrize("cls", [BernoulliLoss, PerFragmentLoss])
def test_per_port_models_are_independent_streams(cls):
    _, results = _port_outcomes(cls, [1, 2])
    # Different ports see different (seeded) drop patterns.
    assert results[1] != results[2]


def test_shared_instance_aggregates_child_drops():
    base, results = _port_outcomes(BernoulliLoss, [1, 2, 3])
    total = sum(sum(r) for r in results.values())
    assert total > 0
    assert base.dropped == total


def test_per_fragment_parent_counts_fragments():
    base = PerFragmentLoss(0.0, seed=1)
    child = base.for_port(4)
    child(data_frame(1, size=8850))  # six fragments
    assert base.fragments_seen == child.fragments_seen == 6


def test_derive_port_loss_dispatch():
    bern = BernoulliLoss(0.5, seed=3)
    derived = derive_port_loss(bern, 2)
    assert isinstance(derived, BernoulliLoss) and derived is not bern

    recv = ReceiverLoss([1], inner=lambda frame: True)
    port_model = derive_port_loss(recv, 1)
    assert port_model(data_frame(1))
    assert recv.dropped == 1

    def predicate(frame):
        return False

    assert derive_port_loss(predicate, 9) is predicate
