"""Tests for frames, NIC, switch, and loss models."""

import pytest

from repro.net import (
    ETHERNET_MTU,
    GIGABIT,
    TEN_GIGABIT,
    WIRE_OVERHEAD,
    BernoulliLoss,
    FabricMonitor,
    Frame,
    Nic,
    SequenceLoss,
    Simulator,
    Switch,
    TargetedLoss,
    Traffic,
)


def make_fabric(spec=GIGABIT, hosts=(0, 1, 2, 3)):
    """A switch with one NIC per host; received frames are logged."""
    sim = Simulator()
    switch = Switch(sim, spec)
    received = {h: [] for h in hosts}
    nics = {}
    for host in hosts:
        switch.attach(host, received[host].append)
        nics[host] = Nic(sim, host, spec, switch.receive)
    return sim, switch, nics, received


def data_frame(src, dst, size=1422, payload=None):
    return Frame(src=src, dst=dst, traffic=Traffic.DATA, size=size, payload=payload)


# ---------------------------------------------------------------------------
# Frame model
# ---------------------------------------------------------------------------

def test_small_datagram_is_one_fragment():
    frame = data_frame(0, 1, size=1422)
    assert frame.fragment_count() == 1
    assert frame.wire_bytes() == 1422 + WIRE_OVERHEAD


def test_large_datagram_fragments():
    # The paper's 8850-byte payload + headers spans multiple frames.
    frame = data_frame(0, None, size=8922)
    assert frame.fragment_count() == -(-8922 // ETHERNET_MTU) == 6
    assert frame.wire_bytes() == 8922 + 6 * WIRE_OVERHEAD


def test_multicast_flag():
    assert data_frame(0, None).is_multicast
    assert not data_frame(0, 1).is_multicast


def test_frame_ids_unique():
    a, b = data_frame(0, 1), data_frame(0, 1)
    assert a.frame_id != b.frame_id


# ---------------------------------------------------------------------------
# Link presets
# ---------------------------------------------------------------------------

def test_serialization_delay_1g():
    # 1500 wire bytes at 1 Gbps = 12 microseconds.
    assert GIGABIT.serialization_s(1500) == pytest.approx(12e-6)


def test_serialization_delay_10g_is_ten_times_faster():
    ratio = GIGABIT.serialization_s(1500) / TEN_GIGABIT.serialization_s(1500)
    assert ratio == pytest.approx(10.0)


def test_latency_does_not_scale_with_rate():
    # The paper's core observation: 10G improved throughput 10x but
    # latency much less.  Our presets encode that.
    assert TEN_GIGABIT.propagation_s > GIGABIT.propagation_s / 10
    assert TEN_GIGABIT.switch_latency_s > GIGABIT.switch_latency_s / 10


def test_with_overrides_makes_copy():
    tweaked = GIGABIT.with_overrides(port_buffer_bytes=1)
    assert tweaked.port_buffer_bytes == 1
    assert GIGABIT.port_buffer_bytes != 1


# ---------------------------------------------------------------------------
# NIC + switch forwarding
# ---------------------------------------------------------------------------

def test_unicast_reaches_only_destination():
    sim, switch, nics, received = make_fabric()
    nics[0].send(data_frame(0, 2))
    sim.run()
    assert len(received[2]) == 1
    assert not received[1] and not received[3] and not received[0]


def test_multicast_reaches_all_but_sender():
    sim, switch, nics, received = make_fabric()
    nics[1].send(data_frame(1, None))
    sim.run()
    assert not received[1]
    assert all(len(received[h]) == 1 for h in (0, 2, 3))


def test_end_to_end_latency_matches_model():
    sim, switch, nics, received = make_fabric()
    frame = data_frame(0, 1, size=1430)
    nics[0].send(frame)
    sim.run()
    wire = frame.wire_bytes()
    expected = (
        GIGABIT.serialization_s(wire)      # host NIC clocks it out
        + GIGABIT.propagation_s            # host -> switch
        + GIGABIT.switch_latency_s         # forwarding
        + GIGABIT.serialization_s(wire)    # output port clocks it out
        + GIGABIT.propagation_s            # switch -> host
    )
    assert sim.now == pytest.approx(expected)


def test_port_fifo_no_reordering():
    sim, switch, nics, received = make_fabric()
    for i in range(10):
        nics[0].send(data_frame(0, 1, payload=i))
    sim.run()
    assert [f.payload for f in received[1]] == list(range(10))


def test_token_and_data_share_port_fifo():
    # Data sent before the token must arrive before it (same output
    # port) — the property the priority methods rely on.
    sim, switch, nics, received = make_fabric()
    nics[0].send(data_frame(0, None, payload="data"))
    nics[0].send(Frame(src=0, dst=1, traffic=Traffic.TOKEN, size=72, payload="tok"))
    sim.run()
    assert [f.payload for f in received[1]] == ["data", "tok"]


def test_switch_port_overflow_drops():
    tiny = GIGABIT.with_overrides(port_buffer_bytes=3 * 1500)
    sim, switch, nics, received = make_fabric(spec=tiny, hosts=(0, 1))
    # Burst far beyond the port buffer: NIC drains at line rate into a
    # same-rate port, so the port can hold at most its buffer.
    for i in range(50):
        nics[0].send(data_frame(0, 1, payload=i))
    sim.run()
    port = switch.port(1)
    assert port.drops_overflow == 0  # same-rate in/out never overflows
    # Now two senders converging on one output port must overflow.
    sim, switch, nics, received = make_fabric(spec=tiny, hosts=(0, 1, 2))
    for i in range(50):
        nics[0].send(data_frame(0, 2, payload=("a", i)))
        nics[1].send(data_frame(1, 2, payload=("b", i)))
    sim.run()
    assert switch.port(2).drops_overflow > 0
    assert len(received[2]) + switch.port(2).drops_overflow == 100


def test_nic_overflow_drops_and_reports():
    tiny = GIGABIT.with_overrides(nic_queue_bytes=2 * 1500)
    sim, switch, nics, received = make_fabric(spec=tiny, hosts=(0, 1))
    accepted = sum(nics[0].send(data_frame(0, 1)) for _ in range(10))
    assert accepted < 10
    assert nics[0].drops_overflow == 10 - accepted
    sim.run()
    assert len(received[1]) == accepted


def test_byte_conservation():
    sim, switch, nics, received = make_fabric()
    for i in range(20):
        nics[0].send(data_frame(0, None))
        nics[1].send(data_frame(1, 2))
    sim.run()
    monitor = FabricMonitor(sim, switch, list(nics.values()))
    snap = monitor.snapshot()
    # Each multicast is forwarded to 3 ports, each unicast to 1.
    assert snap.frames_sent == 40
    assert snap.frames_forwarded == 20 * 3 + 20
    assert snap.switch_drops == 0


def test_attach_duplicate_host_rejected():
    sim = Simulator()
    switch = Switch(sim, GIGABIT)
    switch.attach(1, lambda f: None)
    with pytest.raises(ValueError):
        switch.attach(1, lambda f: None)


def test_unknown_unicast_destination_raises():
    sim, switch, nics, _ = make_fabric(hosts=(0, 1))
    nics[0].send(data_frame(0, 99))
    with pytest.raises(ValueError):
        sim.run()


def test_max_queue_depth_tracked():
    sim, switch, nics, received = make_fabric(hosts=(0, 1, 2))
    for i in range(10):
        nics[0].send(data_frame(0, 2))
        nics[1].send(data_frame(1, 2))
    sim.run()
    assert switch.port(2).max_queue_bytes > 0


# ---------------------------------------------------------------------------
# Loss models
# ---------------------------------------------------------------------------

def test_bernoulli_loss_is_seeded_and_counted():
    a = BernoulliLoss(0.5, seed=7)
    b = BernoulliLoss(0.5, seed=7)
    frames = [data_frame(0, 1) for _ in range(100)]
    decisions_a = [a(f) for f in frames]
    decisions_b = [b(f) for f in frames]
    assert decisions_a == decisions_b
    assert a.dropped == sum(decisions_a) > 0


def test_bernoulli_can_spare_token():
    loss = BernoulliLoss(1.0, seed=1, spare_token=True)
    token = Frame(src=0, dst=1, traffic=Traffic.TOKEN, size=72, payload=None)
    assert not loss(token)
    assert loss(data_frame(0, 1))


def test_targeted_loss_max_drops():
    loss = TargetedLoss(lambda f: True, max_drops=2)
    frames = [data_frame(0, 1) for _ in range(5)]
    assert [loss(f) for f in frames] == [True, True, False, False, False]


def test_sequence_loss_drops_each_seq_once():
    class Seqish:
        def __init__(self, seq):
            self.seq = seq

    loss = SequenceLoss([5], times=1)
    first = data_frame(0, 1, payload=Seqish(5))
    again = data_frame(0, 1, payload=Seqish(5))
    other = data_frame(0, 1, payload=Seqish(6))
    assert loss(first)
    assert not loss(again)  # the retransmission gets through
    assert not loss(other)


def test_injected_loss_at_switch_port():
    sim = Simulator()
    switch = Switch(sim, GIGABIT)
    received = {0: [], 1: []}
    switch.attach(0, received[0].append)
    switch.attach(1, received[1].append, loss=lambda f: True)
    nic = Nic(sim, 0, GIGABIT, switch.receive)
    nic.send(data_frame(0, None))
    sim.run()
    assert received[1] == []
    assert switch.port(1).drops_injected == 1
