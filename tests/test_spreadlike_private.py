"""Tests for point-to-point (private) messages in the Spread-like layer."""

import pytest

from repro.core import Service
from repro.spreadlike import PrivateMessage, SpreadCluster, SpreadError


def test_private_message_delivered_to_target_only():
    cluster = SpreadCluster(3)
    alice = cluster.client("alice", daemon=0)
    bob = cluster.client("bob", daemon=1)
    carol = cluster.client("carol", daemon=2)
    cluster.flush()
    alice.send_private(bob.client_id, "psst")
    cluster.flush()
    got = bob.receive_private()
    assert len(got) == 1 and got[0].payload == "psst"
    assert got[0].sender == alice.client_id
    assert carol.receive_private() == []
    assert alice.receive_private() == []  # no loopback


def test_private_ordered_with_group_traffic():
    cluster = SpreadCluster(2)
    alice = cluster.client("alice", daemon=0)
    bob = cluster.client("bob", daemon=1)
    bob.join("g")
    cluster.flush()
    bob.receive()
    # Interleave group and private sends from alice; bob must see them
    # in submission order (single total order across kinds).
    alice.multicast("g", "g1")
    alice.send_private(bob.client_id, "p1")
    alice.multicast("g", "g2")
    alice.send_private(bob.client_id, "p2")
    cluster.flush()
    events = bob.receive()
    payloads = [e.payload for e in events]
    assert payloads == ["g1", "p1", "g2", "p2"]
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)


def test_private_to_same_daemon_client():
    cluster = SpreadCluster(1)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=0)
    a.send_private(b.client_id, "local")
    cluster.flush()
    assert [m.payload for m in b.receive_private()] == ["local"]


def test_private_to_disconnected_client_dropped():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=1)
    b.disconnect()
    cluster.flush()
    a.send_private(b.client_id, "too-late")
    cluster.flush()  # no crash; message silently dropped
    assert not b.connected


def test_private_safe_service():
    cluster = SpreadCluster(3)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=2)
    cluster.flush()
    a.send_private(b.client_id, "stable", service=Service.SAFE)
    cluster.flush()
    got = b.receive_private()
    assert got and got[0].service is Service.SAFE


def test_disconnected_sender_cannot_send_private():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=1)
    a.disconnect()
    cluster.flush()
    with pytest.raises(SpreadError):
        a.send_private(b.client_id, "zombie")
