"""The public API surface: every advertised name exists and imports."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.totem",
    "repro.net",
    "repro.sim",
    "repro.membership",
    "repro.evs",
    "repro.spreadlike",
    "repro.emulation",
    "repro.baselines",
    "repro.harness",
    "repro.workload",
    "repro.stats",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, "%s must declare __all__" % package_name
    for name in exported:
        assert hasattr(package, name), "%s.%s missing" % (package_name, name)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_packages_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 40, package_name


def test_core_entrypoint_signatures():
    from repro.core import Participant

    parameters = inspect.signature(Participant.__init__).parameters
    assert list(parameters)[1:3] == ["pid", "ring"]
    assert "service" in inspect.signature(Participant.submit).parameters


def test_run_point_signature_is_stable():
    from repro.sim import run_point

    parameters = inspect.signature(run_point).parameters
    for expected in ("protocol_config", "profile", "spec", "offered_bps",
                     "payload_size", "service", "duration_s", "warmup_s",
                     "seed", "loss"):
        assert expected in parameters, expected


def test_public_classes_have_docstrings():
    from repro.core import (
        AcceleratedWindowTuner,
        DeliveryEngine,
        Participant,
        ProtocolConfig,
        ReceiveBuffer,
        Ring,
        Token,
    )
    from repro.membership import EVSProcess
    from repro.sim import SimCluster, SimNode
    from repro.spreadlike import SpreadClient, SpreadDaemon

    for cls in (Participant, ProtocolConfig, Ring, Token, ReceiveBuffer,
                DeliveryEngine, AcceleratedWindowTuner, EVSProcess,
                SimCluster, SimNode, SpreadDaemon, SpreadClient):
        assert cls.__doc__ and cls.__doc__.strip(), cls.__name__


def test_version_is_exposed():
    import repro

    assert repro.__version__.count(".") == 2
