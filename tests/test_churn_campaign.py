"""Churn campaign smoke: EVS-checked endurance runs plus the sweep.

`make churn-smoke` (CI) runs this file and then one full 50-node
scenario through the CLI; keeping the pytest side small-N keeps the
suite fast while still exercising every code path the big campaigns
use: schedule generation, recurring fault execution, restart/rejoin,
checking, and the byte-stable bench record.
"""

import json

from repro.sim.churn import (
    ChurnOptions,
    churn_schedule,
    convergence_sweep,
    run_churn_scenario,
    write_record,
)
from repro.sim.faults import Churn, FaultSchedule, Flap


def _small_options(**overrides):
    base = dict(seed=3, n_nodes=8, churn_events=3, churn_period_s=0.25,
                converge_timeout_s=4.0)
    base.update(overrides)
    return ChurnOptions(**base)


def test_churn_scenario_smoke_gossip():
    summary = run_churn_scenario(_small_options())
    assert summary["converged"]
    assert summary["violations"] == []
    assert summary["total_restarts"] >= 1
    assert summary["delivered_total"] > 0
    assert summary["ctrl"]["ctrl_frames_per_node_per_s"] > 0


def test_churn_scenario_smoke_probe_path():
    # The pre-gossip detection path must survive the same churn load.
    summary = run_churn_scenario(_small_options(gossip=False))
    assert summary["converged"]
    assert summary["violations"] == []


def test_churn_scenario_is_deterministic():
    first = run_churn_scenario(_small_options())
    second = run_churn_scenario(_small_options())
    assert first == second


def test_churn_schedule_contains_generator_and_flapper():
    options = _small_options()
    schedule = churn_schedule(options)
    kinds = sorted(type(e).__name__ for e in schedule.events)
    assert kinds == ["Churn", "Flap"]
    churn = next(e for e in schedule.events if isinstance(e, Churn))
    assert options.flap_pid not in churn.pids
    # The summary embeds the schedule in serialized form; it must
    # round-trip back to the authored events.
    rebuilt = FaultSchedule.from_jsonable(schedule.to_jsonable())
    assert rebuilt.events == schedule.events


def test_convergence_sweep_structure_and_rates():
    record = convergence_sweep(ns=(5,), seed=2, cycles=1)
    assert record["schema"] == 1
    (entry,) = record["sweep"]
    assert entry["n_nodes"] == 5
    for mode in ("gossip", "probes"):
        stats = entry[mode]
        assert stats["crash_convergence_s"] > 0
        assert stats["rejoin_convergence_s"] > 0
        assert stats["steady"]["recv_per_node_hz"] > 0
    for value in record["metrics"].values():
        assert value > 0


def test_write_record_is_byte_stable(tmp_path):
    record = {"schema": 1, "metrics": {"b": 2.0, "a": 1.0}, "ns": [5]}
    path_a = write_record(record, str(tmp_path / "a.json"))
    path_b = write_record(dict(reversed(list(record.items()))),
                          str(tmp_path / "b.json"))
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        blob_a, blob_b = fa.read(), fb.read()
    assert blob_a == blob_b
    assert blob_a.endswith(b"\n")
    assert json.loads(blob_a) == record
