"""Model-based property tests: delivery engine and group table vs
straightforward reference models."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeliveryEngine, ReceiveBuffer, Service
from repro.core.messages import DataMessage
from repro.spreadlike import ClientId, GroupTable


# ---------------------------------------------------------------------------
# DeliveryEngine vs a brute-force model
# ---------------------------------------------------------------------------

def msg(seq, safe):
    return DataMessage(
        seq=seq, pid=1, round=1,
        service=Service.SAFE if safe else Service.AGREED,
    )


@st.composite
def delivery_scenarios(draw):
    """A randomized interleaving of arrivals and token sends."""
    n = draw(st.integers(min_value=1, max_value=30))
    safe_flags = draw(
        st.lists(st.booleans(), min_size=n, max_size=n)
    )
    arrival_order = draw(st.permutations(list(range(1, n + 1))))
    # Interleave token-send events (carrying arus) among arrivals.
    events = [("arrive", seq) for seq in arrival_order]
    token_count = draw(st.integers(min_value=0, max_value=10))
    for _i in range(token_count):
        pos = draw(st.integers(min_value=0, max_value=len(events)))
        aru = draw(st.integers(min_value=0, max_value=n))
        events.insert(pos, ("token", aru))
    return safe_flags, events


@given(delivery_scenarios())
@settings(max_examples=200, deadline=None)
def test_delivery_engine_matches_model(scenario):
    safe_flags, events = scenario
    engine = DeliveryEngine()
    buffer = ReceiveBuffer()
    delivered = []

    # Reference model state.
    model_received = set()
    model_arus = []
    model_delivered = []

    def model_safe_bound():
        best = 0
        for a, b in zip(model_arus, model_arus[1:]):
            best = max(best, min(a, b))
        return best

    def model_collect():
        bound = model_safe_bound()
        while True:
            nxt = len(model_delivered) + 1
            if nxt not in model_received:
                return
            if safe_flags[nxt - 1] and nxt > bound:
                return
            model_delivered.append(nxt)

    for kind, value in events:
        if kind == "arrive":
            buffer.insert(msg(value, safe_flags[value - 1]))
            delivered.extend(m.seq for m in engine.collect_deliverable(buffer))
            model_received.add(value)
            model_collect()
        else:
            engine.note_token_sent(value)
            delivered.extend(m.seq for m in engine.collect_deliverable(buffer))
            model_arus.append(value)
            model_collect()
        assert delivered == model_delivered
        assert engine.safe_bound == model_safe_bound()


# ---------------------------------------------------------------------------
# GroupTable vs a dict-of-lists model
# ---------------------------------------------------------------------------

group_ops = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "disconnect"]),
        st.sampled_from(["g1", "g2", "g3"]),
        st.integers(min_value=0, max_value=2),   # daemon
        st.sampled_from(["a", "b", "c"]),        # client name
    ),
    max_size=60,
)


@given(group_ops)
@settings(max_examples=200, deadline=None)
def test_group_table_matches_model(ops):
    table = GroupTable()
    model = {}

    for op, group, daemon, name in ops:
        client = ClientId(daemon, name)
        if op == "join":
            result = table.join(group, client)
            members = model.setdefault(group, [])
            assert result == (client not in members)
            if client not in members:
                members.append(client)
        elif op == "leave":
            result = table.leave(group, client)
            members = model.get(group, [])
            assert result == (client in members)
            if client in members:
                members.remove(client)
                if not members:
                    del model[group]
        else:
            left = table.disconnect(client)
            expected_left = sorted(
                g for g, members in model.items() if client in members
            )
            assert list(left) == expected_left
            for g in expected_left:
                model[g].remove(client)
                if not model[g]:
                    del model[g]
        # Full-state equivalence after every operation.
        assert table.snapshot() == {
            g: tuple(members) for g, members in model.items()
        }
        assert table.groups() == tuple(sorted(model))
