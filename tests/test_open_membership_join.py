"""Open membership: brand-new pids joining a live packet-level cluster.

The gossip detection path has no static pid universe — a joiner's
pings introduce it to the members' detectors, whose PeerAlive verdicts
pull the unknown pid into the next gather.  These tests drive that end
to end: spawn mid-run, converge to a ring including the joiner, keep
every EVS axiom, and compose with crash/restart churn.
"""

import pytest

from repro.evs import EVSChecker
from repro.membership import GossipConfig, State
from repro.net import GIGABIT, Timeout
from repro.sim.churn import (
    CHURN_TIMEOUTS,
    ChurnOptions,
    _protocol_config,
    churn_schedule,
    run_churn_scenario,
)
from repro.sim.evs_node import SimEVSCluster
from repro.sim.faults import FaultSchedule, Join
from repro.sim.profiles import LIBRARY


def _cluster(n_nodes, seed=1, gossip=True):
    return SimEVSCluster(
        n_nodes, GIGABIT, LIBRARY, _protocol_config(), CHURN_TIMEOUTS,
        gossip=gossip, gossip_config=GossipConfig() if gossip else None,
        gossip_seed=seed,
    )


def test_new_pid_joins_a_converged_cluster():
    cluster = _cluster(5)
    cluster.run_until_converged(timeout_s=8.0)
    joiner = cluster.spawn(5)
    cluster.run_until_converged(timeout_s=8.0)
    assert tuple(cluster.nodes[0].process.ring.members) == (0, 1, 2, 3, 4, 5)
    assert joiner.state is State.OPERATIONAL
    assert joiner.incarnation == 0

    checker = EVSChecker()
    checker.check_logs(cluster.logs())
    assert checker.violations == []


def test_joiner_delivers_ordered_traffic():
    cluster = _cluster(4)
    cluster.run_until_converged(timeout_s=8.0)
    joiner = cluster.spawn(4)
    cluster.run_until_converged(timeout_s=8.0)

    def inject(node, tag):
        for i in range(10):
            yield Timeout(0.005)
            node.submit("%s.%d" % (tag, i))

    cluster.sim.spawn(inject(cluster.nodes[0], "old"), "inj-old")
    cluster.sim.spawn(inject(joiner, "new"), "inj-new")
    cluster.run_for(0.5)

    checker = EVSChecker()
    checker.check_logs(cluster.logs())
    assert checker.violations == []
    delivered = joiner.delivered_payloads()
    assert any(str(p).startswith("old.") for p in delivered)
    assert any(str(p).startswith("new.") for p in delivered)
    # All live members agree on the joiner-era suffix (EVS already
    # asserts prefix consistency; this is the readable smoke check).
    assert delivered == cluster.nodes[0].delivered_payloads()[-len(delivered):]


def test_join_fault_event_spawns_through_the_schedule():
    cluster = _cluster(3)
    cluster.run_until_converged(timeout_s=8.0)
    schedule = FaultSchedule([Join(at_s=0.05, pid=3), Join(at_s=0.15, pid=4)])
    schedule.install(cluster)
    cluster.run_for(0.3)
    assert set(cluster.nodes) == {0, 1, 2, 3, 4}
    cluster.run_until_converged(timeout_s=8.0)
    assert tuple(cluster.nodes[0].process.ring.members) == (0, 1, 2, 3, 4)


def test_join_event_serializes_and_is_idempotent():
    schedule = FaultSchedule([Join(at_s=0.1, pid=9)])
    rebuilt = FaultSchedule.from_jsonable(schedule.to_jsonable())
    assert rebuilt.events == schedule.events
    assert "join" in rebuilt.describe()[0]

    cluster = _cluster(3)
    cluster.run_until_converged(timeout_s=8.0)
    cluster.spawn(9)
    # The scheduled join finds pid 9 already present and does nothing.
    rebuilt.install(cluster)
    cluster.run_for(0.2)
    assert sorted(cluster.nodes) == [0, 1, 2, 9]


def test_spawn_rejects_existing_pid_and_probe_mode():
    cluster = _cluster(3)
    with pytest.raises(ValueError):
        cluster.spawn(0)
    probe_cluster = _cluster(3, gossip=False)
    with pytest.raises(RuntimeError):
        probe_cluster.spawn(3)


def test_spawned_node_registers_metrics():
    cluster = _cluster(3)
    cluster.run_until_converged(timeout_s=8.0)
    cluster.spawn(3)
    cluster.run_for(0.1)
    snapshot = cluster.metrics.snapshot()
    joiner_metrics = snapshot["nodes"]["3"]
    assert joiner_metrics["membership.ctrl_frames_sent"] > 0
    assert joiner_metrics["membership.incarnation"] == 0


def test_churn_campaign_with_joins():
    """The satellite's churn-campaign scenario: sustained crash/restart
    churn with two open-membership joins riding along, fully
    EVS-checked and reconverging with the joiners in the ring."""
    options = ChurnOptions(
        seed=5, n_nodes=10, churn_events=3, joins=2,
        converge_timeout_s=8.0,
    )
    schedule = churn_schedule(options)
    kinds = [type(e).__name__ for e in schedule.events]
    assert kinds.count("Join") == 2

    summary = run_churn_scenario(options)
    assert summary["converged"]
    assert summary["violations"] == []
    assert summary["joined_pids"] == [10, 11]
    assert summary["delivered_total"] > 0


def test_joins_require_gossip_in_churn_scenarios():
    with pytest.raises(ValueError):
        run_churn_scenario(ChurnOptions(n_nodes=5, gossip=False, joins=1))
