"""Regression tests pinning the decode path's zero-copy contract.

The decoder must never materialize the whole datagram (``bytes(blob)``)
nor slice off a full-body copy for the CRC check — those were the two
copies that made decode 2.5x slower than encode before the rewrite.
The only permitted copy is the payload slice of a raw-payload data
message (the payload must outlive the receive buffer).

The tracking is done with a ``bytes`` subclass because ``memoryview``
cannot be subclassed: every slice and every whole-buffer
materialization on the input is recorded, and the tests assert the
exact allowed set.
"""

import pytest

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.wire import codec
from repro.wire.codec import DecodeError, decode, decode_detail, decode_frame, encode


class TrackingBytes(bytes):
    """A bytes buffer that records copies taken from it.

    ``struct.unpack_from``, ``zlib.crc32`` and ``memoryview`` all read
    through the buffer protocol without touching these hooks, so any
    recorded event is a genuine Python-level copy of buffer content.
    """

    def __new__(cls, data):
        self = super().__new__(cls, data)
        self.slices = []
        self.materializations = 0
        return self

    def __getitem__(self, key):
        if isinstance(key, slice):
            self.slices.append((key.start, key.stop))
        return bytes.__getitem__(self, key)

    def __bytes__(self):
        self.materializations += 1
        return bytes(memoryview(self))


def tracked(message, **kw):
    return TrackingBytes(encode(message, **kw))


def data_message(**overrides):
    fields = dict(seq=7, pid=2, round=9, service=Service.AGREED,
                  payload=b"payload-bytes", payload_size=13, submitted_at=1.5)
    fields.update(overrides)
    return DataMessage(**fields)


PAYLOAD_OFFSET = codec.HEADER_SIZE + codec._DATA_BODY.size


def test_data_decode_copies_only_the_payload():
    blob = tracked(data_message())
    message = decode(blob)
    assert message == data_message()
    # Exactly one slice — the payload — and no whole-frame materialization.
    assert blob.slices == [(PAYLOAD_OFFSET, len(blob))]
    assert blob.materializations == 0


def test_payload_is_an_independent_plain_bytes():
    blob = tracked(data_message())
    payload = decode(blob).payload
    assert type(payload) is bytes  # not TrackingBytes, not memoryview
    assert payload == b"payload-bytes"


def test_token_decode_is_fully_zero_copy():
    blob = tracked(Token(ring_id=6, hop=41, seq=1000, aru=990, aru_id=3,
                         fcc=17, rtr=(991, 995, 999)))
    assert decode(blob) == Token(ring_id=6, hop=41, seq=1000, aru=990,
                                 aru_id=3, fcc=17, rtr=(991, 995, 999))
    assert blob.slices == []
    assert blob.materializations == 0


def test_payload_less_data_decode_is_fully_zero_copy():
    blob = tracked(data_message(payload=None, payload_size=0))
    assert decode(blob).payload is None
    assert blob.slices == []
    assert blob.materializations == 0


def test_decode_detail_is_zero_copy_on_the_error_path():
    corrupted = bytearray(encode(data_message()))
    corrupted[-1] ^= 0x01  # break the body under the recorded CRC
    blob = TrackingBytes(bytes(corrupted))
    with pytest.raises(DecodeError, match="CRC"):
        decode_detail(blob)
    assert blob.slices == []
    assert blob.materializations == 0


def test_decode_accepts_memoryview_without_round_trip():
    raw = encode(data_message())
    # A memoryview over a *tracked* buffer: the decoder may slice the
    # view (zero-copy) but must not fall back to bytes(blob) on entry.
    backing = TrackingBytes(raw)
    message = decode(memoryview(backing))
    assert message == data_message()
    assert backing.materializations == 0

    token_backing = TrackingBytes(encode(Token(ring_id=2, rtr=(5,))))
    assert decode(memoryview(token_backing)) == Token(ring_id=2, rtr=(5,))
    assert token_backing.materializations == 0


def test_decode_detail_accepts_memoryview():
    raw = encode(data_message(), ring_id=9)
    detail = decode_detail(memoryview(raw))
    assert detail.kind == "data"
    assert detail.ring_id == 9
    assert detail.message == data_message()


def test_frame_view_defers_the_payload_copy():
    blob = tracked(data_message(payload=b"x" * 64, payload_size=64))
    view = decode_frame(blob)
    # Header-only access: seq/pid/size readable, nothing copied yet.
    assert (view.kind, view.seq, view.pid, view.payload_size) == \
        ("data", 7, 2, 64)
    assert blob.slices == []
    assert blob.materializations == 0
    # First .message access decodes (and copies) the payload, once.
    message = view.message
    assert message.payload == b"x" * 64
    assert blob.slices == [(PAYLOAD_OFFSET, len(blob))]
    # Cached: a second access neither re-decodes nor re-copies.
    assert view.message is message
    assert len(blob.slices) == 1


def test_frame_view_token_header_fields():
    token = Token(ring_id=6, hop=41, seq=1000, aru=990, fcc=17, rtr=(991,))
    blob = tracked(token)
    view = decode_frame(blob)
    assert (view.kind, view.ring_id, view.seq) == ("token", 6, 1000)
    assert view.pid is None and view.payload_size == 0
    assert view.message == token
    assert blob.materializations == 0


def test_frame_view_still_validates_the_envelope():
    corrupted = bytearray(encode(data_message()))
    corrupted[-1] ^= 0x01
    with pytest.raises(DecodeError, match="CRC"):
        decode_frame(bytes(corrupted))


def test_decode_frame_falls_back_to_eager_for_control_frames():
    from repro.membership.messages import ProbeMessage
    result = decode_frame(encode(ProbeMessage(sender=3, ring_id=4)))
    assert result.kind == "probe"
    assert result.message == ProbeMessage(sender=3, ring_id=4)
