"""Tests for workload generators and the stats series containers."""

import pytest

from repro.core import Service
from repro.stats import Figure, Series, SeriesPoint, improvement
from repro.workload import (
    bursty_plan,
    group_activity_plan,
    mixed_service_plan,
    sized_payload,
    skewed_senders_plan,
    uniform_plan,
)


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------

def test_sized_payload_exact_size():
    for size in (1, 10, 1350, 8850):
        assert len(sized_payload(size, tag=7)) == size


def test_uniform_plan_counts_and_interleaving():
    plan = uniform_plan([1, 2, 3], per_pid=4)
    assert len(plan) == 12
    assert [s.pid for s in plan[:3]] == [1, 2, 3]  # round-robin
    for pid in (1, 2, 3):
        assert sum(1 for s in plan if s.pid == pid) == 4


def test_mixed_service_plan_reproducible():
    a = mixed_service_plan([1, 2], per_pid=20, safe_fraction=0.5, seed=3)
    b = mixed_service_plan([1, 2], per_pid=20, safe_fraction=0.5, seed=3)
    assert a == b
    c = mixed_service_plan([1, 2], per_pid=20, safe_fraction=0.5, seed=4)
    assert a != c


def test_mixed_service_plan_fraction_extremes():
    all_safe = mixed_service_plan([1], per_pid=30, safe_fraction=1.0)
    assert all(s.service is Service.SAFE for s in all_safe)
    none_safe = mixed_service_plan([1], per_pid=30, safe_fraction=0.0)
    assert all(s.service is Service.AGREED for s in none_safe)


def test_bursty_plan_structure():
    plan = bursty_plan([1, 2, 3], bursts=5, burst_size=4, seed=1)
    assert len(plan) == 20
    # Within a burst the sender is constant.
    for burst in range(5):
        chunk = plan[burst * 4:(burst + 1) * 4]
        assert len({s.pid for s in chunk}) == 1


def test_skewed_plan_hot_sender_dominates():
    plan = skewed_senders_plan([1, 2, 3, 4], total=400, hot_fraction=0.8, seed=2)
    hot_count = sum(1 for s in plan if s.pid == 1)
    assert hot_count > 250


def test_group_activity_plan_only_valid_ops():
    ops = list(group_activity_plan(["a", "b"], ["g1", "g2"], operations=100, seed=5))
    assert len(ops) == 100
    member_state = {"a": set(), "b": set()}
    for op, client, group, _payload in ops:
        if op == "join":
            member_state[client].add(group)
        elif op == "leave":
            assert group in member_state[client]
            member_state[client].discard(group)
        else:
            assert op == "cast"
            assert group in member_state[client]


# ---------------------------------------------------------------------------
# Series / Figure
# ---------------------------------------------------------------------------

def make_series(points):
    series = Series("test")
    for offered, achieved, latency, saturated in points:
        series.add(SeriesPoint(offered, achieved, latency, saturated))
    return series


def test_max_stable_throughput_ignores_saturated():
    series = make_series([
        (100, 100, 50, False),
        (500, 500, 80, False),
        (900, 700, 9000, True),
    ])
    assert series.max_stable_throughput() == 500
    assert series.max_achieved_throughput() == 700


def test_max_throughput_under_latency():
    series = make_series([
        (100, 100, 50, False),
        (500, 500, 200, False),
        (800, 800, 1500, False),
    ])
    assert series.max_throughput_under_latency(1000) == 500
    assert series.max_throughput_under_latency(2000) == 800
    assert series.max_throughput_under_latency(10) == 0.0


def test_latency_at_exact_point():
    series = make_series([(100, 100, 50, False)])
    assert series.latency_at(100) == 50
    assert series.latency_at(200) is None


def test_interpolated_latency():
    series = make_series([
        (100, 100, 100, False),
        (300, 300, 300, False),
    ])
    assert series.interpolated_latency(200) == pytest.approx(200)
    assert series.interpolated_latency(50) == 100  # clamps below
    assert series.interpolated_latency(400) is None  # beyond range


def test_figure_markdown_contains_all_series():
    figure = Figure("figX", "demo")
    figure.series_for("a").add(SeriesPoint(100, 100, 42, False))
    figure.series_for("b").add(SeriesPoint(100, 90, 55, True))
    markdown = figure.to_markdown()
    assert "figX" in markdown and "demo" in markdown
    assert "42 us" in markdown
    assert "SAT" in markdown


def test_figure_csv_roundtrippable():
    figure = Figure("figY", "demo")
    figure.series_for("a").add(SeriesPoint(100, 99, 42.5, False))
    csv = figure.to_csv()
    lines = csv.splitlines()
    assert lines[0].startswith("label,")
    assert lines[1].split(",")[0] == "a"


def test_improvement_helper():
    assert improvement(100, 150) == pytest.approx(0.5)
    assert improvement(200, 100) == pytest.approx(-0.5)
    assert improvement(0, 10) == 0.0
