"""Unit tests for Participant token/data handling mechanics."""

import pytest

from repro.core import (
    Deliver,
    Discard,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
    TokenError,
    deliveries,
    initial_token,
    sends,
    token_of,
)


def make_participant(pid=1, members=(1, 2, 3, 4), **config_kw):
    ring = Ring.of(members)
    return Participant(pid, ring, ProtocolConfig(**config_kw))


def submit_n(participant, n, service=Service.AGREED):
    for i in range(n):
        participant.submit(("msg", participant.pid, i), service)


# ---------------------------------------------------------------------------
# Structure of a token handling
# ---------------------------------------------------------------------------

def test_token_position_splits_pre_and_post_sends():
    participant = make_participant(accelerated_window=3, personal_window=10)
    submit_n(participant, 8)
    actions = participant.on_token(initial_token())
    kinds = [type(a).__name__ for a in actions]
    token_at = kinds.index("SendToken")
    pre = [a for a in actions[:token_at] if isinstance(a, SendData)]
    post = [a for a in actions[token_at + 1:] if isinstance(a, SendData)]
    assert len(pre) == 5 and len(post) == 3
    assert all(not a.message.sent_after_token for a in pre)
    assert all(a.message.sent_after_token for a in post)


def test_all_sends_post_token_when_under_window():
    participant = make_participant(accelerated_window=10)
    submit_n(participant, 4)
    actions = participant.on_token(initial_token())
    kinds = [type(a).__name__ for a in actions]
    assert kinds.index("SendToken") < kinds.index("SendData")
    assert len(sends(actions)) == 4
    assert all(m.sent_after_token for m in sends(actions))


def test_zero_window_sends_everything_before_token():
    participant = make_participant(accelerated_window=0)
    submit_n(participant, 4)
    actions = participant.on_token(initial_token())
    kinds = [type(a).__name__ for a in actions]
    assert kinds.index("SendToken") > max(
        i for i, k in enumerate(kinds) if k == "SendData"
    )


def test_token_seq_reflects_unsent_messages():
    # The heart of the acceleration: the token covers messages that will
    # only be multicast after it.
    participant = make_participant(accelerated_window=10)
    submit_n(participant, 6)
    actions = participant.on_token(initial_token())
    token = token_of(actions)
    assert token.seq == 6
    post_sends = [a for a in actions if isinstance(a, SendData)]
    assert all(a.message.seq <= token.seq for a in post_sends)


def test_seq_numbers_are_consecutive_from_received_seq():
    participant = make_participant()
    submit_n(participant, 3)
    actions = participant.on_token(initial_token().evolve(seq=10, aru=10))
    assert [m.seq for m in sends(actions)] == [11, 12, 13]


def test_token_forwarded_to_successor():
    participant = make_participant(pid=2, members=(1, 2, 3))
    actions = participant.on_token(initial_token().evolve(hop=1))
    send = next(a for a in actions if isinstance(a, SendToken))
    assert send.dst == 3


def test_hop_increments():
    participant = make_participant()
    token = token_of(participant.on_token(initial_token().evolve(hop=4)))
    assert token.hop == 5


def test_duplicate_token_ignored():
    participant = make_participant()
    first = participant.on_token(initial_token().evolve(hop=4))
    assert first
    again = participant.on_token(initial_token().evolve(hop=4))
    assert again == []
    assert participant.stats.duplicate_tokens == 1


def test_token_for_wrong_ring_rejected():
    participant = make_participant()
    with pytest.raises(TokenError):
        participant.on_token(Token(ring_id=99))


def test_idle_participant_just_passes_token():
    participant = make_participant()
    actions = participant.on_token(initial_token())
    assert len([a for a in actions if isinstance(a, SendData)]) == 0
    assert token_of(actions).seq == 0


# ---------------------------------------------------------------------------
# fcc accounting
# ---------------------------------------------------------------------------

def test_fcc_adds_this_round_and_subtracts_last_round():
    participant = make_participant(personal_window=5, accelerated_window=0)
    submit_n(participant, 5)
    token1 = token_of(participant.on_token(initial_token()))
    assert token1.fcc == 5
    submit_n(participant, 2)
    token2 = token_of(
        participant.on_token(token1.evolve(hop=4, fcc=20, aru=token1.seq))
    )
    # 20 - 5 (ours last round) + 2 (ours now) = 17
    assert token2.fcc == 17


def test_global_window_throttles_sending():
    participant = make_participant(personal_window=50, global_window=10)
    submit_n(participant, 50)
    actions = participant.on_token(initial_token().evolve(fcc=7))
    assert len(sends(actions)) == 3


# ---------------------------------------------------------------------------
# aru rules
# ---------------------------------------------------------------------------

def test_aru_tracks_seq_when_everyone_caught_up():
    participant = make_participant()
    submit_n(participant, 3)
    token = token_of(participant.on_token(initial_token()))
    assert token.seq == 3 and token.aru == 3 and token.aru_id is None


def test_aru_lowered_when_behind():
    participant = make_participant()
    # Token claims seq=5 all received, but we have received nothing.
    token = token_of(participant.on_token(initial_token().evolve(seq=5, aru=5)))
    assert token.aru == 0
    assert token.aru_id == participant.pid


def test_aru_raised_by_owner_after_catching_up():
    participant = make_participant()
    token1 = token_of(participant.on_token(initial_token().evolve(seq=2, aru=2)))
    assert token1.aru == 0 and token1.aru_id == participant.pid
    # The missing messages arrive between token visits.
    from repro.core.messages import DataMessage

    for seq in (1, 2):
        participant.on_data(
            DataMessage(seq=seq, pid=2, round=1, service=Service.AGREED)
        )
    token2 = token_of(
        participant.on_token(token1.evolve(hop=4))
    )
    assert token2.aru == 2
    assert token2.aru_id is None  # fully caught up releases ownership


def test_aru_kept_when_owned_by_other():
    participant = make_participant()
    received = initial_token().evolve(seq=5, aru=3, aru_id=7)
    # Our local aru is 0 < 3, so we lower and take ownership.
    token = token_of(participant.on_token(received))
    assert token.aru == 0 and token.aru_id == participant.pid


def test_aru_unchanged_when_other_owner_and_not_lower():
    participant = make_participant()
    from repro.core.messages import DataMessage

    for seq in (1, 2, 3):
        participant.on_data(
            DataMessage(seq=seq, pid=2, round=1, service=Service.AGREED)
        )
    received = initial_token().evolve(seq=5, aru=2, aru_id=7)
    token = token_of(participant.on_token(received))
    # We hold 3 > 2 but 7 owns the aru: leave it alone.
    assert token.aru == 2 and token.aru_id == 7


def test_accelerated_aru_lags_seq_by_a_round():
    # Under acceleration the successor processes the token before the
    # predecessor's post-token messages arrive, so it lowers the aru.
    sender = make_participant(pid=1, members=(1, 2), accelerated_window=10)
    receiver = Participant(2, Ring.of((1, 2)), ProtocolConfig(accelerated_window=10))
    submit_n(sender, 5)
    actions = sender.on_token(initial_token())
    token = token_of(actions)
    assert token.aru == token.seq == 5  # sender holds its own messages
    # Receiver gets the token BEFORE any data message (acceleration).
    out = token_of(receiver.on_token(token))
    assert out.aru == 0 and out.aru_id == 2


# ---------------------------------------------------------------------------
# Retransmission behaviour
# ---------------------------------------------------------------------------

def test_answers_requests_pre_token():
    participant = make_participant(accelerated_window=5)
    submit_n(participant, 2)
    first = participant.on_token(initial_token())
    my_msgs = sends(first)
    token_back = token_of(first).evolve(hop=4, rtr=(1,))
    actions = participant.on_token(token_back)
    kinds = [type(a).__name__ for a in actions]
    retrans = [a for a in actions if isinstance(a, SendData) and a.retransmission]
    assert len(retrans) == 1 and retrans[0].message.seq == 1
    assert kinds.index("SendData") < kinds.index("SendToken")
    assert 1 not in token_of(actions).rtr


def test_does_not_request_current_round_gaps():
    participant = make_participant(accelerated_window=5)
    # First token says seq=10; we received nothing, but these may be
    # unsent post-token messages: no requests yet.
    token1 = token_of(participant.on_token(initial_token().evolve(seq=10, aru=10)))
    assert token1.rtr == ()
    # Next round the horizon is 10: now the gaps are real.
    token2 = token_of(participant.on_token(token1.evolve(hop=4)))
    assert token2.rtr == tuple(range(1, 11))
    assert participant.stats.retransmissions_requested == 10


def test_original_config_requests_current_round():
    participant = Participant(
        1, Ring.of((1, 2)), ProtocolConfig.original_ring()
    )
    token = token_of(participant.on_token(initial_token().evolve(seq=4, aru=4)))
    assert token.rtr == (1, 2, 3, 4)


# ---------------------------------------------------------------------------
# Delivery
# ---------------------------------------------------------------------------

def test_own_agreed_messages_delivered_immediately():
    participant = make_participant(accelerated_window=0)
    submit_n(participant, 3)
    actions = participant.on_token(initial_token())
    assert [m.seq for m in deliveries(actions)] == [1, 2, 3]


def test_own_safe_messages_wait_two_rounds():
    participant = make_participant(accelerated_window=0)
    submit_n(participant, 2, Service.SAFE)
    first = participant.on_token(initial_token())
    assert deliveries(first) == []
    token = token_of(first)
    second = participant.on_token(token.evolve(hop=4))
    assert [m.seq for m in deliveries(second)] == [1, 2]
    # And once stable they are discarded.
    assert any(isinstance(a, Discard) and a.upto == 2 for a in second)


def test_data_message_delivery_in_order():
    from repro.core.messages import DataMessage

    participant = make_participant()
    out_of_order = [
        DataMessage(seq=2, pid=2, round=1, service=Service.AGREED),
        DataMessage(seq=1, pid=2, round=1, service=Service.AGREED),
    ]
    assert participant.on_data(out_of_order[0]) == []
    actions = participant.on_data(out_of_order[1])
    assert [m.seq for m in deliveries(actions)] == [1, 2]


def test_duplicate_data_counted_not_redelivered():
    from repro.core.messages import DataMessage

    participant = make_participant()
    message = DataMessage(seq=1, pid=2, round=1, service=Service.AGREED)
    assert len(participant.on_data(message)) == 1
    assert participant.on_data(message) == []
    assert participant.stats.data_duplicates == 1


def test_submit_rejected_participant_must_be_on_ring():
    with pytest.raises(TokenError):
        Participant(9, Ring.of((1, 2)), ProtocolConfig())


def test_progress_tracking_for_token_retransmission():
    participant = make_participant(accelerated_window=0)
    assert not participant.progress_since_token_send()
    participant.on_token(initial_token())
    assert not participant.progress_since_token_send()
    from repro.core.messages import DataMessage

    # Data from a later round proves the token moved on.
    participant.on_data(
        DataMessage(seq=1, pid=2, round=5, service=Service.AGREED)
    )
    assert participant.progress_since_token_send()
