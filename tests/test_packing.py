"""Tests for small-message packing (Spread's built-in packing)."""

from collections import deque

import pytest

from repro import LoopbackRing, ProtocolConfig, Service
from repro.core import (
    ITEM_HEADER_BYTES,
    PackedPayload,
    Participant,
    Ring,
    initial_token,
    pack_next,
    sends,
    token_of,
)
from repro.core.participant import _PendingMessage


def pend(payload, size, service=Service.AGREED, at=None):
    return _PendingMessage(payload, service, size, at)


# ---------------------------------------------------------------------------
# pack_next unit behaviour
# ---------------------------------------------------------------------------

def test_greedy_fill_until_budget():
    queue = deque(pend(i, 100) for i in range(20))
    packed, service, size, _earliest = pack_next(queue, max_packet_payload=1350)
    # 100 + 16 header = 116 per item -> 11 items fit in 1350.
    assert len(packed) == 11
    assert size == 11 * 116
    assert len(queue) == 9


def test_single_large_item_travels_alone():
    queue = deque([pend("big", 5000), pend("small", 10)])
    packed, _service, size, _earliest = pack_next(queue, max_packet_payload=1350)
    assert len(packed) == 1
    assert packed.items[0].payload == "big"
    assert len(queue) == 1


def test_service_boundary_splits_packets():
    queue = deque([
        pend("a1", 50, Service.AGREED),
        pend("a2", 50, Service.AGREED),
        pend("s1", 50, Service.SAFE),
        pend("a3", 50, Service.AGREED),
    ])
    first, service1, _s, _e = pack_next(queue, 1350)
    assert [i.payload for i in first.items] == ["a1", "a2"]
    assert service1 is Service.AGREED
    second, service2, _s, _e = pack_next(queue, 1350)
    assert [i.payload for i in second.items] == ["s1"]
    assert service2 is Service.SAFE


def test_earliest_timestamp_propagates():
    queue = deque([pend("x", 10, at=5.0), pend("y", 10, at=3.0)])
    _packed, _service, _size, earliest = pack_next(queue, 1350)
    assert earliest == 3.0


def test_packed_payload_size_accounting():
    packed = PackedPayload(tuple())
    assert packed.total_size == 0
    queue = deque([pend("x", 100)])
    packed, _svc, size, _e = pack_next(queue, 1350)
    assert packed.total_size == size == 100 + ITEM_HEADER_BYTES


def test_oversized_first_item_still_reports_true_size():
    # The oversized item travels alone, and the returned packet size is
    # its real (over-budget) size — the driver needs it for fragmenting.
    queue = deque([pend("big", 5000)])
    packed, service, size, _e = pack_next(queue, max_packet_payload=1350)
    assert len(packed) == 1
    assert size == 5000 + ITEM_HEADER_BYTES
    assert service is Service.AGREED
    assert not queue


def test_item_exactly_filling_budget_is_included():
    # 2 * (659 + 16) == 1350: the second item lands exactly on the
    # budget and must be packed (the bound is inclusive).
    queue = deque([pend("a", 659), pend("b", 659), pend("c", 659)])
    packed, _svc, size, _e = pack_next(queue, max_packet_payload=1350)
    assert [i.payload for i in packed.items] == ["a", "b"]
    assert size == 1350
    assert len(queue) == 1


def test_safe_never_rides_in_agreed_packet_even_with_room():
    # Plenty of budget left, but the Safe item must not lose its
    # stability guarantee by riding in an Agreed packet.
    queue = deque([pend("a", 10, Service.AGREED), pend("s", 10, Service.SAFE)])
    packed, service, _s, _e = pack_next(queue, 1350)
    assert [i.payload for i in packed.items] == ["a"]
    assert service is Service.AGREED
    packed, service, _s, _e = pack_next(queue, 1350)
    assert [i.payload for i in packed.items] == ["s"]
    assert service is Service.SAFE


def test_earliest_timestamp_with_unstamped_first_item():
    # An unstamped first item must not mask a later real timestamp.
    queue = deque([pend("x", 10, at=None), pend("y", 10, at=4.0),
                   pend("z", 10, at=2.0)])
    _p, _svc, _s, earliest = pack_next(queue, 1350)
    assert earliest == 2.0


def test_earliest_timestamp_with_unstamped_tail_items():
    # And later unstamped items must not erase an earlier one.
    queue = deque([pend("x", 10, at=7.0), pend("y", 10, at=None)])
    _p, _svc, _s, earliest = pack_next(queue, 1350)
    assert earliest == 7.0


def test_all_items_unstamped_packs_with_no_timestamp():
    queue = deque([pend("x", 10, at=None), pend("y", 10, at=None)])
    _p, _svc, _s, earliest = pack_next(queue, 1350)
    assert earliest is None


# ---------------------------------------------------------------------------
# Participant-level packing
# ---------------------------------------------------------------------------

def test_packing_reduces_packet_count():
    ring = Ring.of((1, 2))
    packed_participant = Participant(
        1, ring, ProtocolConfig(pack_messages=True, personal_window=40,
                                accelerated_window=0)
    )
    plain_participant = Participant(
        1, ring, ProtocolConfig(pack_messages=False, personal_window=40,
                                accelerated_window=0)
    )
    for participant in (packed_participant, plain_participant):
        for i in range(30):
            participant.submit(("m", i), Service.AGREED, payload_size=100)
    packed_sends = sends(packed_participant.on_token(initial_token()))
    plain_sends = sends(plain_participant.on_token(initial_token()))
    assert len(plain_sends) == 30
    assert len(packed_sends) == 3  # 11 + 11 + 8
    assert token_of_seq(packed_participant) == 3


def token_of_seq(participant):
    return participant.last_token_sent.seq


def test_fcc_counts_packets_not_items():
    ring = Ring.of((1, 2))
    participant = Participant(
        1, ring, ProtocolConfig(pack_messages=True, personal_window=40,
                                accelerated_window=0)
    )
    for i in range(30):
        participant.submit(("m", i), Service.AGREED, payload_size=100)
    token = token_of(participant.on_token(initial_token()))
    assert token.fcc == 3
    assert token.seq == 3


def test_end_to_end_packed_ring_preserves_order():
    config = ProtocolConfig(pack_messages=True, personal_window=10,
                            accelerated_window=5)
    ring = LoopbackRing([1, 2, 3], config)
    for pid in (1, 2, 3):
        for i in range(40):
            ring.submit(pid, (pid, i), Service.AGREED, payload_size=80)
    ring.run(max_steps=500_000)
    # Unpack each receiver's stream and check per-sender FIFO plus
    # identical global item order.
    streams = {}
    for pid in (1, 2, 3):
        items = []
        for message in ring.delivered[pid]:
            assert isinstance(message.payload, PackedPayload)
            items.extend(i.payload for i in message.payload.items)
        streams[pid] = items
    assert streams[1] == streams[2] == streams[3]
    assert len(streams[1]) == 120
    for sender in (1, 2, 3):
        mine = [i for (p, i) in streams[1] if p == sender]
        assert mine == list(range(40))


def test_safe_items_keep_stability_semantics_when_packed():
    config = ProtocolConfig(pack_messages=True, accelerated_window=3)
    ring = LoopbackRing([1, 2], config)
    for i in range(6):
        ring.submit(1, ("s", i), Service.SAFE, payload_size=50)
        ring.submit(1, ("a", i), Service.AGREED, payload_size=50)
    ring.run(max_steps=500_000)
    # Stability checking is active inside the harness; also confirm
    # packets carried homogeneous service levels.
    for message in ring.delivered[2]:
        kinds = {p[0] for p in (i.payload for i in message.payload.items)}
        assert len(kinds) == 1
        expected = "s" if message.service is Service.SAFE else "a"
        assert kinds == {expected}
