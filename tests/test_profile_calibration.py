"""Calibration invariants: the cost profiles encode the paper's testbed.

docs/SIMULATOR.md documents how the per-message CPU constants were
solved from the paper's measured 10-gigabit maxima.  These tests keep
code and documentation honest: if someone retunes a profile, the
analytically implied maxima must stay inside the paper's bands (or the
docs must change with them).
"""

import pytest

from repro.net import GIGABIT
from repro.sim import DAEMON, LIBRARY, SPREAD

#: The paper's measured 10G maxima (payload Mbps), the calibration targets.
PAPER_MAXIMA = {
    ("library", 1350): 4600,
    ("daemon", 1350): 3300,
    ("spread", 1350): 2300,
    ("library", 8850): 7300,
    ("daemon", 8850): 6000,
    ("spread", 8850): 5300,
}

PROFILES = {"library": LIBRARY, "daemon": DAEMON, "spread": SPREAD}
RING_SIZE = 8


def implied_cpu_bound_mbps(profile, payload_size):
    """Analytic per-node CPU bound of an 8-node ring at saturation.

    Per message in the system, a node pays: receive for the 7/8 it did
    not send, send for its own 1/8, and delivery for all of them.
    """
    per_message_s = (
        (RING_SIZE - 1) / RING_SIZE * profile.data_recv_cost(payload_size)
        + 1 / RING_SIZE * profile.data_send_cost(payload_size)
        + profile.deliver_cost(payload_size)
    )
    messages_per_s = 1.0 / per_message_s
    return messages_per_s * payload_size * 8 / 1e6


@pytest.mark.parametrize("name,payload", sorted(PAPER_MAXIMA))
def test_implied_maxima_track_paper(name, payload):
    implied = implied_cpu_bound_mbps(PROFILES[name], payload)
    target = PAPER_MAXIMA[(name, payload)]
    # The analytic bound ignores token handling and round structure, so
    # the simulator lands a bit under it; the bound itself must sit
    # within a generous band of the paper's measurement.
    assert 0.7 * target <= implied <= 1.4 * target, (
        "%s@%dB: implied %.0f Mbps vs paper %.0f" % (name, payload, implied, target)
    )


def test_one_gigabit_is_network_bound_for_everyone():
    # On 1G the serialization delay per 1500B packet (12 us) exceeds any
    # profile's per-message CPU — the premise that makes the 1G figures
    # network-shaped rather than implementation-shaped.
    serialization = GIGABIT.serialization_s(1500)
    for profile in PROFILES.values():
        per_message = (
            profile.data_recv_cost(1350) + profile.deliver_cost(1350)
        )
        assert per_message < serialization, profile.name


def test_relative_implied_ordering_matches_paper():
    implied = {
        name: implied_cpu_bound_mbps(profile, 1350)
        for name, profile in PROFILES.items()
    }
    assert implied["library"] > implied["daemon"] > implied["spread"]


def test_large_payload_amortization_ordering():
    # The relative gain from 8850B payloads grows with fixed overhead.
    gains = {
        name: implied_cpu_bound_mbps(profile, 8850)
        / implied_cpu_bound_mbps(profile, 1350)
        for name, profile in PROFILES.items()
    }
    assert gains["spread"] > gains["daemon"] > gains["library"]
