"""Tests for the EVS network harness itself (routing, partitions)."""

import pytest

from repro.harness.evsnet import EVSNetwork
from repro.membership import State


def test_connected_within_group_only():
    net = EVSNetwork([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    assert net.connected(1, 2)
    assert not net.connected(1, 3)
    assert net.connected(3, 4)
    assert net.connected(2, 2)  # self


def test_unlisted_pids_become_isolated():
    net = EVSNetwork([1, 2, 3])
    net.set_partition({1, 2})
    assert net.group_of(3) == {3}
    assert not net.connected(3, 1)


def test_crashed_process_not_connected():
    net = EVSNetwork([1, 2])
    net.crash(2)
    assert not net.connected(1, 2)
    assert not net.connected(2, 1)


def test_partition_drops_in_flight_traffic():
    net = EVSNetwork([1, 2, 3])
    net.run_until_converged()
    # Generate traffic so queues are non-empty, then cut the network.
    for pid in (1, 2, 3):
        net.submit(pid, ("m", pid))
    net.step()  # sends are now in flight
    had_queued = any(
        net._data[pid] or net._token[pid] for pid in (1, 2, 3)
    )
    net.set_partition({1}, {2}, {3})
    for pid in (1, 2, 3):
        for src, _payload in net._data[pid]:
            assert net.connected(src, pid), "cross-partition message survived"
    assert had_queued  # the scenario actually exercised the drop path


def test_heal_restores_full_connectivity():
    net = EVSNetwork([1, 2, 3])
    net.set_partition({1}, {2}, {3})
    net.heal()
    for a in (1, 2, 3):
        for b in (1, 2, 3):
            assert net.connected(a, b)


def test_heal_excludes_crashed():
    net = EVSNetwork([1, 2, 3])
    net.crash(3)
    net.heal()
    assert not net.connected(1, 3)


def test_steps_counter_advances():
    net = EVSNetwork([1, 2])
    before = net.steps
    net.run_quiet(10)
    assert net.steps == before + 10


def test_three_way_partition_forms_three_rings():
    net = EVSNetwork([1, 2, 3, 4, 5, 6])
    net.run_until_converged()
    net.set_partition({1, 2}, {3, 4}, {5, 6})
    net.run_until_converged()
    assert net.processes[1].ring.members == (1, 2)
    assert net.processes[3].ring.members == (3, 4)
    assert net.processes[5].ring.members == (5, 6)
    ring_ids = {net.processes[p].ring.ring_id for p in (1, 3, 5)}
    assert len(ring_ids) == 3  # all distinct (representative-scoped ids)


def test_converged_false_while_gathering():
    net = EVSNetwork([1, 2])
    # Immediately after bootstrap everyone is still gathering.
    assert not net.converged() or all(
        net.processes[p].state is State.OPERATIONAL for p in (1, 2)
    )
    net.run_until_converged()
    assert net.converged()
