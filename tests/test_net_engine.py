"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.net.engine import (
    Latch,
    SimulationError,
    Simulator,
    Timeout,
    drain,
)


def test_callbacks_run_in_time_order():
    sim = Simulator()
    order = []
    sim.call_in(2.0, order.append, "b")
    sim.call_in(1.0, order.append, "a")
    sim.call_in(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.call_in(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_call_at_schedules_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_in(1.0, lambda: sim.call_at(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.call_in(10.0, fired.append, True)
    sim.run(until=5.0)
    assert not fired
    assert sim.now == 5.0
    sim.run()
    assert fired == [True]


def test_process_timeout_advances_time():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield Timeout(1.5)
        log.append(sim.now)
        yield Timeout(0.5)
        log.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    assert log == [0.0, 1.5, 2.0]


def test_signal_wakes_waiters_in_order():
    sim = Simulator()
    signal = sim.signal("s")
    woken = []

    def waiter(tag):
        value = yield signal
        woken.append((tag, value, sim.now))

    sim.spawn(waiter("a"), "a")
    sim.spawn(waiter("b"), "b")
    sim.call_in(3.0, signal.fire, 42)
    sim.run()
    assert woken == [("a", 42, 3.0), ("b", 42, 3.0)]


def test_signal_is_reusable():
    sim = Simulator()
    signal = sim.signal()
    hits = []

    def waiter():
        while True:
            yield signal
            hits.append(sim.now)

    sim.spawn(waiter(), "w")
    sim.call_in(1.0, signal.fire)
    sim.call_in(2.0, signal.fire)
    sim.run(until=3.0)
    assert hits == [1.0, 2.0]


def test_signal_has_no_memory():
    sim = Simulator()
    signal = sim.signal()
    woken = []

    def late_waiter():
        yield Timeout(2.0)  # the fire at t=1 happens before we wait
        yield signal
        woken.append(sim.now)

    sim.spawn(late_waiter(), "late")
    sim.call_in(1.0, signal.fire)
    sim.run(until=10.0)
    assert woken == []


def test_latch_remembers_fire():
    sim = Simulator()
    latch = sim.latch()
    woken = []

    def late_waiter():
        yield Timeout(2.0)
        value = yield latch
        woken.append((sim.now, value))

    sim.spawn(late_waiter(), "late")
    sim.call_in(1.0, latch.fire, "done")
    sim.run()
    assert woken == [(2.0, "done")]


def test_latch_fires_once():
    sim = Simulator()
    latch = sim.latch()
    latch.fire("first")
    latch.fire("second")
    assert latch.value == "first"


def test_process_done_latch():
    sim = Simulator()

    def short():
        yield Timeout(1.0)

    process = sim.spawn(short(), "short")
    finished = []

    def watcher():
        yield process.done
        finished.append(sim.now)

    sim.spawn(watcher(), "watch")
    sim.run()
    assert finished == [1.0]
    assert not process.alive


def test_interrupted_process_never_resumes():
    sim = Simulator()
    log = []

    def proc():
        yield Timeout(1.0)
        log.append("should not happen")

    process = sim.spawn(proc(), "p")
    sim.call_in(0.5, process.interrupt)
    sim.run()
    assert log == []


def test_bad_yield_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_max_events_backstop():
    sim = Simulator()

    def forever():
        while True:
            yield Timeout(1.0)

    sim.spawn(forever(), "loop")
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_event_count_increases():
    sim = Simulator()
    for _ in range(5):
        sim.call_in(1.0, lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_drain_exhausts_iterable():
    seen = []
    drain(seen.append(i) for i in range(3))
    assert seen == [0, 1, 2]


def test_max_events_budget_is_per_call():
    sim = Simulator()

    def ticker():
        while True:
            yield Timeout(1.0)

    sim.spawn(ticker(), "tick")
    # Each run() call gets a fresh max_events budget, independent of the
    # cumulative event_count (documented per-call semantics).
    sim.run(until=20.0, max_events=60)
    first = sim.event_count
    assert first > 30
    sim.run(until=40.0, max_events=60)  # would raise if budget were global
    assert sim.event_count > first
    with pytest.raises(SimulationError):
        sim.run(until=10_000.0, max_events=30)
