"""Tests for the adaptive accelerated-window controller."""

import pytest

from repro import LoopbackRing, ProtocolConfig, Service
from repro.core import (
    AcceleratedWindowTuner,
    Participant,
    Ring,
    Service as Svc,
    TunerConfig,
    initial_token,
    token_of,
)


def make_tuned_participant(accel=10, personal=20, **tuner_kw):
    ring = Ring.of((1, 2))
    participant = Participant(
        1, ring, ProtocolConfig(personal_window=personal,
                                accelerated_window=accel)
    )
    tuner = AcceleratedWindowTuner(participant, TunerConfig(**tuner_kw))
    return participant, tuner


def spin_rounds(participant, rounds, submit_per_round=0):
    token = initial_token()
    for _round in range(rounds):
        for _i in range(submit_per_round):
            participant.submit(b"x", Svc.AGREED)
        actions = participant.on_token(token)
        sent = token_of(actions)
        token = sent.evolve(hop=sent.hop + 2, aru=sent.seq)
    return token


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------

def test_clean_epochs_grow_window():
    participant, tuner = make_tuned_participant(accel=5, epoch_rounds=4)
    spin_rounds(participant, rounds=16)
    assert tuner.epochs == 4
    assert tuner.increases == 4
    assert participant.accelerated_window == 9


def test_window_capped_at_personal_window():
    participant, tuner = make_tuned_participant(
        accel=19, personal=20, epoch_rounds=1
    )
    spin_rounds(participant, rounds=10)
    assert participant.accelerated_window == 20


def test_explicit_max_window_respected():
    participant, tuner = make_tuned_participant(
        accel=5, epoch_rounds=1, max_window=7
    )
    spin_rounds(participant, rounds=10)
    assert participant.accelerated_window == 7


def test_post_token_loss_shrinks_window():
    participant, tuner = make_tuned_participant(accel=16, epoch_rounds=4)
    # Round 1: send post-token messages.
    for _i in range(8):
        participant.submit(b"x", Svc.AGREED)
    first = token_of(participant.on_token(initial_token()))
    # The peer requests two of them (they were lost): pure post-token loss.
    requested = first.evolve(hop=first.hop + 2, rtr=(1, 2))
    second = token_of(participant.on_token(requested))
    # Finish the epoch cleanly.
    token = second.evolve(hop=second.hop + 2, aru=second.seq)
    for _round in range(2):
        sent = token_of(participant.on_token(token))
        token = sent.evolve(hop=sent.hop + 2, aru=sent.seq)
    assert tuner.decreases == 1
    assert participant.accelerated_window == 8  # 16 * 0.5


def test_pre_token_loss_does_not_shrink_window():
    # With accel=2 and 8 messages, seqs 1..6 are pre-token; requesting
    # one of those must NOT trigger back-off.
    participant, tuner = make_tuned_participant(accel=2, epoch_rounds=4)
    for _i in range(8):
        participant.submit(b"x", Svc.AGREED)
    first = token_of(participant.on_token(initial_token()))
    requested = first.evolve(hop=first.hop + 2, rtr=(1,))
    token = token_of(participant.on_token(requested))
    for _round in range(2):
        sent = participant.on_token(
            token.evolve(hop=token.hop + 2, aru=token.seq)
        )
        token = token_of(sent)
    assert tuner.decreases == 0
    assert participant.accelerated_window >= 2


def test_window_never_negative():
    participant, tuner = make_tuned_participant(
        accel=1, epoch_rounds=1, min_window=0
    )
    # Force repeated decreases.
    for _round in range(5):
        for _i in range(4):
            participant.submit(b"x", Svc.AGREED)
        token = participant.last_token_sent or initial_token()
        received = token.evolve(
            hop=(token.hop or 0) + 2,
            rtr=tuple(
                s for s in range(max(1, token.seq - 1), token.seq + 1)
                if s > 0
            ),
        )
        participant.on_token(received)
    assert participant.accelerated_window >= 0


# ---------------------------------------------------------------------------
# End-to-end: the tuner converges in a running ring
# ---------------------------------------------------------------------------

def test_tuner_grows_in_clean_ring():
    config = ProtocolConfig(personal_window=12, accelerated_window=2)
    ring = LoopbackRing([1, 2, 3], config)
    tuners = [
        AcceleratedWindowTuner(ring.participants[pid],
                               TunerConfig(epoch_rounds=2))
        for pid in (1, 2, 3)
    ]
    for pid in (1, 2, 3):
        ring.submit_many(pid, list(range(60)))
    ring.run(max_steps=500_000)
    # No loss: every tuner should have grown its window.
    for tuner in tuners:
        assert tuner.window > 2
        assert tuner.decreases == 0
    # And the run stays totally ordered while windows change live.
    seqs = {p: ring.delivered_seqs(p) for p in (1, 2, 3)}
    assert seqs[1] == seqs[2] == seqs[3] == list(range(1, 181))


def test_tuner_backs_off_under_post_token_loss():
    # Drop the first transmission of every post-token message: maximum
    # overlap punishment.  The tuners must shrink their windows, and
    # the ring must still deliver everything.
    seen = set()

    def drop_post_token_once(message, dst):
        key = (message.seq, dst)
        if message.sent_after_token and key not in seen:
            seen.add(key)
            return True
        return False

    config = ProtocolConfig(personal_window=12, accelerated_window=12)
    ring = LoopbackRing([1, 2, 3], config, drop_data=drop_post_token_once)
    tuners = [
        AcceleratedWindowTuner(ring.participants[pid],
                               TunerConfig(epoch_rounds=2))
        for pid in (1, 2, 3)
    ]
    for pid in (1, 2, 3):
        ring.submit_many(pid, list(range(60)))
    ring.run(max_steps=500_000)
    assert sum(t.decreases for t in tuners) > 0
    assert max(t.window for t in tuners) < 12 + 5
    seqs = {p: ring.delivered_seqs(p) for p in (1, 2, 3)}
    assert seqs[1] == seqs[2] == seqs[3] == list(range(1, 181))
