"""SWIM gossip detector: unit coverage plus chaos fuzzing.

The detector is sans-IO, so these tests drive it with a tiny in-memory
mesh: tick every detector, carry ``(dst, message)`` sends through a
queue, collect the controller-facing event stream.  The hypothesis
state machine at the bottom subjects the message queue to loss,
duplication and reordering and asserts the headline safety property:
a live node that can refute its own suspicion is never *permanently*
confirmed dead anywhere.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.membership.gossip import (
    ALIVE,
    DEAD,
    SUSPECT,
    GossipAck,
    GossipConfig,
    GossipDetector,
    GossipPing,
    GossipPingReq,
    GossipUpdate,
    PeerAlive,
    PeerConfirm,
    PeerSuspect,
)


class Mesh:
    """Lossless in-order transport between detectors (unless told not
    to be): the deterministic scaffolding for the unit tests."""

    def __init__(self, pids, config=None, seed=0, drop=None):
        self.config = config or GossipConfig()
        self.detectors = {
            pid: GossipDetector(pid, self.config, seed=seed) for pid in pids
        }
        for detector in self.detectors.values():
            detector.seed_members(pids)
        self.queue = []  # (dst, src, message)
        self.events = {pid: [] for pid in pids}
        self.down = set()
        #: Optional ``drop(dst, src, message) -> bool`` link filter.
        self.drop = drop

    def _emit(self, src, sends):
        for dst, message in sends:
            if self.drop is not None and self.drop(dst, src, message):
                continue
            self.queue.append((dst, src, message))

    def tick_all(self):
        for pid in sorted(self.detectors):
            if pid in self.down:
                continue
            sends, events = self.detectors[pid].tick()
            self.events[pid].extend(events)
            self._emit(pid, sends)

    def deliver_all(self):
        while self.queue:
            dst, src, message = self.queue.pop(0)
            if dst in self.down:
                continue
            sends, events = self.detectors[dst].handle(message, src)
            self.events[dst].extend(events)
            self._emit(dst, sends)

    def step(self, count=1):
        for _i in range(count):
            self.tick_all()
            self.deliver_all()


def test_quiet_cluster_never_suspects():
    mesh = Mesh(range(3))
    mesh.step(300)
    for pid, events in mesh.events.items():
        assert not any(isinstance(e, (PeerSuspect, PeerConfirm))
                       for e in events), (pid, events)
    for detector in mesh.detectors.values():
        assert all(status == ALIVE
                   for _inc, status in detector.members().values())


def test_silent_peer_is_suspected_then_confirmed():
    mesh = Mesh(range(4))
    mesh.step(50)
    mesh.down.add(3)
    mesh.step(400)
    for pid in (0, 1, 2):
        kinds = [type(e) for e in mesh.events[pid]
                 if getattr(e, "pid", None) == 3]
        assert PeerSuspect in kinds
        assert PeerConfirm in kinds
        # Suspicion precedes confirmation.
        assert kinds.index(PeerSuspect) < kinds.index(PeerConfirm)
        assert mesh.detectors[pid].status_of(3) == DEAD


def test_own_suspicion_is_refuted_with_higher_incarnation():
    detector = GossipDetector(0, GossipConfig(), seed=1)
    detector.seed_members(range(3))
    ping = GossipPing(1, 0, probe_id=7,
                      updates=(GossipUpdate(0, 0, SUSPECT),))
    sends, _events = detector.handle(ping, 1)
    assert detector.incarnation == 1
    assert detector.false_suspicions_refuted == 1
    ((dst, ack),) = sends
    assert dst == 1 and isinstance(ack, GossipAck)
    # The refutation rides out on the very first reply.
    assert GossipUpdate(0, 1, ALIVE) in ack.updates


def test_indirect_probe_covers_a_bad_direct_link():
    # Node 0 cannot reach node 2 directly, but relayers can: the
    # ping-req path must keep 0 from ever suspecting 2.
    def drop(dst, src, message):
        return (src == 0 and dst == 2 and isinstance(message, GossipPing))

    mesh = Mesh(range(3), drop=drop)
    mesh.step(400)
    assert mesh.detectors[0].status_of(2) == ALIVE
    assert not any(getattr(e, "pid", None) == 2
                   for e in mesh.events[0]
                   if isinstance(e, (PeerSuspect, PeerConfirm)))
    # The indirect machinery actually fired.
    assert any(isinstance(m, GossipPingReq)
               for _dst, _src, m in _drain_history(mesh))


def _drain_history(mesh):
    # Re-run a fresh copy of the same scenario capturing traffic: the
    # Mesh consumes its queue, so historical traffic isn't retained.
    # Instead replay a few steps while intercepting sends.
    seen = []
    original_emit = mesh._emit

    def recording_emit(src, sends):
        for dst, message in sends:
            seen.append((dst, src, message))
        original_emit(src, sends)

    mesh._emit = recording_emit
    mesh.step(100)
    mesh._emit = original_emit
    return seen


def test_dead_member_is_resurrected_by_fresher_incarnation():
    detector = GossipDetector(0, GossipConfig(), seed=2)
    detector.seed_members([0, 1])
    _sends, events = detector.handle(
        GossipPing(1, 0, 1, updates=(GossipUpdate(1, 0, DEAD),)), 1
    )
    assert detector.status_of(1) == DEAD
    assert any(isinstance(e, PeerConfirm) and e.pid == 1 for e in events)
    # A strictly-higher-incarnation alive beats the dead record.
    _sends, events = detector.handle(GossipPing(1, 1, 2), 1)
    assert detector.status_of(1) == ALIVE
    assert any(isinstance(e, PeerAlive) and e.pid == 1 and e.incarnation == 1
               for e in events)


def test_rejoin_by_refutation_after_amnesiac_restart():
    # The cluster remembers pid 5 dead at incarnation 3; a restarted,
    # amnesiac pid 5 (incarnation 0) must learn its own dead record
    # from an ack and gossip itself back with incarnation 4.
    veteran = GossipDetector(0, GossipConfig(), seed=3)
    veteran.seed_members([0, 5])
    veteran.handle(
        GossipPing(1, 0, 1, updates=(GossipUpdate(5, 3, DEAD),)), 1
    )
    assert veteran.status_of(5) == DEAD

    reborn = GossipDetector(5, GossipConfig(), seed=4)
    reborn.seed_members([0, 5])
    alive_again = False
    for _tick in range(200):
        sends, _events = reborn.tick()
        for dst, message in sends:
            if dst != 0:
                continue
            replies, _events = veteran.handle(message, 5)
            for rdst, reply in replies:
                # The veteran may also relay probes toward third
                # parties it heard of; only route what is for us.
                if rdst == 5:
                    reborn.handle(reply, 0)
        if veteran.status_of(5) == ALIVE:
            alive_again = True
            break
    assert alive_again
    assert reborn.incarnation == 4
    assert veteran.members()[5] == (4, ALIVE)


def test_piggyback_is_bounded_and_buffer_drains():
    config = GossipConfig(max_piggyback=8)
    detector = GossipDetector(0, config, seed=5)
    detector.seed_members(range(30))
    updates = tuple(
        GossipUpdate(pid, 1, ALIVE) for pid in range(1, 21)
    )
    sends, _events = detector.handle(GossipPing(1, 0, 1, updates), 1)
    ((_dst, ack),) = sends
    assert len(ack.updates) <= config.max_piggyback
    # Each selection charges a retransmission; the buffer must drain.
    for probe_id in range(2, 200):
        detector.handle(GossipPing(1, 0, probe_id), 1)
    sends, _events = detector.handle(GossipPing(1, 0, 1000), 1)
    ((_dst, ack),) = sends
    assert ack.updates == ()


def test_unknown_message_type_is_rejected():
    detector = GossipDetector(0)
    with pytest.raises(TypeError):
        detector.handle(object(), 1)


class GossipChaos(RuleBasedStateMachine):
    """Loss, duplication and reordering never permanently kill a live,
    refuting node.

    Every node stays up and processes whatever the chaos delivers; at
    teardown the transport turns reliable for long enough that every
    suspicion either expires into a confirm and is refuted, or is
    cleared.  No detector may end believing any (live) peer is DEAD.
    """

    N = 4

    def __init__(self):
        super().__init__()
        self.mesh = Mesh(range(self.N), seed=7)

    @initialize()
    def warm_up(self):
        self.mesh.step(20)

    @rule(pid=st.integers(min_value=0, max_value=N - 1))
    def tick_one(self, pid):
        detector = self.mesh.detectors[pid]
        sends, events = detector.tick()
        self.mesh.events[pid].extend(events)
        self.mesh._emit(pid, sends)

    @rule(index=st.integers(min_value=0, max_value=200))
    def deliver_one(self, index):
        if not self.mesh.queue:
            return
        dst, src, message = self.mesh.queue.pop(index % len(self.mesh.queue))
        sends, events = self.mesh.detectors[dst].handle(message, src)
        self.mesh.events[dst].extend(events)
        self.mesh._emit(dst, sends)

    @rule(index=st.integers(min_value=0, max_value=200))
    def drop_one(self, index):
        if self.mesh.queue:
            self.mesh.queue.pop(index % len(self.mesh.queue))

    @rule(index=st.integers(min_value=0, max_value=200))
    def duplicate_one(self, index):
        if self.mesh.queue:
            self.mesh.queue.append(
                self.mesh.queue[index % len(self.mesh.queue)]
            )

    @rule()
    def reorder_tail(self):
        if len(self.mesh.queue) >= 2:
            self.mesh.queue.reverse()

    def teardown(self):
        # Reliable phase: suspicion_ticks=60, ping_interval=10 — 800
        # reliable ticks is enough for every stale suspicion to expire
        # and every refutation to propagate by direct contact.
        self.mesh.step(800)
        for pid, detector in self.mesh.detectors.items():
            for peer, (_inc, status) in detector.members().items():
                assert status != DEAD, (
                    "detector %d falsely confirmed live node %d: %r"
                    % (pid, peer, detector.members())
                )


GossipChaos.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestGossipChaos = GossipChaos.TestCase
