"""DET-RNG clean fixture: an explicitly seeded instance, threaded."""

import random


def jitter(base, rng):
    return base + rng.random()


def make_rng(seed):
    return random.Random(seed)
