"""SLOT-MISSING fixture: hot-path class with no __slots__ at all."""


class TokenTracker:
    def __init__(self, ring_id):
        self.ring_id = ring_id
        self.rotations = 0

    def advance(self):
        self.rotations += 1
