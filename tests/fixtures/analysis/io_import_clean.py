"""IO-IMPORT clean fixture: pure stdlib data structures only."""

import struct
from collections import deque

from .sibling import helper  # relative imports stay in-package

_HEADER = struct.Struct("!HH")


def enqueue(queue: deque, item):
    queue.append(helper(item))
