"""WIRE-TAG-SCATTER fixture: a codec module minting its own tag."""

TYPE_SHUTDOWN = 12  # new tags belong in repro.wire.tags

_V_FLOAT = 0x0D  # TLV tag minted outside the registry


def frame_kind(header):
    return header[3]
