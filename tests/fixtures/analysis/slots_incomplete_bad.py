"""SLOT-INCOMPLETE fixture: a self attribute missing from __slots__."""


class WindowTracker:
    __slots__ = ("window", "in_flight")

    def __init__(self, window):
        self.window = window
        self.in_flight = 0
        self.peak = 0  # not in __slots__: instances grow a __dict__

    def record(self, n):
        self.in_flight += n
        self.peak = max(self.peak, self.in_flight)
