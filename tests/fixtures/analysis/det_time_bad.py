"""DET-TIME fixture: wall-clock reads in a sans-IO module."""

import time
from datetime import datetime


def stamp_message(msg):
    msg.sent_at = time.time()
    return msg


def log_line(text):
    return "%s %s" % (datetime.now().isoformat(), text)
