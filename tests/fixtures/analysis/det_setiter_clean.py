"""DET-SETITER clean fixture: set order erased before iteration."""


def broadcast(peers, down):
    for peer in sorted(peers - down):
        yield peer


def snapshot(table):
    members = set(table)
    return sorted(entry for entry in members)


def census(table):
    members = set(table)
    return len(members), min(members)
