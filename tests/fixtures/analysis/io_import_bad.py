"""IO-IMPORT fixture: IO/concurrency imports in a sans-IO module."""

import socket
import threading
from asyncio import get_event_loop


def serve(port):
    sock = socket.socket()
    sock.bind(("", port))
    lock = threading.Lock()
    return sock, lock, get_event_loop()
