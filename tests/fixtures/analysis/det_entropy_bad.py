"""DET-ENTROPY fixture: OS entropy sources in a sans-IO module."""

import os
import uuid


def mint_connection_id():
    return uuid.uuid4()


def mint_nonce():
    return os.urandom(16)
