"""WIRE-TAG-DUP fixture: colliding tag numbers in the registry.

Linted under the configured tag-registry module name.
"""

TYPE_DATA = 1
TYPE_TOKEN = 2
TYPE_JOIN = 2  # collides with TYPE_TOKEN in the frame byte-space

VALUE_NONE = 0x00
OBJECT_TAG_CLIENT_ID = 0x00  # collides: VALUE_* and OBJECT_TAG_* share
                             # the TLV tag byte

TYPE_NAMES = {
    TYPE_DATA: "data",
    2: "token",
    2: "join",  # duplicate literal key, silently collapsed by Python
}
