"""WIRE-SIZE fixture: declared sizes that drifted from the structs."""

import struct

_HEADER = struct.Struct("!HBB")
HEADER_SIZE = _HEADER.size  # 5

_BODY = struct.Struct("!QQ")
BODY_SIZE = _BODY.size  # 16
FRAME_SIZE = HEADER_SIZE + BODY_SIZE + 4  # 25

_BROKEN = struct.Struct("!Q?z")
