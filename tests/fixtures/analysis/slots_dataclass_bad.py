"""SLOT-DATACLASS fixture: hot-path dataclasses without slots=True."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FrameHeader:
    kind: int
    length: int


@dataclass
class Counters:
    sent: int = 0
    received: int = 0
