"""WIRE-SIZE clean fixture: every declared size matches its struct."""

import struct

_HEADER = struct.Struct("!HBB")
HEADER_SIZE = _HEADER.size  # 4

_BODY = struct.Struct("!QQ")
BODY_SIZE = _BODY.size  # 16
FRAME_SIZE = HEADER_SIZE + BODY_SIZE + 4  # 24

MAX_PAYLOAD = 1400  # no struct involved, plain constant is fine
