"""WIRE-TAG clean fixture: a well-formed registry.

Linted under the configured tag-registry module name.
"""

TYPE_DATA = 1
TYPE_TOKEN = 2
TYPE_JOIN = 3

VALUE_NONE = 0x00
VALUE_INT = 0x01
OBJECT_TAG_CLIENT_ID = 0x30  # distinct from every VALUE_* above

TYPE_NAMES = {
    TYPE_DATA: "data",
    TYPE_TOKEN: "token",
    TYPE_JOIN: "join",
}
