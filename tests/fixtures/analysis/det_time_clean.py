"""DET-TIME clean fixture: the driver supplies the clock."""


def stamp_message(msg, now_ticks):
    msg.sent_at = now_ticks
    return msg


def log_line(text, now_ticks):
    return "[%d] %s" % (now_ticks, text)
