"""DET-RNG fixture: process-global random state in a sans-IO module."""

import random
from random import randint


def jitter(base):
    return base + random.random()


def pick(items):
    return items[randint(0, len(items) - 1)]


def fresh_rng():
    return random.Random()
