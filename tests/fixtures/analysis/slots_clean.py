"""Clean fixture for all three SLOT-* rules."""

from dataclasses import dataclass
from enum import Enum


class TokenTracker:
    __slots__ = ("ring_id", "rotations")

    def __init__(self, ring_id):
        self.ring_id = ring_id
        self.rotations = 0

    def advance(self):
        self.rotations += 1


class RetransmitTracker(TokenTracker):
    __slots__ = ("pending",)

    def __init__(self, ring_id):
        super().__init__(ring_id)
        self.pending = []


@dataclass(frozen=True, slots=True)
class FrameHeader:
    kind: int
    length: int


class DecodeError(ValueError):
    """Exception classes are exempt (BaseException has a __dict__)."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class Kind(Enum):
    DATA = 1
    TOKEN = 2
