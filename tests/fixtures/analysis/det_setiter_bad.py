"""DET-SETITER fixture: hash-order iteration over set expressions."""


def broadcast(peers, self_id):
    for peer in peers - {self_id}:
        yield peer


def snapshot(table):
    members = set(table)
    return [entry for entry in members]


def pair_up():
    return list({"a", "b", "c"})
