"""WIRE-TAG-SCATTER clean fixture: tags imported from the registry."""

from .tags import TYPE_DATA, TYPE_TOKEN, VALUE_NONE

_V_NONE = VALUE_NONE  # aliasing a registry name is fine


def is_data(kind):
    return kind == TYPE_DATA or kind != TYPE_TOKEN
