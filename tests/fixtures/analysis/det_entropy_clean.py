"""DET-ENTROPY clean fixture: identifiers derive from the run seed."""

import random


def mint_connection_id(rng):
    return rng.getrandbits(64)


def make_rng(seed):
    return random.Random(seed)
