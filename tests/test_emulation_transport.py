"""Unit tests for the UDP transport (no protocol, just datagrams)."""

import pytest

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.emulation import PortPair, UdpTransport


@pytest.fixture
def pair():
    a = UdpTransport(0)
    b = UdpTransport(1)
    peers = {0: a.ports, 1: b.ports}
    a.set_peers(peers)
    b.set_peers(peers)
    yield a, b
    a.close()
    b.close()


def drain(transport, timeout=0.5):
    import time

    deadline = time.monotonic() + timeout
    data, tokens = [], []
    while time.monotonic() < deadline:
        d, t = transport.poll(0.01)
        data.extend(d)
        tokens.extend(t)
        if data or tokens:
            break
    return data, tokens


def test_ports_allocated_distinct(pair):
    a, b = pair
    assert a.ports.data_port != a.ports.token_port
    assert a.ports.data_port != b.ports.data_port


def test_data_fanout_reaches_peer_not_self(pair):
    a, b = pair
    message = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                          payload=b"hi")
    a.send_data(message)
    data, tokens = drain(b)
    assert len(data) == 1 and data[0].seq == 1
    assert tokens == []
    own_data, _ = a.poll(0.05)
    assert own_data == []  # no loopback to self


def test_token_goes_to_token_socket(pair):
    a, b = pair
    a.send_token(Token(hop=3), dst=1)
    data, tokens = drain(b)
    assert data == []
    assert len(tokens) == 1 and tokens[0].hop == 3


def test_loss_rule_applies_per_destination(pair):
    a, b = pair
    a.set_loss_rule(lambda kind, obj, dst: kind == "data")
    a.send_data(DataMessage(seq=1, pid=0, round=1, service=Service.AGREED))
    a.send_token(Token(hop=1), dst=1)
    data, tokens = drain(b)
    assert data == []
    assert len(tokens) == 1


def test_datagram_counters(pair):
    a, b = pair
    a.send_data(DataMessage(seq=1, pid=0, round=1, service=Service.AGREED))
    drain(b)
    assert a.datagrams_sent == 1
    assert b.datagrams_received == 1


def test_oversized_datagram_rejected(pair):
    a, _b = pair
    huge = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                       payload=b"x" * 100_000)
    with pytest.raises(ValueError):
        a.send_data(huge)


def test_poll_timeout_returns_empty(pair):
    a, _b = pair
    data, tokens = a.poll(0.01)
    assert data == [] and tokens == []
