"""Unit tests for the UDP transport (no protocol, just datagrams)."""

import pytest

from repro.core import Service, Token
from repro.core.messages import DataMessage
from repro.emulation import PortPair, UdpTransport


@pytest.fixture
def pair():
    a = UdpTransport(0)
    b = UdpTransport(1)
    peers = {0: a.ports, 1: b.ports}
    a.set_peers(peers)
    b.set_peers(peers)
    yield a, b
    a.close()
    b.close()


def drain(transport, timeout=0.5):
    import time

    deadline = time.monotonic() + timeout
    data, tokens = [], []
    while time.monotonic() < deadline:
        d, t = transport.poll(0.01)
        data.extend(d)
        tokens.extend(t)
        if data or tokens:
            break
    return data, tokens


def test_ports_allocated_distinct(pair):
    a, b = pair
    assert a.ports.data_port != a.ports.token_port
    assert a.ports.data_port != b.ports.data_port


def test_data_fanout_reaches_peer_not_self(pair):
    a, b = pair
    message = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                          payload=b"hi")
    a.send_data(message)
    data, tokens = drain(b)
    assert len(data) == 1 and data[0].seq == 1
    assert tokens == []
    own_data, _ = a.poll(0.05)
    assert own_data == []  # no loopback to self


def test_token_goes_to_token_socket(pair):
    a, b = pair
    a.send_token(Token(hop=3), dst=1)
    data, tokens = drain(b)
    assert data == []
    assert len(tokens) == 1 and tokens[0].hop == 3


def test_loss_rule_applies_per_destination(pair):
    a, b = pair
    a.set_loss_rule(lambda kind, obj, dst: kind == "data")
    a.send_data(DataMessage(seq=1, pid=0, round=1, service=Service.AGREED))
    a.send_token(Token(hop=1), dst=1)
    data, tokens = drain(b)
    assert data == []
    assert len(tokens) == 1


def test_datagram_counters(pair):
    a, b = pair
    a.send_data(DataMessage(seq=1, pid=0, round=1, service=Service.AGREED))
    drain(b)
    assert a.datagrams_sent == 1
    assert b.datagrams_received == 1


def test_oversized_datagram_rejected(pair):
    a, _b = pair
    huge = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                       payload=b"x" * 100_000)
    with pytest.raises(ValueError):
        a.send_data(huge)


def test_poll_timeout_returns_empty(pair):
    a, _b = pair
    data, tokens = a.poll(0.01)
    assert data == [] and tokens == []


def test_oversized_error_names_type_and_size(pair):
    from repro.emulation import OversizedDatagramError

    a, _b = pair
    huge = DataMessage(seq=1, pid=0, round=1, service=Service.AGREED,
                       payload=b"x" * 100_000)
    with pytest.raises(OversizedDatagramError) as excinfo:
        a.send_data(huge)
    assert "DataMessage" in str(excinfo.value)
    assert str(excinfo.value.encoded_size) in str(excinfo.value)
    assert a.datagrams_sent == 0  # nothing was put on the wire


def test_large_valid_datagram_arrives_untruncated(pair):
    # Close to MAX_DATAGRAM but valid: must arrive byte-for-byte (the
    # receive buffer is sized so the kernel can never silently truncate).
    a, b = pair
    payload = bytes(range(256)) * 200  # 51200 bytes
    message = DataMessage(seq=2, pid=0, round=1, service=Service.AGREED,
                          payload=payload, payload_size=len(payload))
    a.send_data(message)
    data, _ = drain(b, timeout=2.0)
    assert len(data) == 1
    assert data[0].payload == payload
    assert b.datagrams_dropped == 0


def test_wire_bytes_are_codec_frames_not_pickle(pair):
    import socket

    a, _b = pair
    sniffer = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sniffer.bind(("127.0.0.1", 0))
    sniffer.settimeout(2.0)
    try:
        a.set_peers({0: a.ports, 9: PortPair(sniffer.getsockname()[1],
                                             sniffer.getsockname()[1])})
        a.ring_id = 5
        a.send_data(DataMessage(seq=3, pid=0, round=1,
                                service=Service.AGREED, payload=b"raw"))
        blob, _addr = sniffer.recvfrom(65_535)
    finally:
        sniffer.close()
    from repro.wire.codec import decode_detail

    assert blob[:2] == b"AR"  # wire magic, not a pickle opcode
    decoded = decode_detail(blob)
    assert decoded.kind == "data"
    assert decoded.ring_id == 5  # transport stamps its configuration id
    assert decoded.message.payload == b"raw"


def test_malformed_datagrams_counted_not_raised(pair):
    import socket

    a, _b = pair
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sender.sendto(b"\x00garbage", ("127.0.0.1", a.ports.data_port))
        sender.sendto(b"", ("127.0.0.1", a.ports.token_port))
    finally:
        sender.close()
    import time

    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline and a.drops_malformed < 2:
        data, tokens = a.poll(0.05)
        assert data == [] and tokens == []
    assert a.drops_malformed == 2
    assert a.datagrams_dropped == 2
    assert a.last_decode_error
