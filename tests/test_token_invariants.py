"""Invariants over the token stream itself.

Captures every token sent during loopback runs and checks the global
invariants the protocol maintains (DESIGN.md Section 5), under several
configurations and loss patterns.
"""

import pytest

from repro import LoopbackRing, PriorityMethod, ProtocolConfig, Service
from helpers import FirstTimeLoss, mixed_workload


def run_and_capture(config, seed=0, loss_p=0.0, pids=(1, 2, 3, 4), per_pid=30):
    tokens = []
    loss = FirstTimeLoss(seed + 500, pids=pids, p=loss_p) if loss_p else None
    ring = LoopbackRing(list(pids), config, drop_data=loss)
    ring.hub.subscribe(
        "token_handled",
        lambda pid, received, sent, new_messages, retransmissions: tokens.append(
            (pid, received, sent, new_messages, retransmissions)
        ),
    )
    for pid, payload, service in mixed_workload(seed, pids, per_pid):
        ring.submit(pid, payload, service)
    ring.run(max_steps=2_000_000)
    return ring, tokens


CONFIGS = [
    pytest.param(ProtocolConfig.original_ring(), id="original"),
    pytest.param(ProtocolConfig.accelerated(), id="accelerated"),
    pytest.param(
        ProtocolConfig.accelerated(priority_method=PriorityMethod.AGGRESSIVE),
        id="aggressive",
    ),
]


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("loss_p", [0.0, 0.1])
def test_aru_never_exceeds_seq(config, loss_p):
    _ring, tokens = run_and_capture(config, seed=1, loss_p=loss_p)
    for _pid, _received, sent, _new, _retrans in tokens:
        assert sent.aru <= sent.seq, sent


@pytest.mark.parametrize("config", CONFIGS)
def test_seq_is_monotone_and_hop_increments(config):
    _ring, tokens = run_and_capture(config, seed=2)
    previous_seq = 0
    previous_hop = 0
    for _pid, _received, sent, _new, _retrans in tokens:
        assert sent.seq >= previous_seq
        assert sent.hop == previous_hop + 1
        previous_seq = sent.seq
        previous_hop = sent.hop


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("loss_p", [0.0, 0.08])
def test_fcc_within_global_window(config, loss_p):
    _ring, tokens = run_and_capture(config, seed=3, loss_p=loss_p)
    for _pid, _received, sent, _new, _retrans in tokens:
        assert 0 <= sent.fcc <= config.global_window, sent


@pytest.mark.parametrize("config", CONFIGS)
def test_new_messages_within_personal_window(config):
    _ring, tokens = run_and_capture(config, seed=4)
    for _pid, _received, _sent, new, _retrans in tokens:
        assert new <= config.personal_window


@pytest.mark.parametrize("config", CONFIGS)
def test_seq_gap_bounded(config):
    tight = config.evolve(max_seq_gap=50)
    _ring, tokens = run_and_capture(tight, seed=5, per_pid=60)
    for _pid, received, sent, _new, _retrans in tokens:
        # New seq never leads the received (global) aru by more than the
        # configured gap.
        assert sent.seq - received.aru <= 50 + tight.personal_window


@pytest.mark.parametrize("loss_p", [0.0, 0.1])
def test_aru_catches_up_to_seq_eventually(loss_p):
    ring, tokens = run_and_capture(
        ProtocolConfig.accelerated(), seed=6, loss_p=loss_p
    )
    final_sent = tokens[-1][2]
    assert final_sent.aru == final_sent.seq


def test_accelerated_aru_lags_under_steady_flow():
    # The Fig-7 mechanism: while traffic flows under acceleration, the
    # token aru typically trails seq (post-token messages not yet seen
    # by the successor).
    _ring, tokens = run_and_capture(
        ProtocolConfig.accelerated(accelerated_window=20), seed=7, per_pid=50
    )
    busy = [
        (received, sent)
        for _pid, received, sent, new, _r in tokens
        if new > 0
    ]
    lagging = sum(1 for _received, sent in busy if sent.aru < sent.seq)
    assert lagging > len(busy) * 0.5, (
        "aru should lag seq on most busy accelerated rounds (%d/%d)"
        % (lagging, len(busy))
    )


def test_original_aru_tracks_seq_without_loss():
    _ring, tokens = run_and_capture(
        ProtocolConfig.original_ring(), seed=8, per_pid=50
    )
    for _pid, _received, sent, _new, _retrans in tokens:
        assert sent.aru == sent.seq, (
            "in the loss-free original protocol every message reflected "
            "in the token was received before it: %r" % (sent,)
        )


@pytest.mark.parametrize("config", CONFIGS)
def test_rtr_requests_only_for_real_gaps_without_loss(config):
    _ring, tokens = run_and_capture(config, seed=9, loss_p=0.0)
    for _pid, _received, sent, _new, _retrans in tokens:
        assert sent.rtr == (), "spurious retransmission request: %r" % (sent,)
