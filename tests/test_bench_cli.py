"""Tests for the bench harness plumbing and the CLI."""

import os

import pytest

from repro.bench import (
    REGISTRY,
    headline,
    register,
    render_all,
    reset,
    run_sweep,
    series_label,
    simultaneous_improvement,
    throughput_gain_at_latency,
    tuned_configs,
)
from repro.bench.experiments import SweepSpec
from repro.bench.runner import persist_figure
from repro.cli import main as cli_main
from repro.core import Service
from repro.net import GIGABIT, TEN_GIGABIT
from repro.sim import LIBRARY
from repro.stats import Figure, Series, SeriesPoint


@pytest.fixture(autouse=True)
def clean_registry():
    reset()
    yield
    reset()


def tiny_spec(**overrides):
    fields = dict(
        figure_id="tiny",
        title="tiny sweep",
        link=GIGABIT,
        service=Service.AGREED,
        payload_size=1350,
        profiles=(LIBRARY,),
        protocols=("accelerated",),
        offered_mbps=(100.0,),
        n_nodes=3,
        duration_s=0.02,
        warmup_s=0.005,
    )
    fields.update(overrides)
    return SweepSpec(**fields)


def test_tuned_configs_differ_by_link():
    one_g = tuned_configs(GIGABIT)
    ten_g = tuned_configs(TEN_GIGABIT)
    assert one_g["original"].accelerated_window == 0
    assert one_g["accelerated"].is_accelerated
    assert ten_g["accelerated"].personal_window > one_g["accelerated"].personal_window


def test_series_label_format():
    assert series_label("spread", "original") == "spread/original"


def test_run_sweep_produces_points():
    figure = run_sweep(tiny_spec())
    assert set(figure.labels()) == {"library/accelerated"}
    points = figure.series["library/accelerated"].points
    assert len(points) == 1
    assert points[0].offered_mbps == 100.0
    assert points[0].achieved_mbps > 50


def test_run_sweep_progress_hook():
    seen = []
    run_sweep(tiny_spec(), progress=seen.append)
    assert len(seen) == 1
    assert "tiny" in seen[0]


def test_persist_figure_writes_files(tmp_path):
    figure = run_sweep(tiny_spec(figure_id="tiny2"))
    md_path = persist_figure(figure, directory=str(tmp_path))
    assert os.path.exists(md_path)
    assert os.path.exists(str(tmp_path / "tiny2.csv"))
    content = open(md_path).read()
    assert "tiny2" in content


def test_register_and_render_all():
    figure = Figure("figZ", "registered")
    figure.series_for("a").add(SeriesPoint(10, 10, 5, False))
    register(figure)
    headline("* one headline")
    rendered = render_all()
    assert "figZ" in rendered
    assert "one headline" in rendered
    assert "figZ" in REGISTRY


def test_simultaneous_improvement_math():
    orig = Series("o")
    accel = Series("a")
    orig.add(SeriesPoint(500, 500, 1000, False))
    accel.add(SeriesPoint(500, 500, 400, False))
    gain = simultaneous_improvement(orig, accel, 500)
    assert gain is not None
    latency_gain, ratio = gain
    assert latency_gain == pytest.approx(0.6)
    assert ratio == pytest.approx(1.0)


def test_simultaneous_improvement_requires_stable_points():
    orig = Series("o")
    accel = Series("a")
    orig.add(SeriesPoint(500, 300, 1000, True))
    accel.add(SeriesPoint(500, 500, 400, False))
    assert simultaneous_improvement(orig, accel, 500) is None


def test_throughput_gain_at_latency():
    orig = Series("o")
    accel = Series("a")
    for offered, latency in ((100, 100), (500, 800), (800, 5000)):
        orig.add(SeriesPoint(offered, offered, latency, False))
    for offered, latency in ((100, 80), (500, 200), (800, 600)):
        accel.add(SeriesPoint(offered, offered, latency, False))
    assert throughput_gain_at_latency(orig, accel, 1000) == pytest.approx(800 / 500)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for figure_id in ("fig1", "fig4", "fig7"):
        assert figure_id in out


def test_cli_unknown_experiment():
    with pytest.raises(SystemExit):
        cli_main(["nonsense", "--quiet"])
