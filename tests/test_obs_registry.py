"""Unit tests for the unified metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryError,
)


# -- instruments -------------------------------------------------------------

def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    c = registry.counter("core.test.count", node=0)
    c.inc()
    c.inc(4)
    assert c.get() == 5
    g = registry.gauge("core.test.level", node=0)
    g.set(7)
    g.inc(3)
    g.dec()
    assert g.get() == 9
    assert registry.value("core.test.count", node=0) == 5
    assert registry.value("core.test.level", node=0) == 9


def test_registering_same_name_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x", node=1)
    b = registry.counter("x", node=1)
    assert a is b
    # Different node scope is a different instrument.
    c = registry.counter("x", node=2)
    assert c is not a


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x", node=1)
    with pytest.raises(RegistryError):
        registry.gauge("x", node=1)
    with pytest.raises(RegistryError):
        registry.histogram("x", (1.0, 2.0), node=1)


def test_histogram_bounds_validation():
    with pytest.raises(RegistryError):
        Histogram("h", ())
    with pytest.raises(RegistryError):
        Histogram("h", (2.0, 1.0))
    with pytest.raises(RegistryError):
        Histogram("h", (1.0, 1.0))
    registry = MetricsRegistry()
    registry.histogram("h", (1.0, 2.0))
    with pytest.raises(RegistryError):
        registry.histogram("h", (1.0, 3.0))


def test_histogram_observe_and_percentile():
    h = Histogram("lat", (1.0, 10.0, 100.0))
    for value in (0.5, 0.7, 5.0, 50.0, 500.0):
        h.observe(value)
    assert h.count == 5
    assert h.sum == pytest.approx(556.2)
    # Buckets: <=1: 2, <=10: 1, <=100: 1, overflow: 1.
    assert h.counts == [2, 1, 1, 1]
    assert h.percentile(0.5) == 10.0
    # The overflow bucket reports the last finite edge.
    assert h.percentile(1.0) == 100.0
    assert Histogram("empty", (1.0,)).percentile(0.5) == 0.0


# -- bound views -------------------------------------------------------------

class _Owner:
    def __init__(self):
        self.hits = 0


def test_bind_reads_live_attribute_at_snapshot_time():
    registry = MetricsRegistry()
    owner = _Owner()
    registry.bind("app.hits", owner, "hits", node=3)
    assert registry.value("app.hits", node=3) == 0
    owner.hits += 11
    assert registry.value("app.hits", node=3) == 11
    # Re-binding replaces the view (restart semantics).
    fresh = _Owner()
    registry.bind("app.hits", fresh, "hits", node=3)
    assert registry.value("app.hits", node=3) == 0


def test_bind_fn_computes_at_snapshot_time():
    registry = MetricsRegistry()
    state = {"depth": 2}
    registry.bind_fn("app.depth", lambda: state["depth"], kind="gauge")
    assert registry.value("app.depth") == 2
    state["depth"] = 9
    assert registry.value("app.depth") == 9


# -- aggregation -------------------------------------------------------------

def test_total_sums_across_node_scopes():
    registry = MetricsRegistry()
    for pid in range(3):
        registry.counter("c", node=pid).inc(pid + 1)
    registry.counter("c").inc(10)  # unscoped participates too
    assert registry.total("c") == 1 + 2 + 3 + 10
    with pytest.raises(KeyError):
        registry.total("missing")


def test_total_merges_histograms_bucketwise():
    registry = MetricsRegistry()
    for pid in range(2):
        h = registry.histogram("h", (1.0, 2.0), node=pid)
        h.observe(0.5)
        h.observe(1.5 + pid)
    merged = registry.total("h")
    assert merged["count"] == 4
    assert merged["counts"] == [2, 1, 1]
    assert merged["sum"] == pytest.approx(0.5 + 1.5 + 0.5 + 2.5)


def test_names_and_nodes():
    registry = MetricsRegistry()
    registry.counter("b", node=2)
    registry.counter("a", node=1)
    registry.counter("a", node=2)
    registry.gauge("c")
    assert registry.names() == ["a", "b", "c"]
    assert registry.nodes() == [1, 2]


# -- snapshots ---------------------------------------------------------------

def _small_registry():
    registry = MetricsRegistry()
    registry.counter("k", node=0).inc(3)
    registry.counter("k", node=1).inc(4)
    registry.gauge("g", node=0).set(5)
    registry.histogram("h", (1.0,), node=0).observe(0.5)
    return registry


def test_snapshot_shape_and_aggregates():
    snap = _small_registry().snapshot()
    assert snap["schema"] == 1
    assert snap["nodes"]["0"]["k"] == 3
    assert snap["nodes"]["1"]["k"] == 4
    assert snap["cluster"]["k"] == 7
    assert snap["cluster"]["g"] == 5
    assert snap["cluster"]["h"]["count"] == 1


def test_snapshot_is_byte_stable():
    a = _small_registry().to_json()
    b = _small_registry().to_json()
    assert a == b
    # And round-trips as JSON.
    assert json.loads(a)["cluster"]["k"] == 7


def test_delta_subtracts_counters_and_histograms():
    registry = _small_registry()
    before = registry.snapshot()
    # Mutate: counters advance, histogram sees one more observation.
    registry.counter("k", node=0).inc(10)
    registry.histogram("h", (1.0,), node=0).observe(2.0)
    delta = registry.delta(before)
    assert delta["nodes"]["0"]["k"] == 10
    assert delta["nodes"]["1"]["k"] == 0
    assert delta["cluster"]["k"] == 10
    assert delta["cluster"]["h"]["count"] == 1
    assert delta["cluster"]["h"]["counts"] == [0, 1]


def test_delta_treats_missing_previous_as_zero():
    registry = MetricsRegistry()
    registry.counter("new", node=0).inc(6)
    delta = registry.delta({"schema": 1, "nodes": {}, "cluster": {}})
    assert delta["nodes"]["0"]["new"] == 6
    assert delta["cluster"]["new"] == 6


def test_write_json(tmp_path):
    registry = _small_registry()
    path = registry.write_json(str(tmp_path / "snap.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == registry.snapshot()
