"""Tests for the simulated deployment (nodes, cluster, measurements).

These are correctness and sanity tests; the figure-level performance
assertions live in benchmarks/.
"""

import pytest

from repro.core import PriorityMethod, ProtocolConfig, Service
from repro.net import GIGABIT, TEN_GIGABIT, BernoulliLoss
from repro.sim import DAEMON, LIBRARY, SPREAD, SimCluster, run_point
from repro.sim.latency import LatencyRecorder, summarize


ACCEL = ProtocolConfig.accelerated(personal_window=20, accelerated_window=15)
ORIG = ProtocolConfig.original_ring(personal_window=20)


def quick_point(config, offered_mbps, profile=LIBRARY, spec=GIGABIT, **kw):
    defaults = dict(duration_s=0.08, warmup_s=0.03, n_nodes=4)
    defaults.update(kw)
    return run_point(config, profile, spec, offered_mbps * 1e6, **defaults)


# ---------------------------------------------------------------------------
# Latency recorder
# ---------------------------------------------------------------------------

def test_summarize_empty():
    summary = summarize([])
    assert summary.count == 0 and summary.mean_s == 0.0


def test_summarize_percentiles():
    samples = [float(i) for i in range(1, 101)]
    summary = summarize(samples)
    assert summary.count == 100
    assert summary.mean_s == pytest.approx(50.5)
    assert summary.p50_s == 51.0
    assert summary.p99_s == 100.0
    assert summary.max_s == 100.0


def test_recorder_ignores_warmup():
    recorder = LatencyRecorder(warmup_until_s=1.0)
    recorder.record(0, Service.AGREED, submitted_at=0.5, delivered_at=0.9,
                    payload_size=100)
    assert recorder.summary().count == 0
    recorder.record(0, Service.AGREED, submitted_at=1.1, delivered_at=1.2,
                    payload_size=100)
    assert recorder.summary().count == 1
    assert recorder.delivered_bytes[0] == 100


def test_recorder_excludes_straddling_submissions():
    # Submitted before warmup, delivered after: bytes count, latency not.
    recorder = LatencyRecorder(warmup_until_s=1.0)
    recorder.record(0, Service.AGREED, submitted_at=0.9, delivered_at=1.1,
                    payload_size=100)
    assert recorder.summary().count == 0
    assert recorder.delivered_bytes[0] == 100


def test_recorder_per_service_split():
    recorder = LatencyRecorder()
    recorder.record(0, Service.AGREED, 0.0, 1.0, 10)
    recorder.record(0, Service.SAFE, 0.0, 3.0, 10)
    assert recorder.summary(Service.AGREED).mean_s == 1.0
    assert recorder.summary(Service.SAFE).mean_s == 3.0
    assert recorder.summary().count == 2


# ---------------------------------------------------------------------------
# Cluster runs: conservation and correctness inside the simulator
# ---------------------------------------------------------------------------

def test_all_nodes_deliver_everything():
    result = quick_point(ACCEL, 200)
    # min == max throughput across receivers means everyone saw the
    # same traffic.
    cluster_window = 0.08 - 0.03
    assert result.achieved_bps > 0
    assert not result.saturated
    assert result.switch_drops == 0


def test_total_order_inside_simulation():
    # Capture per-node delivery sequences via the callback and compare.
    delivered = {}

    cluster = SimCluster(4, GIGABIT, LIBRARY, ACCEL, seed=1)
    for pid, node in cluster.nodes.items():
        delivered[pid] = []
        node._deliver_callback = (
            lambda p, m, pid=pid: delivered[pid].append(m.seq)
        )
    cluster.inject_at_rate(200e6, duration_s=0.05)
    cluster.run(0.05, warmup_s=0.0, offered_bps=200e6)
    lengths = {p: len(s) for p, s in delivered.items()}
    assert min(lengths.values()) > 50
    shortest = min(lengths.values())
    base = delivered[0][:shortest]
    for pid in (1, 2, 3):
        assert delivered[pid][:shortest] == base


def test_achieved_tracks_offered_below_saturation():
    for mbps in (100, 400):
        result = quick_point(ACCEL, mbps)
        assert result.achieved_bps == pytest.approx(mbps * 1e6, rel=0.1)


def test_saturation_detected_beyond_capacity():
    result = quick_point(ORIG, 1200, profile=SPREAD, spec=GIGABIT)
    assert result.saturated
    assert result.achieved_bps < 1200e6 * 0.95


def test_latency_grows_with_load():
    low = quick_point(ORIG, 100, profile=SPREAD)
    high = quick_point(ORIG, 700, profile=SPREAD)
    assert high.latency.mean_s > low.latency.mean_s


def test_accelerated_beats_original_at_high_load_1g():
    orig = quick_point(ORIG, 800, profile=SPREAD, n_nodes=8)
    accel = quick_point(ACCEL, 800, profile=SPREAD, n_nodes=8)
    assert accel.latency.mean_s < orig.latency.mean_s


def test_token_rotates_when_idle():
    cluster = SimCluster(4, GIGABIT, LIBRARY, ACCEL)
    result = cluster.run(0.02, warmup_s=0.0)
    assert result.rounds_per_s > 1000  # the token spins without traffic


def test_safe_latency_higher_than_agreed():
    agreed = quick_point(ACCEL, 300, service=Service.AGREED)
    safe = quick_point(ACCEL, 300, service=Service.SAFE)
    assert safe.latency.mean_s > agreed.latency.mean_s


def test_spread_header_reduces_goodput_headroom():
    # Same offered load fits for everyone, but headers differ on the wire.
    lib = quick_point(ACCEL, 300, profile=LIBRARY)
    spread = quick_point(ACCEL, 300, profile=SPREAD)
    assert lib.achieved_bps == pytest.approx(spread.achieved_bps, rel=0.1)


def test_loss_recovery_in_simulation():
    loss = BernoulliLoss(0.01, seed=3, spare_token=True)
    result = quick_point(
        ACCEL, 200, loss=loss, duration_s=0.1, warmup_s=0.03,
    )
    assert loss.dropped > 0
    assert result.retransmissions > 0
    assert result.achieved_bps == pytest.approx(200e6, rel=0.15)


def test_token_loss_recovered_by_timer():
    from repro.net import Traffic

    dropped = {"n": 0}

    def drop_one_token(frame):
        if frame.traffic is Traffic.TOKEN and dropped["n"] == 0:
            dropped["n"] += 1
            return True
        return False

    config = ACCEL.evolve(token_retransmit_timeout_s=0.002)
    result = quick_point(config, 100, loss=drop_one_token,
                         duration_s=0.1, warmup_s=0.03)
    assert dropped["n"] == 1
    assert result.tokens_resent >= 1
    assert result.achieved_bps == pytest.approx(100e6, rel=0.15)


def test_injectors_cannot_start_twice():
    cluster = SimCluster(2, GIGABIT, LIBRARY, ACCEL)
    cluster.inject_at_rate(1e6, 0.01)
    with pytest.raises(RuntimeError):
        cluster.inject_at_rate(1e6, 0.01)


def test_zero_rate_is_valid():
    cluster = SimCluster(2, GIGABIT, LIBRARY, ACCEL)
    cluster.inject_at_rate(0.0, 0.01)
    result = cluster.run(0.01, warmup_s=0.0)
    assert result.achieved_bps == 0.0


# ---------------------------------------------------------------------------
# Figure-shape smoke checks (fast, loose; benchmarks assert the real thing)
# ---------------------------------------------------------------------------

def test_fig7_shape_low_throughput_safe_crossover():
    orig_low = quick_point(ORIG, 100, profile=SPREAD, spec=TEN_GIGABIT,
                           service=Service.SAFE, n_nodes=8)
    accel_low = quick_point(ACCEL, 100, profile=SPREAD, spec=TEN_GIGABIT,
                            service=Service.SAFE, n_nodes=8)
    # At 1% utilization the original's Safe latency is LOWER (the
    # accelerated aru lags a round).
    assert orig_low.latency.mean_s < accel_low.latency.mean_s

    orig_high = quick_point(ORIG, 800, profile=SPREAD, spec=TEN_GIGABIT,
                            service=Service.SAFE, n_nodes=8)
    accel_high = quick_point(ACCEL, 800, profile=SPREAD, spec=TEN_GIGABIT,
                             service=Service.SAFE, n_nodes=8)
    assert accel_high.latency.mean_s < orig_high.latency.mean_s


def test_acceleration_speeds_up_token_rotation():
    orig = quick_point(ORIG, 400, profile=DAEMON, n_nodes=8)
    accel = quick_point(ACCEL, 400, profile=DAEMON, n_nodes=8)
    assert accel.rounds_per_s > orig.rounds_per_s
