"""Membership chaos fuzzing: random fault schedules, full EVS checking.

Hypothesis drives random sequences of submits, crashes, partitions and
heals against the membership stack; after every schedule the network is
driven to convergence and every process's full event log must satisfy
every EVS axiom (tests/test_evs_semantics.py documents them).
"""

import random

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core import Service
from repro.evs import EVSChecker
from repro.evs.semantics import check_all
from repro.harness.evsnet import EVSNetwork
from repro.membership import MembershipTimeouts

#: Timeouts scaled for 50-process gathers under the harness's
#: one-control-message-per-step drain model (a gather window must fit
#: reading every peer's join with slack for commit traffic).
CHURN_TIMEOUTS = MembershipTimeouts(
    token_loss_ticks=200, gather_ticks=160,
    commit_ticks=320, probe_interval_ticks=80,
)


def live(net):
    return [pid for pid in net.pids if pid not in net.crashed]


def random_partition(rng, pids):
    """Split pids into 1-3 random non-empty groups."""
    groups = [[] for _i in range(rng.randint(1, min(3, len(pids))))]
    for pid in pids:
        rng.choice(groups).append(pid)
    return [set(g) for g in groups if g]


import pytest


@pytest.mark.parametrize("seed,n,operations",
                         [(239, 5, 4), (33, 5, 4), (208, 5, 5)])
def test_pinned_livelock_schedules_converge(seed, n, operations):
    """Regression: schedules that once livelocked the membership race.

    Three distinct mechanisms, each pinned by one schedule: rival
    commit attempts colliding in deterministic lockstep (fixed by
    per-attempt timer jitter and the silence-strike rule), an
    event-amplified join storm whose backlog outgrew the drain rate
    (fixed by rate-limiting join broadcasts), and a stale fail-gossip
    echo chamber whose view flips reset the consensus clock forever
    (fixed by restarting the clock only on proc-set growth).
    """
    run_schedule(seed, n, operations)


@pytest.mark.parametrize("seed", [2, 3, 6])
def test_pinned_churn_meltdown_schedules_converge(seed):
    """Regression: 50-process churn schedules that melted the control
    plane down.

    With the join cooldown at one tick per member, the aggregate join
    arrival rate at each process (peer cooldown broadcasts plus
    gather-timeout rebroadcasts) exceeded the one-message-per-step
    drain capacity at n=50: the control backlog diverged, every
    process argued with an ever-staler past, silence strikes failed
    live members, and membership never converged.  Fixed by widening
    the cooldown to two ticks per member, which keeps the steady-state
    arrival rate strictly below the drain rate.
    """
    run_churn_schedule(seed, n=50, operations=10)


@pytest.mark.xfail(
    strict=True,
    reason="open bug: VS violation in transitional delivery (ROADMAP #6)",
)
def test_pinned_vs_violation_partition_during_transitional():
    """Known-open bug: a hypothesis-found schedule where processes 1
    and 3 move together from regular configuration (1,2,3) to
    transitional (1,3) yet deliver different message sets — a virtual
    synchrony violation in the membership/recovery path.  Pinned here
    (xfail) so the failing schedule is deterministic instead of a
    random hypothesis draw; flip to a plain test when the
    transitional-configuration delivery cut is fixed.
    """
    run_schedule(5309, 3, 2)


def test_restart_cannot_reuse_ring_id():
    """Regression: an amnesiac restart re-minted an old ring id.

    A process isolated from boot installs singleton ring (seq 1, rep
    pid) and delivers a message under it; after a crash and restart
    its ring-sequence counter restarted from zero, so the new
    incarnation installed the SAME ring id and delivered different
    messages under it — two distinct configurations sharing one
    identity, which the checker flags as a virtual synchrony
    violation.  Fixed by carrying the ring epoch across restarts
    (Totem's stable-storage ring sequence number).
    """
    net = EVSNetwork(range(3))
    net.set_partition([0, 1], [2])
    net.run_until_converged()
    inc0_ring = net.processes[2].ring.ring_id
    net.submit(2, "inc0-msg")
    net.run_quiet(200)
    net.crash(2)
    net.run_quiet(20)
    net.restart(2)
    net.set_partition([0, 1], [2])  # keep the reboot isolated too
    net.run_until_converged()
    assert net.processes[2].ring.ring_id != inc0_ring
    net.submit(2, "inc1-msg")
    net.run_quiet(200)
    net.heal()
    net.run_until_converged()
    net.run_quiet(100)
    checker = EVSChecker()
    checker.check_logs(net.logs())
    checker.assert_ok()


def run_churn_schedule(seed, n, operations):
    """Sustained crash/restart/partition churn at scale, EVS-checked
    across every incarnation's log."""
    rng = random.Random(seed)
    net = EVSNetwork(range(n), timeouts=CHURN_TIMEOUTS)
    net.run_until_converged(max_steps=60_000)
    counter = 0
    for _op in range(operations):
        alive = sorted(set(net.pids) - net.crashed)
        for pid in rng.sample(alive, min(3, len(alive))):
            net.submit(pid, "m%d.%d" % (pid, counter))
            counter += 1
        op = rng.choice(
            ["crash", "restart", "crash", "restart", "partition", "heal"]
        )
        if op == "crash" and len(alive) > 2:
            net.crash(rng.choice(alive))
        elif op == "restart" and net.crashed:
            net.restart(rng.choice(sorted(net.crashed)))
        elif op == "partition" and len(alive) > 3:
            cut = rng.randint(1, len(alive) - 1)
            shuffled = alive[:]
            rng.shuffle(shuffled)
            net.set_partition(shuffled[:cut], shuffled[cut:])
        elif op == "heal":
            net.heal()
        net.run_quiet(rng.randint(20, 300))
    net.heal()
    for pid in sorted(net.crashed):
        net.restart(pid)
    net.run_until_converged(max_steps=120_000)
    net.run_quiet(500)
    checker = EVSChecker()
    checker.check_logs(net.logs())
    checker.assert_ok()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=5),
    operations=st.integers(min_value=1, max_value=5),
)
def test_random_fault_schedules_preserve_evs(seed, n, operations):
    run_schedule(seed, n, operations)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=500))
def test_random_churn_schedules_preserve_evs(seed):
    """Churn (crash AND restart) at a size where join flood pressure
    is real, with multi-incarnation EVS checking."""
    run_churn_schedule(seed, n=20, operations=6)


def run_schedule(seed, n, operations):
    rng = random.Random(seed)
    pids = list(range(1, n + 1))
    net = EVSNetwork(pids)
    net.run_until_converged(max_steps=40_000)
    submit_count = 0

    for _op in range(operations):
        choice = rng.random()
        alive = live(net)
        if choice < 0.35:
            for _i in range(rng.randint(1, 6)):
                pid = rng.choice(alive)
                service = Service.SAFE if rng.random() < 0.4 else Service.AGREED
                net.submit(pid, ("fuzz", submit_count), service)
                submit_count += 1
            net.run_quiet(rng.randint(5, 80))
        elif choice < 0.55 and len(alive) > 1:
            net.crash(rng.choice(alive))
            net.run_quiet(rng.randint(0, 50))
        elif choice < 0.8:
            net.set_partition(*random_partition(rng, live(net)))
            net.run_quiet(rng.randint(0, 80))
        else:
            net.heal()
            net.run_quiet(rng.randint(0, 80))

    # Settle: heal what remains and converge, then drain deliveries.
    net.heal()
    if live(net):
        net.run_until_converged(max_steps=60_000)
        net.run_quiet(400)

    logs = {
        pid: net.processes[pid].app_log
        for pid in live(net)
    }
    if logs:
        check_all(logs)
        # Every survivor ends on the same ring.
        rings = {net.processes[pid].ring.ring_id for pid in live(net)}
        assert len(rings) == 1
