"""Membership chaos fuzzing: random fault schedules, full EVS checking.

Hypothesis drives random sequences of submits, crashes, partitions and
heals against the membership stack; after every schedule the network is
driven to convergence and every process's full event log must satisfy
every EVS axiom (tests/test_evs_semantics.py documents them).
"""

import random

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core import Service
from repro.evs.semantics import check_all
from repro.harness.evsnet import EVSNetwork


def live(net):
    return [pid for pid in net.pids if pid not in net.crashed]


def random_partition(rng, pids):
    """Split pids into 1-3 random non-empty groups."""
    groups = [[] for _i in range(rng.randint(1, min(3, len(pids))))]
    for pid in pids:
        rng.choice(groups).append(pid)
    return [set(g) for g in groups if g]


import pytest


@pytest.mark.parametrize("seed,n,operations",
                         [(239, 5, 4), (33, 5, 4), (208, 5, 5)])
def test_pinned_livelock_schedules_converge(seed, n, operations):
    """Regression: schedules that once livelocked the membership race.

    Three distinct mechanisms, each pinned by one schedule: rival
    commit attempts colliding in deterministic lockstep (fixed by
    per-attempt timer jitter and the silence-strike rule), an
    event-amplified join storm whose backlog outgrew the drain rate
    (fixed by rate-limiting join broadcasts), and a stale fail-gossip
    echo chamber whose view flips reset the consensus clock forever
    (fixed by restarting the clock only on proc-set growth).
    """
    run_schedule(seed, n, operations)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=5),
    operations=st.integers(min_value=1, max_value=5),
)
def test_random_fault_schedules_preserve_evs(seed, n, operations):
    run_schedule(seed, n, operations)


def run_schedule(seed, n, operations):
    rng = random.Random(seed)
    pids = list(range(1, n + 1))
    net = EVSNetwork(pids)
    net.run_until_converged(max_steps=40_000)
    submit_count = 0

    for _op in range(operations):
        choice = rng.random()
        alive = live(net)
        if choice < 0.35:
            for _i in range(rng.randint(1, 6)):
                pid = rng.choice(alive)
                service = Service.SAFE if rng.random() < 0.4 else Service.AGREED
                net.submit(pid, ("fuzz", submit_count), service)
                submit_count += 1
            net.run_quiet(rng.randint(5, 80))
        elif choice < 0.55 and len(alive) > 1:
            net.crash(rng.choice(alive))
            net.run_quiet(rng.randint(0, 50))
        elif choice < 0.8:
            net.set_partition(*random_partition(rng, live(net)))
            net.run_quiet(rng.randint(0, 80))
        else:
            net.heal()
            net.run_quiet(rng.randint(0, 80))

    # Settle: heal what remains and converge, then drain deliveries.
    net.heal()
    if live(net):
        net.run_until_converged(max_steps=60_000)
        net.run_quiet(400)

    logs = {
        pid: net.processes[pid].app_log
        for pid in live(net)
    }
    if logs:
        check_all(logs)
        # Every survivor ends on the same ring.
        rings = {net.processes[pid].ring.ring_id for pid in live(net)}
        assert len(rings) == 1
