"""Lifecycle tracing: determinism, codec round-trips, and cross-checks.

Three layers:

* determinism — the same seeded sim run traced twice produces
  byte-identical ``.rtrace`` files (the trace is a pure function of the
  seed, like the event stream itself);
* codec properties — arbitrary ``TraceRecord`` streams survive the
  binary and JSONL flavors exactly (hypothesis);
* golden cross-check — ``analyze`` on a traced run must agree with the
  independent :class:`repro.sim.trace.RoundTracer` on token-round
  statistics, and its telescoping per-stage sums must reconcile with
  the end-to-end Agreed latency within the issue's 1% gate.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProtocolConfig
from repro.net import GIGABIT
from repro.obs.lifecycle import (
    STAGE_DELIVERED_AGREED,
    STAGE_DELIVERED_SAFE,
    STAGE_MULTICAST,
    STAGE_ORDERED,
    STAGE_ORIGINATED,
    STAGE_RECEIVED,
    STAGE_TOKEN_GRANTED,
    STAGE_TOKEN_HANDLED,
)
from repro.obs.report import analyze
from repro.sim import LIBRARY
from repro.sim.cluster import SimCluster
from repro.sim.trace import RoundTracer
from repro.wire.tracefmt import (
    CLOCK_SIM,
    TRACE_WORLD_SIM,
    TraceReader,
    TraceRecord,
    TraceWriter,
    load_trace,
    write_jsonl,
)

EXAMPLES = settings(
    max_examples=int(os.environ.get("REPRO_WIRE_EXAMPLES", "25")),
    deadline=None,
)


def _traced_run(seed=1, n_nodes=4, duration_s=0.01, rate_bps=200e6,
                round_tracer=False):
    """Small seeded run with a lifecycle tracer; warmup 0, packing off."""
    config = ProtocolConfig.accelerated(
        personal_window=4, accelerated_window=2
    )
    cluster = SimCluster(n_nodes, GIGABIT, LIBRARY, config, seed=seed)
    rounds = RoundTracer(cluster) if round_tracer else None
    tracer = cluster.attach_tracer(label="test seed=%d" % seed)
    cluster.inject_at_rate(rate_bps, duration_s)
    result = cluster.run(duration_s, 0.0, offered_bps=rate_bps)
    return cluster, result, tracer, rounds


# -- determinism -------------------------------------------------------------

def test_same_seed_gives_byte_identical_trace(tmp_path):
    _, _, first, _ = _traced_run(seed=3)
    _, _, second, _ = _traced_run(seed=3)
    assert len(first) == len(second) > 100
    path_a = first.write(str(tmp_path / "a.rtrace"))
    path_b = second.write(str(tmp_path / "b.rtrace"))
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        assert fa.read() == fb.read()


def test_different_seed_gives_different_trace():
    _, _, first, _ = _traced_run(seed=3)
    _, _, second, _ = _traced_run(seed=4)
    assert first.to_records() != second.to_records()


def test_tracer_does_not_perturb_the_run():
    config = ProtocolConfig.accelerated(
        personal_window=4, accelerated_window=2
    )

    def run(traced):
        cluster = SimCluster(4, GIGABIT, LIBRARY, config, seed=5)
        if traced:
            cluster.attach_tracer()
        cluster.inject_at_rate(200e6, 0.01)
        result = cluster.run(0.01, 0.0, offered_bps=200e6)
        return cluster.sim.event_count, result.latency.count

    assert run(traced=False) == run(traced=True)


# -- codec round-trips -------------------------------------------------------

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        t=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    allow_infinity=False),
        stage=st.integers(0, 255),
        node=st.integers(-1, 2 ** 31 - 1),
        origin=st.integers(-1, 2 ** 31 - 1),
        seq=st.integers(0, 2 ** 32 - 1),
        aux=st.integers(0, 2 ** 32 - 1),
    ),
    max_size=50,
)


@EXAMPLES
@given(records=records_strategy, label=st.text(max_size=40))
def test_binary_trace_roundtrip(tmp_path_factory, records, label):
    path = str(tmp_path_factory.mktemp("rt") / "t.rtrace")
    with TraceWriter(path, TRACE_WORLD_SIM, CLOCK_SIM, label) as writer:
        for record in records:
            writer.write_record(record)
    reader = TraceReader(path)
    assert list(reader) == records
    assert reader.label == label
    assert not reader.truncated_tail


@EXAMPLES
@given(records=records_strategy, label=st.text(max_size=40))
def test_jsonl_trace_roundtrip(tmp_path_factory, records, label):
    path = str(tmp_path_factory.mktemp("rt") / "t.jsonl")
    with open(path, "w") as handle:
        write_jsonl(handle, records, TRACE_WORLD_SIM, CLOCK_SIM, label)
    loaded = load_trace(path)
    assert loaded.records == records
    assert loaded.label == label
    assert loaded.world_name == "sim"


def test_binary_and_jsonl_flavors_carry_identical_records(tmp_path):
    _, _, tracer, _ = _traced_run()
    binary = tracer.write(str(tmp_path / "run.rtrace"))
    jsonl = tracer.write_jsonl(str(tmp_path / "run.jsonl"))
    a = load_trace(binary)
    b = load_trace(jsonl)
    assert a.records == b.records == tracer.to_records()
    assert a.label == b.label


def test_truncated_tail_is_detected_not_fatal(tmp_path):
    path = str(tmp_path / "t.rtrace")
    with TraceWriter(path, TRACE_WORLD_SIM, CLOCK_SIM) as writer:
        writer.write(1.0, STAGE_ORIGINATED, 0, 0, 1, 0)
        writer.write(2.0, STAGE_ORDERED, 0, 0, 1, 0)
    with open(path, "ab") as handle:
        handle.write(b"\x00" * 7)  # a crashed writer's partial record
    reader = TraceReader(path)
    records = list(reader)
    assert len(records) == 2
    assert reader.truncated_tail
    assert load_trace(path).truncated_tail


# -- golden cross-check ------------------------------------------------------

def test_trace_analysis_cross_checks_round_tracer_and_latency():
    _, result, tracer, rounds = _traced_run(
        seed=1, duration_s=0.02, round_tracer=True
    )
    report = analyze(load_from_tracer(tracer))

    # Every delivery chain must be complete and telescope exactly.
    recon = report["reconciliation"]
    assert recon["chains"] == result.latency.count > 50
    assert recon["error_frac"] < 0.01  # the issue's acceptance gate
    assert recon["error_frac"] < 1e-9  # in the sim it is exact

    # End-to-end agreed latency from the trace == the latency recorder.
    agreed = report["end_to_end"]["agreed"]
    assert agreed["count"] == result.latency.count
    assert agreed["mean_s"] == pytest.approx(result.latency.mean_s, rel=1e-9)

    # Token-round statistics match the independent RoundTracer, which
    # observes through the event hub rather than the trace callbacks.
    trace_rounds = report["token_rounds"]
    assert trace_rounds["mean_round_s"] == pytest.approx(
        rounds.mean_round_s(), rel=1e-9
    )
    assert trace_rounds["overlap_fraction"] == pytest.approx(
        rounds.overlap_fraction(), rel=1e-9
    )
    assert trace_rounds["handlings"] == sum(
        len(times) for times in rounds.handle_times.values()
    )
    assert trace_rounds["new_messages"] == sum(rounds.new_messages.values())
    assert trace_rounds["post_token_sends"] == sum(
        rounds.post_token_sends.values()
    )


def test_stage_counts_are_consistent():
    cluster, result, tracer, _ = _traced_run()
    counts = {}
    for record in tracer.to_records():
        counts[record.stage] = counts.get(record.stage, 0) + 1

    def stat(name):
        return sum(
            getattr(node.participant.stats, name)
            for node in cluster.nodes.values()
        )

    # Participant-side stages stamp at the exact point the matching
    # stats counter increments, so these are equalities.
    initiated = stat("messages_initiated")
    assert counts[STAGE_ORIGINATED] == initiated > 0
    assert counts[STAGE_TOKEN_GRANTED] == initiated
    assert counts[STAGE_RECEIVED] == stat("data_received")
    assert counts[STAGE_TOKEN_HANDLED] == stat("tokens_handled")

    # The delivery hook packs the ordered/delivered pair in one call,
    # and fires at the same instant the latency recorder samples.
    assert counts[STAGE_ORDERED] == (
        counts.get(STAGE_DELIVERED_AGREED, 0)
        + counts.get(STAGE_DELIVERED_SAFE, 0)
    )
    assert counts[STAGE_ORDERED] == result.latency.count

    # Driver-side stamps trail the participant stats by whatever was
    # still in flight when the sim clock ran out: bounded by one token
    # handling's send window per node and one delivery batch per node.
    slack = 4 * len(cluster.ring)
    retransmissions = stat("retransmissions_sent")
    assert 0 <= initiated + retransmissions - counts[STAGE_MULTICAST] <= slack
    assert 0 <= stat("delivered") - counts[STAGE_ORDERED] <= slack


def test_emulation_tracer_over_real_sockets(tmp_path):
    from repro.core import Service
    from repro.emulation import EmulatedRing

    ring = EmulatedRing(3)
    tracer = ring.attach_tracer(label="emu trace test")
    with ring:
        for pid in range(3):
            for i in range(5):
                ring.submit(pid, (pid, i), Service.AGREED)
        ring.collect_deliveries(expected_per_node=15, timeout_s=20.0)
    records = tracer.to_records()
    stages = {record.stage for record in records}
    assert STAGE_TOKEN_GRANTED in stages
    assert STAGE_MULTICAST in stages
    assert STAGE_RECEIVED in stages
    assert STAGE_ORDERED in stages
    assert STAGE_DELIVERED_AGREED in stages
    assert STAGE_TOKEN_HANDLED in stages
    # Wall-clock timestamps are epoch-relative and sane (threads stamp
    # concurrently, so the stream is not globally sorted — but every
    # stamp must land inside the run's wall-clock span).
    assert all(0.0 <= record.t < 60.0 for record in records)
    # Each delivery packs its ordered/delivered pair atomically, and
    # every node delivered all 15 messages.
    ordered = [r for r in records if r.stage == STAGE_ORDERED]
    delivered = [r for r in records if r.stage == STAGE_DELIVERED_AGREED]
    assert len(ordered) == len(delivered) >= 45
    # The analyzer accepts the wall-clock flavor end to end.
    path = tracer.write(str(tmp_path / "emu.rtrace"))
    report = analyze(load_trace(path))
    assert report["world"] == "emulation"
    assert report["clock"] == "wall"
    assert report["deliveries"] >= 45


def load_from_tracer(tracer):
    """An in-memory LoadedTrace (no file round-trip needed)."""
    from repro.wire.tracefmt import LoadedTrace

    return LoadedTrace(
        world_name="sim", clock_name="sim", label=tracer.label,
        records=tracer.to_records(), truncated_tail=False,
    )
