"""Tests for the Spread-like daemon/group layer."""

import pytest

from repro.core import Service
from repro.spreadlike import (
    ClientId,
    GroupMessage,
    GroupTable,
    MembershipNotice,
    SpreadCluster,
    SpreadError,
)
from repro.spreadlike.protocol import validate_group_name


# ---------------------------------------------------------------------------
# GroupTable (replicated state machine)
# ---------------------------------------------------------------------------

def cid(daemon, name):
    return ClientId(daemon, name)


def test_join_leave_roundtrip():
    table = GroupTable()
    assert table.join("g", cid(0, "a"))
    assert table.is_member("g", cid(0, "a"))
    assert table.leave("g", cid(0, "a"))
    assert not table.is_member("g", cid(0, "a"))
    assert table.groups() == ()


def test_join_is_idempotent():
    table = GroupTable()
    assert table.join("g", cid(0, "a"))
    assert not table.join("g", cid(0, "a"))
    assert len(table.members("g")) == 1


def test_members_keep_join_order():
    table = GroupTable()
    table.join("g", cid(0, "b"))
    table.join("g", cid(1, "a"))
    assert table.members("g") == (cid(0, "b"), cid(1, "a"))


def test_disconnect_leaves_all_groups():
    table = GroupTable()
    table.join("g1", cid(0, "a"))
    table.join("g2", cid(0, "a"))
    table.join("g2", cid(1, "b"))
    assert table.disconnect(cid(0, "a")) == ("g1", "g2")
    assert table.members("g2") == (cid(1, "b"),)


def test_groups_of_client():
    table = GroupTable()
    table.join("beta", cid(0, "a"))
    table.join("alpha", cid(0, "a"))
    assert table.groups_of(cid(0, "a")) == ("alpha", "beta")


def test_group_name_validation():
    validate_group_name("fine-name")
    with pytest.raises(SpreadError):
        validate_group_name("")
    with pytest.raises(SpreadError):
        validate_group_name("has space")
    with pytest.raises(SpreadError):
        validate_group_name("x" * 100)


# ---------------------------------------------------------------------------
# Cluster behaviour
# ---------------------------------------------------------------------------

def test_basic_group_multicast():
    cluster = SpreadCluster(3)
    alice = cluster.client("alice", daemon=0)
    bob = cluster.client("bob", daemon=1)
    alice.join("chat")
    bob.join("chat")
    cluster.flush()
    alice.receive()  # clear membership notices
    bob.receive()
    alice.multicast("chat", "hello")
    cluster.flush()
    got = bob.receive_messages()
    assert len(got) == 1 and got[0].payload == "hello"
    assert got[0].sender == alice.client_id
    # Sender is a member too: self-delivery.
    mine = alice.receive_messages()
    assert len(mine) == 1 and mine[0].payload == "hello"


def test_open_group_semantics_sender_not_member():
    cluster = SpreadCluster(2)
    member = cluster.client("member", daemon=0)
    outsider = cluster.client("outsider", daemon=1)
    member.join("g")
    cluster.flush()
    outsider.multicast("g", "from-outside")
    cluster.flush()
    assert [m.payload for m in member.receive_messages()] == ["from-outside"]
    assert outsider.receive_messages() == []  # not a member: no delivery


def test_non_members_receive_nothing():
    cluster = SpreadCluster(2)
    inside = cluster.client("inside", daemon=0)
    outside = cluster.client("outside", daemon=1)
    inside.join("g")
    cluster.flush()
    inside.multicast("g", "private")
    cluster.flush()
    assert outside.receive_messages() == []


def test_total_order_across_senders_and_daemons():
    cluster = SpreadCluster(4)
    clients = [cluster.client("c%d" % i, daemon=i) for i in range(4)]
    for client in clients:
        client.join("g")
    cluster.flush()
    for client in clients:
        client.receive()
    for i, client in enumerate(clients):
        for k in range(5):
            client.multicast("g", (i, k))
    cluster.flush()
    streams = [[m.payload for m in c.receive_messages()] for c in clients]
    assert all(len(s) == 20 for s in streams)
    assert all(s == streams[0] for s in streams)


def test_multigroup_multicast_delivered_once():
    cluster = SpreadCluster(2)
    both = cluster.client("both", daemon=0)
    both.join("g1")
    both.join("g2")
    sender = cluster.client("sender", daemon=1)
    cluster.flush()
    both.receive()
    sender.multicast(["g1", "g2"], "multi")
    cluster.flush()
    got = both.receive_messages()
    assert len(got) == 1  # member of both target groups, delivered once
    assert got[0].groups == ("g1", "g2")


def test_multigroup_ordering_across_groups():
    # Ordering guarantees hold ACROSS groups: two clients each in one of
    # the two groups see the cross-posted messages in the same order.
    cluster = SpreadCluster(3)
    g1_only = cluster.client("g1only", daemon=0)
    g2_only = cluster.client("g2only", daemon=1)
    sender = cluster.client("sender", daemon=2)
    g1_only.join("g1")
    g2_only.join("g2")
    cluster.flush()
    for i in range(10):
        sender.multicast(["g1", "g2"], ("both", i))
    cluster.flush()
    s1 = [m.payload for m in g1_only.receive_messages()]
    s2 = [m.payload for m in g2_only.receive_messages()]
    assert s1 == s2 == [("both", i) for i in range(10)]


def test_membership_notices_ordered_with_messages():
    cluster = SpreadCluster(2)
    watcher = cluster.client("watcher", daemon=0)
    watcher.join("g")
    cluster.flush()
    watcher.receive()
    # A message, then a join, then a message: the notice must appear
    # between the two messages in watcher's stream.
    outsider = cluster.client("newcomer", daemon=1)
    watcher.multicast("g", "before")
    cluster.flush()
    outsider.join("g")
    cluster.flush()
    watcher.multicast("g", "after")
    cluster.flush()
    events = watcher.receive()
    kinds = [
        e.payload if isinstance(e, GroupMessage) else ("join", tuple(e.joined))
        for e in events
    ]
    assert kinds == ["before", ("join", (outsider.client_id,)), "after"]


def test_membership_notice_contents():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=1)
    a.join("g")
    cluster.flush()
    b.join("g")
    cluster.flush()
    notices = [e for e in a.receive() if isinstance(e, MembershipNotice)]
    assert notices[-1].members == (a.client_id, b.client_id)
    assert notices[-1].joined == (b.client_id,)


def test_leave_stops_delivery():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=1)
    a.join("g")
    b.join("g")
    cluster.flush()
    a.leave("g")
    cluster.flush()
    b.multicast("g", "after-leave")
    cluster.flush()
    assert a.receive_messages() == []


def test_leaver_gets_final_notice():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    a.join("g")
    cluster.flush()
    a.receive()
    a.leave("g")
    cluster.flush()
    notices = [e for e in a.receive() if isinstance(e, MembershipNotice)]
    assert notices and notices[-1].left == (a.client_id,)
    assert a.client_id not in notices[-1].members


def test_disconnect_cleans_up_everywhere():
    cluster = SpreadCluster(2)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=1)
    a.join("g1")
    a.join("g2")
    b.join("g1")
    cluster.flush()
    a.disconnect()
    cluster.flush()
    assert cluster.group_view(0, "g1") == (b.client_id,)
    assert cluster.group_view(1, "g1") == (b.client_id,)
    assert cluster.group_view(0, "g2") == ()
    with pytest.raises(SpreadError):
        a.multicast("g1", "zombie")


def test_duplicate_client_name_rejected():
    cluster = SpreadCluster(1)
    cluster.client("dup", daemon=0)
    with pytest.raises(SpreadError):
        cluster.client("dup", daemon=0)


def test_same_name_different_daemons_ok():
    cluster = SpreadCluster(2)
    a0 = cluster.client("same", daemon=0)
    a1 = cluster.client("same", daemon=1)
    assert a0.client_id != a1.client_id


def test_group_tables_identical_across_daemons():
    cluster = SpreadCluster(4)
    clients = [cluster.client("c%d" % i, daemon=i % 4) for i in range(8)]
    for i, client in enumerate(clients):
        client.join("g%d" % (i % 3))
    cluster.flush()
    snapshots = [cluster.daemons[d].groups.snapshot() for d in range(4)]
    assert all(s == snapshots[0] for s in snapshots)


def test_safe_service_group_message():
    cluster = SpreadCluster(3)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=2)
    a.join("g")
    b.join("g")
    cluster.flush()
    b.receive()
    a.multicast("g", "stable", service=Service.SAFE)
    cluster.flush()
    got = b.receive_messages()
    assert [m.payload for m in got] == ["stable"]
    assert got[0].service is Service.SAFE
