"""Membership over the simulated network: reconfiguration in real
(simulated) time."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.membership import MembershipTimeouts, State
from repro.net import GIGABIT
from repro.sim import LIBRARY, SimEVSCluster


def make_cluster(n=4):
    return SimEVSCluster(
        n, GIGABIT, LIBRARY,
        ProtocolConfig.accelerated(personal_window=10, accelerated_window=8),
        MembershipTimeouts(token_loss_ticks=30, gather_ticks=20,
                           commit_ticks=40, probe_interval_ticks=15),
    )


def test_cold_start_converges_quickly():
    cluster = make_cluster(4)
    when = cluster.run_until_converged(timeout_s=2.0)
    assert when < 1.0
    members = {tuple(n.process.ring.members) for n in cluster.nodes.values()}
    assert members == {(0, 1, 2, 3)}


def test_ordering_runs_over_membership_stack():
    cluster = make_cluster(4)
    cluster.run_until_converged(timeout_s=2.0)
    for pid, node in cluster.nodes.items():
        for i in range(10):
            node.submit((pid, i),
                        Service.SAFE if i % 3 == 0 else Service.AGREED)
    cluster.run_for(0.5)
    logs = {
        pid: node.delivered_payloads()
        for pid, node in cluster.nodes.items()
    }
    assert len(logs[0]) == 40
    assert logs[0] == logs[1] == logs[2] == logs[3]


def test_crash_detected_and_reconfigured_in_time():
    cluster = make_cluster(4)
    cluster.run_until_converged(timeout_s=2.0)
    crash_at = cluster.sim.now
    cluster.nodes[2].crash()
    when = cluster.run_until_converged(timeout_s=3.0)
    # Reconfiguration completes within a small multiple of the
    # detection timeout (30 ticks x 1 ms) + gather timeout.
    assert when - crash_at < 1.0
    for node in cluster.live_nodes():
        assert tuple(node.process.ring.members) == (0, 1, 3)


def test_service_resumes_after_crash():
    cluster = make_cluster(3)
    cluster.run_until_converged(timeout_s=2.0)
    cluster.nodes[0].crash()  # the representative, no less
    cluster.run_until_converged(timeout_s=3.0)
    cluster.nodes[1].submit("recovered", Service.SAFE)
    cluster.run_for(0.5)
    for node in cluster.live_nodes():
        assert "recovered" in node.delivered_payloads()


def test_in_flight_messages_survive_crash():
    cluster = make_cluster(4)
    cluster.run_until_converged(timeout_s=2.0)
    for pid, node in cluster.nodes.items():
        for i in range(20):
            node.submit((pid, i))
    # Crash almost immediately: most messages are still in flight.
    cluster.run_for(0.001)
    cluster.nodes[3].crash()
    cluster.run_until_converged(timeout_s=3.0)
    cluster.run_for(0.5)
    survivor_logs = [n.delivered_payloads() for n in cluster.live_nodes()]
    assert survivor_logs[0] == survivor_logs[1] == survivor_logs[2]
    # Survivors' own messages all delivered (EVS self-delivery).
    for pid in (0, 1, 2):
        for i in range(20):
            assert (pid, i) in survivor_logs[0]
