"""Tests for the dynamic Spread cluster (daemons over membership)."""

import pytest

from repro.core import Service
from repro.spreadlike import DynamicSpreadCluster, MembershipNotice


def flushed(cluster, steps=400):
    cluster.flush(steps)
    return cluster


def test_basic_messaging_over_membership_stack():
    cluster = DynamicSpreadCluster(3)
    a = cluster.client("a", daemon=0)
    b = cluster.client("b", daemon=2)
    a.join("g")
    b.join("g")
    cluster.flush()
    a.receive()
    b.receive()
    a.multicast("g", "over-evs")
    cluster.flush()
    assert [m.payload for m in b.receive_messages()] == ["over-evs"]


def test_group_views_consistent_across_daemons():
    cluster = DynamicSpreadCluster(4)
    clients = [cluster.client("c%d" % i, daemon=i) for i in range(4)]
    for client in clients:
        client.join("shared")
    cluster.flush()
    views = [cluster.group_view(d, "shared") for d in range(4)]
    assert all(v == views[0] for v in views)
    assert len(views[0]) == 4


def test_daemon_crash_removes_its_clients_from_groups():
    cluster = DynamicSpreadCluster(3)
    a = cluster.client("a", daemon=0)
    doomed = cluster.client("doomed", daemon=1)
    a.join("g")
    doomed.join("g")
    cluster.flush()
    assert len(cluster.group_view(0, "g")) == 2

    cluster.crash_daemon(1)
    cluster.flush()
    survivors_view = cluster.group_view(0, "g")
    assert survivors_view == (a.client_id,)
    view_2 = cluster.group_view(2, "g")
    assert view_2 == survivors_view


def test_members_notified_when_daemon_dies():
    cluster = DynamicSpreadCluster(3)
    a = cluster.client("a", daemon=0)
    doomed = cluster.client("doomed", daemon=1)
    a.join("g")
    doomed.join("g")
    cluster.flush()
    a.receive()
    cluster.crash_daemon(1)
    cluster.flush()
    notices = [e for e in a.receive() if isinstance(e, MembershipNotice)]
    assert notices
    assert doomed.client_id in notices[-1].left
    assert notices[-1].members == (a.client_id,)


def test_messaging_continues_after_crash():
    cluster = DynamicSpreadCluster(3)
    a = cluster.client("a", daemon=0)
    c = cluster.client("c", daemon=2)
    a.join("g")
    c.join("g")
    cluster.flush()
    cluster.crash_daemon(1)
    cluster.flush()
    a.receive()
    c.receive()
    a.multicast("g", "still-alive", service=Service.SAFE)
    cluster.flush()
    assert [m.payload for m in c.receive_messages()] == ["still-alive"]


def test_surviving_daemons_agree_after_crash():
    cluster = DynamicSpreadCluster(4)
    clients = [cluster.client("c%d" % i, daemon=i) for i in range(4)]
    for client in clients:
        client.join("g")
    cluster.flush()
    cluster.crash_daemon(3)
    cluster.flush()
    views = [cluster.group_view(d, "g") for d in (0, 1, 2)]
    assert all(v == views[0] for v in views)
    assert {c.daemon for c in views[0]} == {0, 1, 2}
