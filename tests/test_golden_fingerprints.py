"""Golden fingerprints: the hot-path optimizations must not move a bit.

Each scenario runs a small canonical simulation and folds *everything
observable* into one SHA-256 — every latency sample, every per-node
protocol counter, every switch/NIC drop counter, the exact kernel event
count and final simulated time.  The expected digests were computed
before the zero-copy/coalescing/kernel rewrites landed; if any of those
changes alters a single float anywhere in a run, the digest moves and
this test names the scenario that diverged.

This is the same gate PR 1 used for the first kernel fast-path: the
optimizations are allowed to make the simulator *faster*, never
*different*.  When a deliberate semantic change lands (new default, new
event source), recompute the digests by calling each scenario builder in
``SCENARIOS`` and pasting the new values, and justify the diff in the
commit message.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT, TEN_GIGABIT
from repro.sim import DAEMON, LIBRARY, SPREAD
from repro.sim.cluster import SimCluster


def _digest_cluster(cluster: SimCluster) -> str:
    """Deterministic digest of one finished run's full observable state."""
    h = hashlib.sha256()
    emit = h.update

    def line(*parts) -> None:
        emit(" ".join(repr(p) for p in parts).encode("ascii"))
        emit(b"\n")

    line("now", cluster.sim.now)
    line("events", cluster.sim.event_count)
    line("switch", cluster.switch.frames_received,
         cluster.switch.drops_partition, cluster.switch.drops_fault)
    for host_id in cluster.switch.host_ids:
        port = cluster.switch.port(host_id)
        line("port", host_id, port.frames_forwarded, port.bytes_forwarded,
             port.drops_overflow, port.drops_injected, port.max_queue_bytes)
    for pid in sorted(cluster.nodes):
        node = cluster.nodes[pid]
        s = node.participant.stats
        line("node", pid, s.tokens_handled, s.duplicate_tokens,
             s.messages_initiated, s.messages_sent_pre_token,
             s.messages_sent_post_token, s.retransmissions_sent,
             s.retransmissions_requested, s.data_received,
             s.data_duplicates, s.delivered, s.discarded,
             node.backlog, node.participant.local_aru,
             node.participant.delivered_upto, node.socket_drops,
             node.tokens_resent, node.nic.drops_overflow)
    recorder = cluster.recorder
    for node_id in sorted(recorder.delivered_bytes):
        line("delivered", node_id, recorder.delivered_bytes[node_id],
             recorder.delivered_messages[node_id])
    for service in sorted(recorder._samples, key=lambda s: s.value):
        samples = recorder._samples[service]
        line("samples", service.value, len(samples))
        for sample in samples:
            line("s", sample)
    return h.hexdigest()


def _run(config, profile, spec, payload_size, service, offered_bps,
         duration_s=0.06, warmup_s=0.02, seed=7) -> str:
    cluster = SimCluster(
        8, spec, profile, config,
        payload_size=payload_size, service=service, seed=seed,
    )
    cluster.inject_at_rate(offered_bps, duration_s)
    cluster.run(duration_s, warmup_s, offered_bps=offered_bps)
    return _digest_cluster(cluster)


#: scenario name -> (builder, expected SHA-256).
SCENARIOS = {
    "accelerated_agreed_1g": (
        lambda: _run(
            ProtocolConfig.accelerated(personal_window=15, accelerated_window=10),
            SPREAD, GIGABIT, 1350, Service.AGREED, 400e6,
        ),
        "c4e3479e51b639cee31bf6bb060c79016c24ec04b7834f68897fb472546c627f",
    ),
    "original_safe_1g": (
        lambda: _run(
            ProtocolConfig.original_ring(personal_window=15),
            DAEMON, GIGABIT, 1350, Service.SAFE, 250e6,
        ),
        "1e370bfba2d5f83de5bb5a41b7fc8f7f60df45a2e09a6004ba27145fac8450dd",
    ),
    "accelerated_packed_small_10g": (
        lambda: _run(
            ProtocolConfig.accelerated(
                personal_window=20, accelerated_window=12, pack_messages=True,
            ),
            LIBRARY, TEN_GIGABIT, 200, Service.AGREED, 600e6,
        ),
        "d46a904afa8f4cf886d463446b73096590dbfcffeb1cb00f009c5dbe845096ad",
    ),
    "accelerated_large_payload_10g": (
        lambda: _run(
            ProtocolConfig.accelerated(personal_window=10, accelerated_window=6),
            LIBRARY, TEN_GIGABIT, 8850, Service.AGREED, 1500e6,
        ),
        "33ea9ffff4b53f14b9d14f30b996f228788bedfb356e2454ed8e4b4d5e8274c8",
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_fingerprint(name):
    build, expected = SCENARIOS[name]
    digest = build()
    assert digest == expected, (
        "scenario %r fingerprint changed: got %s — a hot-path change "
        "altered observable simulation results" % (name, digest)
    )
