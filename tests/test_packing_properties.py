"""Property-based tests for small-message packing."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LoopbackRing, ProtocolConfig, Service
from repro.core import ITEM_HEADER_BYTES, PackedPayload, pack_next
from repro.core.participant import _PendingMessage


pending_items = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3000),   # payload size
        st.booleans(),                              # safe?
    ),
    min_size=1,
    max_size=80,
)


@given(pending_items, st.integers(min_value=100, max_value=2000))
@settings(max_examples=200, deadline=None)
def test_packets_respect_budget_and_preserve_order(items, budget):
    queue = deque(
        _PendingMessage(("p", index), Service.SAFE if safe else Service.AGREED,
                        size, None)
        for index, (size, safe) in enumerate(items)
    )
    unpacked = []
    while queue:
        packed, service, size, _earliest = pack_next(queue, budget)
        assert len(packed) >= 1
        # Multi-item packets never exceed the budget (single oversized
        # items travel alone).
        if len(packed) > 1:
            assert size <= budget
        assert size == packed.total_size
        # Homogeneous service level per packet.
        for item in packed.items:
            original_index = item.payload[1]
            expected_service = (
                Service.SAFE if items[original_index][1] else Service.AGREED
            )
            assert expected_service is service
        unpacked.extend(item.payload for item in packed.items)
    # Exactly the submitted items, in submission order.
    assert unpacked == [("p", index) for index in range(len(items))]


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=10, max_value=400),
)
@settings(max_examples=25, deadline=None)
def test_packed_ring_always_totally_ordered(seed, n_nodes, size):
    import random

    rng = random.Random(seed)
    config = ProtocolConfig(pack_messages=True, personal_window=8,
                            accelerated_window=4)
    pids = list(range(1, n_nodes + 1))
    ring = LoopbackRing(pids, config)
    counts = {pid: 0 for pid in pids}
    for _i in range(40):
        pid = rng.choice(pids)
        service = Service.SAFE if rng.random() < 0.3 else Service.AGREED
        ring.submit(pid, (pid, counts[pid]), service, payload_size=size)
        counts[pid] += 1
    ring.run(max_steps=2_000_000)

    def unpack(pid):
        items = []
        for message in ring.delivered[pid]:
            assert isinstance(message.payload, PackedPayload)
            items.extend(i.payload for i in message.payload.items)
        return items

    streams = [unpack(pid) for pid in pids]
    assert all(s == streams[0] for s in streams)
    assert len(streams[0]) == 40
    for sender in pids:
        mine = [i for (p, i) in streams[0] if p == sender]
        assert mine == list(range(counts[sender]))
