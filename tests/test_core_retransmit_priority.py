"""Tests for retransmission bookkeeping and priority switching."""

from repro.core import PriorityMethod, ReceiveBuffer, Service, Token
from repro.core.messages import DataMessage
from repro.core.priority import PriorityTracker
from repro.core.retransmit import RetransmitTracker


def msg(seq=1, pid=2, round=1, post=False):
    message = DataMessage(seq=seq, pid=pid, round=round, service=Service.AGREED)
    return message.as_post_token() if post else message


# ---------------------------------------------------------------------------
# RetransmitTracker: the previous-round horizon rule
# ---------------------------------------------------------------------------

def test_no_requests_before_horizon_advances():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    # Token says seq=10 but the horizon is still 0: nothing is requested
    # even though we have received nothing — those messages may simply
    # not have been sent yet (the accelerated protocol's key subtlety).
    assert tracker.my_new_requests(buffer) == []
    tracker.advance_horizon(10)
    assert tracker.my_new_requests(buffer) == list(range(1, 11))


def test_horizon_never_regresses():
    tracker = RetransmitTracker()
    tracker.advance_horizon(10)
    tracker.advance_horizon(5)
    assert tracker.request_horizon == 10


def test_requests_limited_to_actual_gaps():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 4):
        buffer.insert(msg(seq=seq))
    tracker.advance_horizon(5)
    assert tracker.my_new_requests(buffer) == [3, 5]


def test_answer_requests_splits_answerable():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    buffer.insert(msg(seq=1))
    buffer.insert(msg(seq=2))
    token = Token(rtr=(1, 3))
    answered, remaining = tracker.answer_requests(token, buffer)
    assert [m.seq for m in answered] == [1]
    assert remaining == [3]


def test_stale_requests_for_stable_messages_dropped():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq=seq))
    buffer.discard_upto(2)
    token = Token(rtr=(1, 2))
    answered, remaining = tracker.answer_requests(token, buffer)
    assert answered == [] and remaining == []


def test_merge_requests_dedupes_and_sorts():
    tracker = RetransmitTracker()
    assert tracker.merge_requests([5, 3], [3, 1]) == (1, 3, 5)


# ---------------------------------------------------------------------------
# PriorityTracker: Methods 1 and 2 (Section III-C)
# ---------------------------------------------------------------------------

def make_tracker(method, ring_size=4, predecessor=2, ring_index=0):
    return PriorityTracker(method, ring_size, predecessor, ring_index)


def test_data_starts_with_priority():
    # Messages multicast before our first token must be processed
    # before it, exactly as in steady state.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE)
    assert not tracker.token_has_priority


def test_first_round_trigger_uses_ring_position():
    # Participant at index 2 on a 4-ring: its first token is hop 3, so
    # the predecessor handling preceding it is hop 2 — predecessor data
    # of round 2 must already trigger method 1.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4,
                           predecessor=2, ring_index=2)
    tracker.note_data_processed(msg(pid=2, round=1))
    assert not tracker.token_has_priority
    tracker.note_data_processed(msg(pid=2, round=2))
    assert tracker.token_has_priority


def test_data_high_after_token_handled():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE)
    tracker.note_token_handled(hop=5)
    assert not tracker.token_has_priority


def test_method1_raises_on_any_next_round_predecessor_data():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    # Predecessor's next handling is hop 5 + 4 - 1 = 8.
    tracker.note_data_processed(msg(pid=2, round=8, post=False))
    assert tracker.token_has_priority


def test_method1_ignores_old_round_data():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=7))  # previous handling
    assert not tracker.token_has_priority


def test_method1_ignores_non_predecessor():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=3, round=8))
    assert not tracker.token_has_priority


def test_method2_needs_post_token_data():
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=8, post=False))
    assert not tracker.token_has_priority
    tracker.note_data_processed(msg(pid=2, round=8, post=True))
    assert tracker.token_has_priority


def test_method2_with_zero_window_never_raises_mid_stream():
    # With accelerated window 0 nothing is ever sent post-token, so the
    # trigger never fires — the token is only processed when no data is
    # pending, which is the original Ring protocol.
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    for round_ in (8, 9, 12):
        tracker.note_data_processed(msg(pid=2, round=round_, post=False))
    assert not tracker.token_has_priority


def test_later_round_also_triggers():
    # If we missed a whole rotation, newer rounds must still trigger.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=12))
    assert tracker.token_has_priority


def test_reset_restores_initial_state():
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4,
                           predecessor=2, ring_index=1)
    tracker.note_token_handled(hop=9)
    tracker.reset()
    assert not tracker.token_has_priority
    # The round-one trigger works again after reset.
    tracker.note_data_processed(msg(pid=2, round=1, post=True))
    assert tracker.token_has_priority
