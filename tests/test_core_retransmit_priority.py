"""Tests for retransmission bookkeeping and priority switching."""

from repro.core import PriorityMethod, ReceiveBuffer, Service, Token
from repro.core.messages import DataMessage
from repro.core.priority import PriorityTracker
from repro.core.retransmit import RetransmitTracker


def msg(seq=1, pid=2, round=1, post=False):
    message = DataMessage(seq=seq, pid=pid, round=round, service=Service.AGREED)
    return message.as_post_token() if post else message


# ---------------------------------------------------------------------------
# RetransmitTracker: the previous-round horizon rule
# ---------------------------------------------------------------------------

def test_no_requests_before_horizon_advances():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    # Token says seq=10 but the horizon is still 0: nothing is requested
    # even though we have received nothing — those messages may simply
    # not have been sent yet (the accelerated protocol's key subtlety).
    assert tracker.my_new_requests(buffer) == []
    tracker.advance_horizon(10)
    assert tracker.my_new_requests(buffer) == list(range(1, 11))


def test_horizon_never_regresses():
    tracker = RetransmitTracker()
    tracker.advance_horizon(10)
    tracker.advance_horizon(5)
    assert tracker.request_horizon == 10


def test_requests_limited_to_actual_gaps():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 4):
        buffer.insert(msg(seq=seq))
    tracker.advance_horizon(5)
    assert tracker.my_new_requests(buffer) == [3, 5]


def test_answer_requests_splits_answerable():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    buffer.insert(msg(seq=1))
    buffer.insert(msg(seq=2))
    token = Token(rtr=(1, 3))
    answered, remaining = tracker.answer_requests(token, buffer)
    assert [m.seq for m in answered] == [1]
    assert remaining == [3]


def test_stale_requests_for_stable_messages_dropped():
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        buffer.insert(msg(seq=seq))
    buffer.discard_upto(2)
    token = Token(rtr=(1, 2))
    answered, remaining = tracker.answer_requests(token, buffer)
    assert answered == [] and remaining == []


def test_stale_request_does_not_strand_lagging_participant():
    # Dropping a request for seq <= discarded_upto is safe ONLY because
    # discard models stability: a message is discarded once every
    # participant holds it, so a laggard that still NEEDS seq 2 keeps
    # the global aru at 1 and nobody discards past it.  This test pins
    # the two halves of that argument: a participant that has discarded
    # the message drops the request without re-propagating it, while
    # any participant that still buffers it answers — the laggard is
    # never stranded waiting on a request nobody serves.
    discarder = RetransmitTracker()
    holder = RetransmitTracker()
    discarder_buffer = ReceiveBuffer()
    holder_buffer = ReceiveBuffer()
    for seq in (1, 2, 3):
        discarder_buffer.insert(msg(seq=seq))
        holder_buffer.insert(msg(seq=seq))
    discarder_buffer.discard_upto(3)

    token = Token(rtr=(2,))
    answered, remaining = discarder.answer_requests(token, discarder_buffer)
    assert answered == [] and remaining == []
    assert discarder.requests_answered == 0

    answered, remaining = holder.answer_requests(token, holder_buffer)
    assert [m.seq for m in answered] == [2] and remaining == []
    assert holder.requests_answered == 1


def test_stale_and_live_requests_mixed_on_one_token():
    # One token can carry a stale request (already stable here) next to
    # a live one: the stale seq vanishes, the live one is answered or
    # passed on — it must never be confused with the stale one.
    tracker = RetransmitTracker()
    buffer = ReceiveBuffer()
    for seq in (1, 2, 4):
        buffer.insert(msg(seq=seq))
    buffer.discard_upto(2)
    token = Token(rtr=(1, 3, 4))
    answered, remaining = tracker.answer_requests(token, buffer)
    assert [m.seq for m in answered] == [4]  # still buffered: answered
    assert remaining == [3]                  # a real gap: propagated
    assert tracker.merge_requests(remaining, []) == (3,)


def test_merge_requests_dedupes_and_sorts():
    tracker = RetransmitTracker()
    assert tracker.merge_requests([5, 3], [3, 1]) == (1, 3, 5)


# ---------------------------------------------------------------------------
# PriorityTracker: Methods 1 and 2 (Section III-C)
# ---------------------------------------------------------------------------

def make_tracker(method, ring_size=4, predecessor=2, ring_index=0):
    return PriorityTracker(method, ring_size, predecessor, ring_index)


def test_data_starts_with_priority():
    # Messages multicast before our first token must be processed
    # before it, exactly as in steady state.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE)
    assert not tracker.token_has_priority


def test_first_round_trigger_uses_ring_position():
    # Participant at index 2 on a 4-ring: its first token is hop 3, so
    # the predecessor handling preceding it is hop 2 — predecessor data
    # of round 2 must already trigger method 1.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4,
                           predecessor=2, ring_index=2)
    tracker.note_data_processed(msg(pid=2, round=1))
    assert not tracker.token_has_priority
    tracker.note_data_processed(msg(pid=2, round=2))
    assert tracker.token_has_priority


def test_data_high_after_token_handled():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE)
    tracker.note_token_handled(hop=5)
    assert not tracker.token_has_priority


def test_method1_raises_on_any_next_round_predecessor_data():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    # Predecessor's next handling is hop 5 + 4 - 1 = 8.
    tracker.note_data_processed(msg(pid=2, round=8, post=False))
    assert tracker.token_has_priority


def test_method1_ignores_old_round_data():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=7))  # previous handling
    assert not tracker.token_has_priority


def test_method1_ignores_non_predecessor():
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=3, round=8))
    assert not tracker.token_has_priority


def test_method2_needs_post_token_data():
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=8, post=False))
    assert not tracker.token_has_priority
    tracker.note_data_processed(msg(pid=2, round=8, post=True))
    assert tracker.token_has_priority


def test_method2_with_zero_window_never_raises_mid_stream():
    # With accelerated window 0 nothing is ever sent post-token, so the
    # trigger never fires — the token is only processed when no data is
    # pending, which is the original Ring protocol.
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    for round_ in (8, 9, 12):
        tracker.note_data_processed(msg(pid=2, round=round_, post=False))
    assert not tracker.token_has_priority


def test_later_round_also_triggers():
    # If we missed a whole rotation, newer rounds must still trigger.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4, predecessor=2)
    tracker.note_token_handled(hop=5)
    tracker.note_data_processed(msg(pid=2, round=12))
    assert tracker.token_has_priority


def test_reset_restores_initial_state():
    tracker = make_tracker(PriorityMethod.CONSERVATIVE, ring_size=4,
                           predecessor=2, ring_index=1)
    tracker.note_token_handled(hop=9)
    tracker.reset(ring_size=4, predecessor=2, ring_index=1)
    assert not tracker.token_has_priority
    # The round-one trigger works again after reset.
    tracker.note_data_processed(msg(pid=2, round=1, post=True))
    assert tracker.token_has_priority


def test_reset_takes_new_ring_geometry():
    # Membership change: the ring shrinks from 4 to 3 members, our
    # predecessor changes from 2 to 7, and our index moves from 1 to 2.
    # The trigger must key on the NEW predecessor and NEW hop spacing.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=4,
                           predecessor=2, ring_index=1)
    tracker.note_token_handled(hop=9)
    tracker.reset(ring_size=3, predecessor=7, ring_index=2)

    # The old predecessor's messages no longer raise priority...
    tracker.note_data_processed(msg(pid=2, round=2, post=True))
    assert not tracker.token_has_priority
    # ...the new predecessor's do, at the new ring's round-one trigger
    # hop (ring_index + 1 - ring_size + ring_size - 1 == ring_index).
    tracker.note_data_processed(msg(pid=7, round=2, post=True))
    assert tracker.token_has_priority


def test_reset_geometry_trigger_arithmetic_round_one():
    # After reset the first token handling is hop ring_index + 1; the
    # predecessor handling preceding it is hop ring_index, so a message
    # from an earlier round must NOT trigger while one at ring_index must.
    tracker = make_tracker(PriorityMethod.AGGRESSIVE, ring_size=5,
                           predecessor=4, ring_index=0)
    tracker.note_token_handled(hop=23)
    tracker.reset(ring_size=3, predecessor=1, ring_index=2)
    tracker.note_data_processed(msg(pid=1, round=1))
    assert not tracker.token_has_priority
    tracker.note_data_processed(msg(pid=1, round=2))
    assert tracker.token_has_priority
