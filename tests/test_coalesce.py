"""Jumbo-datagram coalescing: grouping, wire framing, end-to-end equivalence."""

import struct

import pytest

from repro.core import (
    DEFAULT_JUMBO_BYTES,
    JUMBO_ENTRY_BYTES,
    ConfigurationError,
    DataMessage,
    JumboDatagram,
    ProtocolConfig,
    Service,
    coalesce,
)
from repro.core.coalesce import JUMBO_COUNT_BYTES, datagram_size, header_bytes_saved
from repro.wire import codec


def data(seq, size=100, payload=b"x"):
    return DataMessage(seq=seq, pid=1, round=1, service=Service.AGREED,
                       payload=payload * size, payload_size=size)


# ---------------------------------------------------------------------------
# coalesce() grouping
# ---------------------------------------------------------------------------

def test_greedy_grouping_respects_cap():
    # header 12 + count 4 + 3 * (5 + 100) = 331 <= 350; a fourth packet
    # would need 331 + 105 = 436 > 350, so groups split 3 + 2.
    packets = [("p%d" % i, 100) for i in range(5)]
    groups = coalesce(packets, cap_bytes=350, header_bytes=12)
    assert [[p for p in g] for g, _ in groups] == [
        ["p0", "p1", "p2"], ["p3", "p4"],
    ]
    assert groups[0][1] == 12 + 4 + 3 * 105
    assert groups[1][1] == 12 + 4 + 2 * 105


def test_singleton_reports_plain_datagram_size():
    groups = coalesce([("only", 500)], cap_bytes=8850, header_bytes=12)
    assert groups == [(["only"], 512)]  # header + payload, no jumbo framing


def test_oversized_packet_travels_alone():
    packets = [("big", 99_999), ("small", 10)]
    groups = coalesce(packets, cap_bytes=1000, header_bytes=12)
    assert [p for g, _ in groups for p in g] == ["big", "small"]
    assert groups[0][1] == 12 + 99_999  # its real, over-cap plain size


def test_packet_exactly_filling_cap_is_included():
    # 12 + 4 + 2 * (5 + 100) == 226: the bound is inclusive.
    groups = coalesce([("a", 100), ("b", 100)], cap_bytes=226, header_bytes=12)
    assert len(groups) == 1 and groups[0][1] == 226


def test_datagram_size_and_header_saving_agree():
    header = 150
    sizes = [100, 200, 300]
    jumbo = datagram_size(sizes, header)
    plain = sum(header + s for s in sizes)
    assert plain - jumbo == header_bytes_saved(len(sizes), header)
    assert header_bytes_saved(1, header) < 0  # why singletons go plain


def test_jumbo_datagram_value_object():
    messages = (data(1), data(2, size=50))
    jumbo = JumboDatagram(messages)
    assert len(jumbo) == 2
    assert jumbo.payload_size == 150
    assert jumbo == JumboDatagram(messages)
    assert jumbo != JumboDatagram((data(1),))
    assert hash(jumbo) == hash(JumboDatagram(messages))


def test_config_validates_jumbo_bytes():
    assert ProtocolConfig().jumbo_datagram_bytes is None
    ProtocolConfig(jumbo_datagram_bytes=DEFAULT_JUMBO_BYTES)  # fine
    with pytest.raises(ConfigurationError):
        ProtocolConfig(jumbo_datagram_bytes=0)


# ---------------------------------------------------------------------------
# wire framing
# ---------------------------------------------------------------------------

def test_wire_roundtrip():
    messages = tuple(data(seq, size=40 + seq) for seq in range(1, 6))
    blob = codec.encode_jumbo(messages, ring_id=7)
    out = codec.decode(blob)
    assert out == JumboDatagram(messages)
    detail = codec.decode_detail(blob)
    assert detail.kind == "jumbo"
    assert detail.ring_id == 7
    frame = codec.decode_frame(blob)
    assert frame.kind == "jumbo" and frame.message == out


def test_encode_dispatch_matches_encode_jumbo():
    messages = (data(1), data(2))
    assert codec.encode(JumboDatagram(messages), ring_id=3) == \
        codec.encode_jumbo(messages, ring_id=3)


def test_wire_size_matches_coalesce_model():
    # The byte model coalesce() plans with must equal what the codec
    # actually emits, else the planner would overshoot the cap.
    messages = tuple(data(seq, size=100) for seq in range(1, 4))
    blob = codec.encode_jumbo(messages)
    plain = sum(codec.encoded_size(m) for m in messages)
    bodies = [codec.encoded_size(m) - codec.HEADER_SIZE for m in messages]
    assert len(blob) == datagram_size(bodies, codec.HEADER_SIZE)
    assert plain - len(blob) == header_bytes_saved(
        len(messages), codec.HEADER_SIZE)


def test_empty_jumbo_rejected_both_directions():
    with pytest.raises(codec.EncodeError):
        codec.encode_jumbo(())
    body = struct.pack("<I", 0)
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="empty jumbo"):
        codec.decode(blob)


def test_only_data_packets_coalesce():
    from repro.core import initial_token
    with pytest.raises(codec.EncodeError, match="only data packets"):
        codec.encode_jumbo((data(1), initial_token()))
    # And on the wire: an inner token entry is rejected outright.
    token_body = codec._encode_token_body(initial_token())
    body = struct.pack("<I", 1) + struct.pack(
        "<BI", codec.TYPE_TOKEN, len(token_body)) + token_body
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="only data packets"):
        codec.decode(blob)


def test_crafted_count_cannot_overrun():
    # A count far past what the body could hold must fail fast, before
    # any per-entry work.
    body = struct.pack("<I", 0xFFFFFFFF)
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="exceeds datagram capacity"):
        codec.decode(blob)


def test_entry_length_cannot_overrun():
    inner = codec._encode_data_body(data(1), 0)
    body = struct.pack("<I", 1) + struct.pack(
        "<BI", codec.TYPE_DATA, len(inner) + 50) + inner
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="overruns"):
        codec.decode(blob)


def test_trailing_bytes_rejected():
    inner = codec._encode_data_body(data(1), 0)
    body = struct.pack("<I", 1) + struct.pack(
        "<BI", codec.TYPE_DATA, len(inner)) + inner + b"xx"
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="trailing"):
        codec.decode(blob)


def test_nested_jumbo_rejected():
    inner_jumbo = codec.encode_jumbo((data(1),))
    inner_body = inner_jumbo[codec.HEADER_SIZE:]
    body = struct.pack("<I", 1) + struct.pack(
        "<BI", codec.TYPE_JUMBO, len(inner_body)) + inner_body
    blob = codec._frame(codec.TYPE_JUMBO, body)
    with pytest.raises(codec.DecodeError, match="only data packets"):
        codec.decode(blob)


# ---------------------------------------------------------------------------
# simulated ring: coalescing must not change protocol behaviour
# ---------------------------------------------------------------------------

def _run_sim(jumbo_bytes):
    from repro.net import GIGABIT
    from repro.sim import SPREAD, SimCluster

    delivered = {}
    config = ProtocolConfig.accelerated(
        accelerated_window=20, jumbo_datagram_bytes=jumbo_bytes)
    cluster = SimCluster(4, GIGABIT, SPREAD, config, seed=1)
    for pid, node in cluster.nodes.items():
        delivered[pid] = []
        node._deliver_callback = (
            lambda p, m, pid=pid: delivered[pid].append(m.seq))
    cluster.inject_at_rate(600e6, duration_s=0.03)
    result = cluster.run(0.03, warmup_s=0.005, offered_bps=600e6)
    return delivered, result


def test_sim_total_order_identical_with_and_without_jumbo():
    d_off, r_off = _run_sim(None)
    d_on, r_on = _run_sim(DEFAULT_JUMBO_BYTES)
    for pid in d_off:
        shortest = min(len(d_off[pid]), len(d_on[pid]))
        assert shortest > 100
        assert d_off[pid][:shortest] == d_on[pid][:shortest]
    assert r_on.achieved_bps == pytest.approx(r_off.achieved_bps, rel=0.05)
    assert r_on.switch_drops == 0 and r_on.socket_drops == 0


def test_sim_jumbo_reduces_datagram_count():
    from repro.net import GIGABIT
    from repro.sim import SPREAD, SimCluster

    def count_frames(jumbo_bytes):
        config = ProtocolConfig.accelerated(
            accelerated_window=20, jumbo_datagram_bytes=jumbo_bytes)
        cluster = SimCluster(4, GIGABIT, SPREAD, config, seed=1)
        cluster.inject_at_rate(900e6, duration_s=0.02)
        cluster.run(0.02, warmup_s=0.0, offered_bps=900e6)
        return sum(n.nic.frames_sent for n in cluster.nodes.values())

    plain = count_frames(None)
    jumbo = count_frames(DEFAULT_JUMBO_BYTES)
    # Tokens count equally in both runs, so the drop is all coalescing.
    assert jumbo < plain * 0.7


# ---------------------------------------------------------------------------
# emulated ring: jumbos over real UDP sockets
# ---------------------------------------------------------------------------

def test_emulated_ring_with_jumbo_preserves_total_order():
    from repro.emulation import EmulatedRing

    config = ProtocolConfig.accelerated(
        accelerated_window=10, personal_window=20,
        jumbo_datagram_bytes=DEFAULT_JUMBO_BYTES)
    with EmulatedRing(3, config) as ring:
        for pid in (0, 1, 2):
            for i in range(40):
                ring.submit(pid, ("m", pid, i))
        got = ring.collect_deliveries(120, timeout_s=20.0)
    payloads = {p: [m.payload for m in msgs] for p, msgs in got.items()}
    assert payloads[0] == payloads[1] == payloads[2]
    assert len(payloads[0]) == 120
    assert sum(n.transport.datagrams_dropped
               for n in ring.nodes.values()) == 0


def test_transport_batch_send_and_drain(free_ports=None):
    from repro.emulation.transport import PortPair, UdpTransport

    sender = UdpTransport(pid=0)
    receiver = UdpTransport(pid=1)
    peers = {0: sender.ports, 1: receiver.ports}
    sender.set_peers(peers)
    receiver.set_peers(peers)
    try:
        messages = [data(seq, size=200) for seq in range(1, 8)]
        sender.send_data_batch(messages, jumbo_cap=700)
        got = []
        deadline = 50
        while len(got) < len(messages) and deadline:
            fresh, _tokens = receiver.poll(0.05)
            got.extend(fresh)
            deadline -= 1
        assert got == messages  # same messages, same order, via jumbos
        assert receiver.drops_malformed == 0
        # 700-byte cap, ~272-byte frames: strictly fewer datagrams than
        # messages reached the socket.
        assert receiver.datagrams_received < len(messages)
    finally:
        sender.close()
        receiver.close()


# ---------------------------------------------------------------------------
# capture analyzer: coalescing statistics
# ---------------------------------------------------------------------------

def test_capture_summary_reports_coalescing(tmp_path):
    from repro.wire.capture import TRAFFIC_DATA, WORLD_SIM, CaptureWriter
    from repro.wire.decode import render_summary, summarize_capture

    path = str(tmp_path / "jumbo.rcap")
    with CaptureWriter(path, WORLD_SIM, label="coalesce test") as writer:
        writer.write_message(0.0, 0, None, TRAFFIC_DATA,
                             JumboDatagram((data(1), data(2), data(3))))
        writer.write_message(0.1, 0, None, TRAFFIC_DATA,
                             JumboDatagram((data(4), data(5))))
        writer.write_message(0.2, 1, None, TRAFFIC_DATA, data(6))

    summary = summarize_capture(path)
    assert summary["records_by_kind"] == {"data": 1, "jumbo": 2}
    assert summary["jumbo_datagrams"] == 2
    assert summary["jumbo_packets"] == 5
    # Two jumbos of 3 and 2 packets, 12-byte outer headers:
    assert summary["jumbo_header_bytes_saved"] == (
        header_bytes_saved(3, codec.HEADER_SIZE)
        + header_bytes_saved(2, codec.HEADER_SIZE)
    )
    rendered = "\n".join(render_summary(path))
    assert "5 packet(s) in 2 jumbo datagram(s)" in rendered
    assert "2.50 per jumbo" in rendered


def test_capture_summary_no_jumbos_stays_quiet(tmp_path):
    from repro.wire.capture import TRAFFIC_DATA, WORLD_SIM, CaptureWriter
    from repro.wire.decode import render_summary, summarize_capture

    path = str(tmp_path / "plain.rcap")
    with CaptureWriter(path, WORLD_SIM) as writer:
        writer.write_message(0.0, 0, None, TRAFFIC_DATA, data(1))

    summary = summarize_capture(path)
    assert summary["jumbo_datagrams"] == 0
    assert "coalescing" not in "\n".join(render_summary(path))
