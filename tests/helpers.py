"""Shared test utilities."""

from __future__ import annotations

import random
from typing import Any, List, Sequence, Set, Tuple

from repro.core import DataMessage, Service


class FirstTimeLoss:
    """Deterministic loss: drop the first transmission of chosen (seq, dst).

    Retransmissions get through, so runs always converge.  Keyed on seq
    so the same pattern is replayable across different implementations.
    """

    def __init__(self, seed: int, max_seq: int = 2000, pids: Sequence[int] = (), p: float = 0.05):
        rng = random.Random(seed)
        self.targets: Set[Tuple[int, int]] = {
            (s, d)
            for s in range(1, max_seq + 1)
            for d in pids
            if rng.random() < p
        }
        self.seen: Set[Tuple[int, int]] = set()
        self.drops = 0

    def key_drop(self, seq: int, dst: int) -> bool:
        key = (seq, dst)
        if key in self.targets and key not in self.seen:
            self.seen.add(key)
            self.drops += 1
            return True
        return False

    def __call__(self, message: DataMessage, dst: int) -> bool:
        return self.key_drop(message.seq, dst)


def mixed_workload(
    seed: int, pids: Sequence[int], per_pid: int, safe_fraction: float = 0.3
) -> List[Tuple[int, Any, Service]]:
    """A reproducible plan of (pid, payload, service) submissions."""
    rng = random.Random(seed)
    plan: List[Tuple[int, Any, Service]] = []
    for pid in pids:
        for i in range(per_pid):
            service = Service.SAFE if rng.random() < safe_fraction else Service.AGREED
            plan.append((pid, "p%d-%d" % (pid, i), service))
    return plan


def assert_same_sequences(sequences: dict) -> None:
    """All participants delivered the same ordered sequence."""
    values = list(sequences.values())
    first = values[0]
    for other in values[1:]:
        assert other == first, "delivery sequences diverge"


def assert_prefix_consistent(sequences: dict) -> None:
    """Each pair of delivery sequences is prefix-related (partial runs)."""
    values = list(sequences.values())
    for i, a in enumerate(values):
        for b in values[i + 1:]:
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            assert longer[: len(shorter)] == shorter, "sequences not prefix-related"
