"""Malformed-datagram fuzzing: the decoder and a live ring under fire.

Three layers:

* property suite — arbitrary bytes and seeded mutations of valid frames
  must only ever produce ``DecodeError`` (never a crash, never a hang);
* transport layer — garbage aimed at a bound transport's sockets is
  counted and dropped, with exact counters;
* live daemon — ISSUE acceptance: ≥1000 malformed/truncated datagrams
  sprayed into a running ring's sockets cause zero crashes, accurate
  drop counters, and the ring keeps ordering messages afterwards.
"""

import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Service
from repro.emulation import EmulatedRing
from repro.emulation.transport import MAX_DATAGRAM, UdpTransport
from repro.wire import codec, fuzz

EXAMPLES = settings(
    max_examples=int(os.environ.get("REPRO_WIRE_EXAMPLES", "25")),
    deadline=None,
)


# -- decoder properties ------------------------------------------------------

@EXAMPLES
@given(blob=st.binary(max_size=512))
def test_arbitrary_bytes_never_crash_the_decoder(blob):
    assert fuzz.is_clean_failure(blob)


@EXAMPLES
@given(seed=st.integers(0, 2 ** 32 - 1))
def test_mutated_valid_frames_never_crash_the_decoder(seed):
    for blob in fuzz.corpus(seed, 40):
        assert fuzz.is_clean_failure(blob)


@EXAMPLES
@given(blob=st.binary(min_size=codec.HEADER_SIZE, max_size=256),
       seed=st.integers(0, 2 ** 32 - 1))
def test_each_mutator_is_crash_free(blob, seed):
    import random

    rng = random.Random(seed)
    for mutator in fuzz.MUTATORS:
        assert fuzz.is_clean_failure(mutator(blob, rng))


def test_corpus_is_deterministic_and_fully_rejected():
    first = fuzz.corpus(7, 200)
    assert first == fuzz.corpus(7, 200)
    assert len(first) == 200
    for blob in first:
        with pytest.raises(codec.DecodeError):
            codec.decode(blob)


# -- transport counters (single transport, no threads) -----------------------

def _await_drops(get_count, expected, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if get_count() >= expected:
            return get_count()
        time.sleep(0.01)
    return get_count()


def test_transport_counts_malformed_and_oversize_drops():
    transport = UdpTransport(pid=0)
    try:
        blobs = fuzz.corpus(seed=3, count=40)
        fuzz.spray(transport.host, [transport.ports.data_port], blobs[:20])
        fuzz.spray(transport.host, [transport.ports.token_port], blobs[20:])
        # One datagram past MAX_DATAGRAM: counted as oversize, not parsed.
        fuzz.spray(transport.host, [transport.ports.data_port],
                   [b"\x00" * (MAX_DATAGRAM + 1)])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            data, tokens = transport.poll(0.05)
            assert data == [] and tokens == []
            if transport.datagrams_dropped >= 41:
                break
        assert transport.drops_malformed == 40
        assert transport.drops_oversize == 1
        assert transport.datagrams_received == 0
        assert transport.last_decode_error
    finally:
        transport.close()


def test_transport_rejects_wrong_type_on_each_socket():
    from repro.core import Token
    from repro.core.messages import DataMessage

    transport = UdpTransport(pid=0)
    try:
        token_blob = codec.encode(Token(ring_id=1))
        data_blob = codec.encode(DataMessage(
            seq=1, pid=9, round=1, service=Service.AGREED,
            payload=b"x", payload_size=1, submitted_at=None))
        # Well-formed frames aimed at the wrong socket are violations too.
        fuzz.spray(transport.host, [transport.ports.data_port], [token_blob])
        fuzz.spray(transport.host, [transport.ports.token_port], [data_blob])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            data, tokens = transport.poll(0.05)
            assert data == [] and tokens == []
            if transport.drops_malformed >= 2:
                break
        assert transport.drops_malformed == 2
        assert "socket" in transport.last_decode_error
    finally:
        transport.close()


# -- the live-daemon spray (ISSUE acceptance criterion) ----------------------

def test_live_ring_survives_thousand_malformed_datagrams():
    """≥1000 garbage datagrams into a live ring: zero crashes, exact
    drop counters, and total order still delivered afterwards."""
    n_nodes = 3
    corpus = fuzz.corpus(seed=11, count=1002)
    assert len(corpus) >= 1000
    with EmulatedRing(n_nodes) as ring:
        # Warm up: the ring orders traffic before, during and after.
        for pid in range(n_nodes):
            ring.submit(pid, ("pre", pid), Service.AGREED)
        ring.collect_deliveries(expected_per_node=n_nodes, timeout_s=20.0)

        ports = []
        for node in ring.nodes.values():
            ports.append(node.transport.ports.data_port)
            ports.append(node.transport.ports.token_port)
        sent = fuzz.spray("127.0.0.1", ports, corpus)
        assert sent == len(corpus)
        # A few oversized datagrams on top, one per node's data socket.
        oversize = [b"\xff" * (MAX_DATAGRAM + 7)] * n_nodes
        fuzz.spray("127.0.0.1",
                   [n.transport.ports.data_port for n in ring.nodes.values()],
                   oversize)

        def dropped():
            report = ring.drop_report()
            return sum(r["malformed"] + r["oversize"] for r in report.values())

        total = _await_drops(dropped, len(corpus) + n_nodes, timeout_s=15.0)
        report = ring.drop_report()
        # Every sprayed datagram is accounted for as a drop — none were
        # parsed into the protocol, none vanished uncounted.
        assert sum(r["malformed"] for r in report.values()) == len(corpus)
        assert sum(r["oversize"] for r in report.values()) == n_nodes
        assert total == len(corpus) + n_nodes

        # Zero crashes: every node thread is still running.
        for node in ring.nodes.values():
            assert node.is_alive()

        # And the ring still totally orders new traffic.
        for pid in range(n_nodes):
            for i in range(3):
                ring.submit(pid, ("post", pid, i), Service.AGREED)
        # collect_deliveries drains only fresh messages: just the posts.
        delivered = ring.collect_deliveries(
            expected_per_node=3 * n_nodes, timeout_s=20.0
        )
        orders = {
            pid: [m.payload for m in msgs if m.payload[0] == "post"]
            for pid, msgs in delivered.items()
        }
        reference = next(iter(orders.values()))
        assert len(reference) == 3 * n_nodes
        for order in orders.values():
            assert order == reference
