"""Parallel sweeps must reproduce serial sweeps byte for byte.

Sweep points are independent simulations with their own seeds, so the
worker count is a pure wall-clock knob: any difference in figure values
or ordering between ``processes=1`` and ``processes=N`` is a bug.
"""

import dataclasses

from repro.bench import (
    SweepRunner,
    default_processes,
    run_sweep,
    sweep_points,
)
from repro.bench.experiments import make_fig1


def small_spec():
    """A 2-series x 4-load (8 point) slice of fig1, sized for tests."""
    spec = make_fig1()
    return dataclasses.replace(
        spec,
        profiles=spec.profiles[:2],
        protocols=("accelerated",),
        offered_mbps=(100.0, 300.0, 500.0, 700.0),
        n_nodes=4,
        duration_s=0.02,
        warmup_s=0.005,
    )


def test_parallel_matches_serial_exactly():
    spec = small_spec()
    serial = run_sweep(spec, processes=1)
    parallel = run_sweep(spec, processes=4)
    assert serial.labels() == parallel.labels()
    assert serial.to_csv() == parallel.to_csv()
    assert serial.to_markdown() == parallel.to_markdown()


def test_sweep_runner_preserves_point_order():
    points = sweep_points(small_spec())
    assert [p.index for p in points] == list(range(8))
    results = SweepRunner(processes=4).run(points)
    assert [p.index for p, _ in results] == list(range(8))
    assert all(result is not None for _, result in results)


def test_progress_hook_fires_once_per_point():
    spec = small_spec()
    seen = []
    run_sweep(spec, progress=seen.append, processes=2)
    assert len(seen) == len(sweep_points(spec))
    assert all(spec.figure_id in line for line in seen)


def test_default_processes_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_PROCESSES", raising=False)
    assert default_processes() == 1
    monkeypatch.setenv("REPRO_BENCH_PROCESSES", "4")
    assert default_processes() == 4
    monkeypatch.setenv("REPRO_BENCH_PROCESSES", "junk")
    assert default_processes() == 1
    monkeypatch.setenv("REPRO_BENCH_PROCESSES", "0")
    assert default_processes() == 1
