"""Reproducibility: every simulated measurement replays bit-for-bit."""

import pytest

from repro.bench import tuned_configs
from repro.bench.experiments import SweepSpec, full_mode, make_fig1
from repro.cli import main as cli_main
from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT, BernoulliLoss
from repro.sim import LIBRARY, SPREAD, run_point


def point(seed=0, loss_seed=None):
    loss = BernoulliLoss(0.01, seed=loss_seed, spare_token=True) \
        if loss_seed is not None else None
    return run_point(
        ProtocolConfig.accelerated(personal_window=15, accelerated_window=10),
        SPREAD, GIGABIT, 400e6,
        duration_s=0.05, warmup_s=0.015, n_nodes=4, seed=seed, loss=loss,
    )


def test_identical_seeds_identical_results():
    a = point(seed=3)
    b = point(seed=3)
    assert a.achieved_bps == b.achieved_bps
    assert a.latency.mean_s == b.latency.mean_s
    assert a.latency.p99_s == b.latency.p99_s
    assert a.rounds_per_s == b.rounds_per_s


def test_different_seeds_differ_slightly():
    a = point(seed=3)
    b = point(seed=4)
    # Jitter differs, so exact equality would be suspicious...
    assert a.latency.mean_s != b.latency.mean_s
    # ...but the measurement is stable.
    assert a.latency.mean_s == pytest.approx(b.latency.mean_s, rel=0.2)


def test_lossy_runs_replay_exactly():
    a = point(seed=5, loss_seed=9)
    b = point(seed=5, loss_seed=9)
    assert a.retransmissions == b.retransmissions
    assert a.achieved_bps == b.achieved_bps
    assert a.latency.max_s == b.latency.max_s


def test_full_mode_env_toggles_density(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    quick = make_fig1()
    assert not full_mode()
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert full_mode()
    full = make_fig1()
    assert len(full.offered_mbps) > len(quick.offered_mbps)
    assert full.duration_s > quick.duration_s


def test_cli_fig4_multi_spec_path(monkeypatch, capsys, tmp_path):
    import repro.cli as cli

    def tiny(figure_id):
        return SweepSpec(
            figure_id=figure_id, title="tiny", link=GIGABIT,
            service=Service.AGREED, payload_size=1350,
            profiles=(LIBRARY,), protocols=("accelerated",),
            offered_mbps=(100.0,), n_nodes=2,
            duration_s=0.02, warmup_s=0.005,
        )

    monkeypatch.setattr(cli, "make_fig4", lambda: (tiny("t4a"), tiny("t4b")))
    monkeypatch.setattr("repro.bench.runner.RESULTS_DIR", str(tmp_path))
    assert cli_main(["fig4", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "t4a" in out and "t4b" in out


def test_cli_runs_injected_tiny_figure(monkeypatch, capsys, tmp_path):
    import repro.cli as cli

    tiny = SweepSpec(
        figure_id="tinyfig", title="tiny", link=GIGABIT,
        service=Service.AGREED, payload_size=1350,
        profiles=(LIBRARY,), protocols=("accelerated",),
        offered_mbps=(100.0,), n_nodes=2,
        duration_s=0.02, warmup_s=0.005,
    )
    monkeypatch.setitem(cli.ALL_FIGURES, "tinyfig", lambda: tiny)
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
    monkeypatch.setattr("repro.bench.runner.RESULTS_DIR", str(tmp_path))
    assert cli_main(["tinyfig", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "tinyfig" in out
    assert "library/accelerated" in out


# -- engine-level ordering guarantees ----------------------------------------
#
# The kernel splits same-time events between a heap and a zero-delay ready
# queue; these tests lock in the documented tie-break order so kernel
# optimizations cannot silently reorder same-time events.

def test_zero_delay_events_run_in_insertion_order():
    """Timeout(0), Signal.fire and call_in(0.0) interleave by insertion."""
    from repro.net import Simulator, Timeout

    sim = Simulator()
    order = []
    sig = sim.signal("s")

    def waiter(tag):
        yield sig
        order.append(tag)
        yield Timeout(0)
        order.append(tag + "+t0")

    def firer():
        order.append("firer-start")
        sim.call_in(0.0, lambda: order.append("callin-a"))
        sig.fire()
        sim.call_in(0.0, lambda: order.append("callin-b"))
        order.append("firer-yield")
        yield Timeout(0)
        order.append("firer-resumed")

    sim.spawn(waiter("w1"), "w1")
    sim.spawn(waiter("w2"), "w2")
    sim.spawn(firer(), "f")
    sim.run()

    assert order == [
        "firer-start", "firer-yield",   # firer's first step, uninterrupted
        "callin-a",                     # scheduled before the fire
        "w1", "w2",                     # fire resumes waiters in wait order
        "callin-b",                     # scheduled after the fire
        "firer-resumed",                # Timeout(0) yielded before w1/w2's
        "w1+t0", "w2+t0",
    ]


def test_heap_events_precede_same_time_resumes():
    """At time T, events scheduled before T outrank resumes created at T."""
    from repro.net import Simulator

    sim = Simulator()
    order = []
    sig = sim.signal("s")

    def waiter():
        yield sig
        order.append("resumed")

    def fire_and_log():
        order.append("A")
        sig.fire()

    sim.spawn(waiter(), "w")
    sim.run(until=0.5)  # waiter is now blocked on the signal
    sim.call_in(0.5, fire_and_log)
    sim.call_in(0.5, lambda: order.append("B"))
    sim.run()
    # Both callbacks land at t=1.0; the resume triggered by A must wait
    # until every heap event at t=1.0 (here: B) has run.
    assert order == ["A", "B", "resumed"]
