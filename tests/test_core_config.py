"""Tests for ProtocolConfig and Service."""

import pytest

from repro.core import ConfigurationError, PriorityMethod, ProtocolConfig, Service


def test_defaults_are_accelerated():
    config = ProtocolConfig()
    assert config.is_accelerated
    assert config.accelerated_window > 0


def test_original_ring_preset():
    config = ProtocolConfig.original_ring()
    assert not config.is_accelerated
    assert config.accelerated_window == 0
    assert config.priority_method is PriorityMethod.CONSERVATIVE
    assert config.request_current_round


def test_accelerated_preset_uses_previous_round_horizon():
    config = ProtocolConfig.accelerated()
    assert not config.request_current_round


def test_original_ring_accepts_overrides():
    config = ProtocolConfig.original_ring(personal_window=7)
    assert config.personal_window == 7
    assert config.accelerated_window == 0


def test_evolve_returns_modified_copy():
    base = ProtocolConfig()
    tweaked = base.evolve(accelerated_window=0)
    assert tweaked.accelerated_window == 0
    assert base.accelerated_window != 0


@pytest.mark.parametrize(
    "field,value",
    [
        ("personal_window", -1),
        ("global_window", 0),
        ("accelerated_window", -2),
        ("max_seq_gap", 0),
        ("token_retransmit_timeout_s", 0.0),
    ],
)
def test_invalid_values_rejected(field, value):
    with pytest.raises(ConfigurationError):
        ProtocolConfig(**{field: value})


def test_service_stability_flag():
    assert Service.SAFE.requires_stability
    assert not Service.AGREED.requires_stability
    assert not Service.FIFO.requires_stability
    assert not Service.CAUSAL.requires_stability


def test_config_is_immutable():
    config = ProtocolConfig()
    with pytest.raises(Exception):
        config.personal_window = 3
