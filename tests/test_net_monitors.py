"""Tests for the fabric monitor (network observability)."""

import pytest

from repro.net import (
    GIGABIT,
    FabricMonitor,
    Frame,
    Nic,
    Simulator,
    Switch,
    Timeout,
    Traffic,
)


def fabric(hosts=(0, 1, 2)):
    sim = Simulator()
    switch = Switch(sim, GIGABIT)
    nics = []
    for host in hosts:
        switch.attach(host, lambda f: None)
        nics.append(Nic(sim, host, GIGABIT, switch.receive))
    return sim, switch, nics


def frame(src, dst=None, size=1400):
    return Frame(src=src, dst=dst, traffic=Traffic.DATA, size=size, payload=None)


def test_snapshot_counts_sent_and_forwarded():
    sim, switch, nics = fabric()
    monitor = FabricMonitor(sim, switch, nics)
    for _i in range(5):
        nics[0].send(frame(0))          # multicast -> 2 forwards each
        nics[1].send(frame(1, dst=2))   # unicast  -> 1 forward each
    sim.run()
    snap = monitor.snapshot()
    assert snap.frames_sent == 10
    assert snap.frames_forwarded == 5 * 2 + 5
    assert snap.switch_drops == 0
    assert snap.nic_drops == 0
    assert snap.bytes_sent > 10 * 1400


def test_periodic_sampling_collects_series():
    sim, switch, nics = fabric()
    monitor = FabricMonitor(sim, switch, nics)
    monitor.sample_periodically(0.001)

    def slow_sender():
        for _i in range(10):
            nics[0].send(frame(0))
            yield Timeout(0.0005)

    sim.spawn(slow_sender(), "sender")
    sim.run(until=0.005)
    assert len(monitor.samples) == 5
    sent = [s.frames_sent for s in monitor.samples]
    assert sent == sorted(sent)  # cumulative counters grow monotonically


def test_utilization_fraction():
    sim, switch, nics = fabric(hosts=(0, 1))
    monitor = FabricMonitor(sim, switch, nics)
    # Send exactly 1 ms of line-rate traffic: ~83 frames of 1500B wire.
    wire = frame(0, dst=1, size=1430).wire_bytes()
    count = int(1e9 * 0.001 / 8 / wire)
    for _i in range(count):
        nics[0].send(frame(0, dst=1, size=1430))
    sim.run()
    utilization = monitor.utilization(GIGABIT.rate_bps, window_s=0.001)
    assert utilization == pytest.approx(1.0, rel=0.05)


def test_utilization_zero_window():
    sim, switch, nics = fabric(hosts=(0, 1))
    monitor = FabricMonitor(sim, switch, nics)
    assert monitor.utilization(1e9, 0.0) == 0.0


def test_max_port_queue_tracked_in_snapshot():
    sim, switch, nics = fabric(hosts=(0, 1, 2))
    monitor = FabricMonitor(sim, switch, nics)
    # Two senders converge on port 2: its queue must grow.
    for _i in range(20):
        nics[0].send(frame(0, dst=2))
        nics[1].send(frame(1, dst=2))
    sim.run()
    assert monitor.snapshot().max_port_queue_bytes > 0
