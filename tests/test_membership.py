"""Tests for the Totem-style membership algorithm and EVS semantics."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.evs import ConfigChange, Configuration, ConfigurationKind
from repro.harness.evsnet import EVSNetwork
from repro.membership import State
from repro.membership.controller import make_ring_id, ring_id_seq


def converged_net(pids, **kw):
    net = EVSNetwork(pids, **kw)
    net.run_until_converged()
    return net


def delivered(net, pid):
    return [(m.ring_id, m.seq, m.payload) for m in net.processes[pid].delivered_messages()]


def configs(net, pid):
    return [
        (c.kind, c.ring_id, c.members) for c in net.processes[pid].configurations()
    ]


# ---------------------------------------------------------------------------
# Ring-id minting
# ---------------------------------------------------------------------------

def test_ring_ids_unique_across_partitions():
    # Two partitions reconfiguring concurrently from the same history
    # must mint different ids (different representatives).
    a = make_ring_id(2, 1)
    b = make_ring_id(2, 3)
    assert a != b
    assert ring_id_seq(a) == ring_id_seq(b) == 2


# ---------------------------------------------------------------------------
# Formation
# ---------------------------------------------------------------------------

def test_cold_start_forms_single_ring():
    net = converged_net([1, 2, 3, 4])
    rings = {net.processes[p].ring.members for p in (1, 2, 3, 4)}
    assert rings == {(1, 2, 3, 4)}
    ids = {net.processes[p].ring.ring_id for p in (1, 2, 3, 4)}
    assert len(ids) == 1


def test_all_processes_deliver_the_new_configuration():
    net = converged_net([1, 2, 3])
    for pid in (1, 2, 3):
        final = net.processes[pid].current_configuration
        assert final.is_regular
        assert final.members == (1, 2, 3)


def test_single_process_stays_singleton():
    net = EVSNetwork([7])
    net.run_quiet(100)
    process = net.processes[7]
    assert process.state is State.OPERATIONAL
    assert process.ring.members == (7,)


def test_messages_ordered_after_formation():
    net = converged_net([1, 2, 3, 4])
    for pid in (1, 2, 3, 4):
        for i in range(6):
            net.submit(pid, (pid, i), Service.SAFE if i % 3 == 0 else Service.AGREED)
    net.run_until_delivered(24)
    logs = {p: delivered(net, p) for p in (1, 2, 3, 4)}
    assert all(log == logs[1] for log in logs.values())
    assert len(logs[1]) == 24


# ---------------------------------------------------------------------------
# Crash
# ---------------------------------------------------------------------------

def test_crash_detected_and_ring_reformed():
    net = converged_net([1, 2, 3, 4])
    net.crash(3)
    net.run_until_converged()
    for pid in (1, 2, 4):
        assert net.processes[pid].ring.members == (1, 2, 4)


def test_progress_after_crash():
    net = converged_net([1, 2, 3])
    net.crash(2)
    net.run_until_converged()
    net.submit(1, "after-crash", Service.SAFE)
    net.run_quiet(300)
    for pid in (1, 3):
        assert "after-crash" in [m.payload for m in net.processes[pid].delivered_messages()]


def test_transitional_configuration_on_crash():
    net = converged_net([1, 2, 3])
    old_ring = net.processes[1].ring.ring_id
    net.crash(3)
    net.run_until_converged()
    sequence = configs(net, 1)
    transitional = [c for c in sequence if c[0] is ConfigurationKind.TRANSITIONAL
                    and c[1] == old_ring]
    assert transitional == [(ConfigurationKind.TRANSITIONAL, old_ring, (1, 2))]


def test_crash_of_representative():
    net = converged_net([1, 2, 3, 4])
    net.crash(1)  # lowest id = representative of the ring
    net.run_until_converged()
    for pid in (2, 3, 4):
        assert net.processes[pid].ring.members == (2, 3, 4)


def test_cascading_crashes():
    net = converged_net([1, 2, 3, 4, 5])
    net.crash(2)
    net.run_until_converged()
    net.crash(4)
    net.run_until_converged()
    for pid in (1, 3, 5):
        assert net.processes[pid].ring.members == (1, 3, 5)


# ---------------------------------------------------------------------------
# Partition and merge
# ---------------------------------------------------------------------------

def test_partition_forms_two_rings():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    assert net.processes[1].ring.members == (1, 2)
    assert net.processes[4].ring.members == (3, 4)
    assert net.processes[1].ring.ring_id != net.processes[4].ring.ring_id


def test_both_partitions_make_progress():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.submit(1, "left")
    net.submit(3, "right")
    net.run_quiet(400)
    left = [m.payload for m in net.processes[2].delivered_messages()]
    right = [m.payload for m in net.processes[4].delivered_messages()]
    assert "left" in left and "left" not in right
    assert "right" in right and "right" not in left


def test_merge_after_heal():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.heal()
    net.run_until_converged()
    members = {net.processes[p].ring.members for p in (1, 2, 3, 4)}
    assert members == {(1, 2, 3, 4)}


def test_merged_ring_orders_messages_again():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.heal()
    net.run_until_converged()
    before = {p: len(net.processes[p].delivered_messages()) for p in (1, 2, 3, 4)}
    for pid in (1, 2, 3, 4):
        net.submit(pid, ("merged", pid))
    net.run_quiet(600)
    for pid in (1, 2, 3, 4):
        new = net.processes[pid].delivered_messages()[before[pid]:]
        assert len(new) == 4
    tails = {
        p: [m.payload for m in net.processes[p].delivered_messages()[-4:]]
        for p in (1, 2, 3, 4)
    }
    assert all(t == tails[1] for t in tails.values())


def test_asymmetric_partition_isolates_singleton():
    net = converged_net([1, 2, 3])
    net.set_partition({1, 2})  # 3 is implicitly isolated
    net.run_until_converged()
    assert net.processes[3].ring.members == (3,)
    assert net.processes[1].ring.members == (1, 2)


# ---------------------------------------------------------------------------
# Virtual synchrony: message recovery across view changes
# ---------------------------------------------------------------------------

def test_messages_in_flight_survive_view_change():
    # Submit messages, then crash a node BEFORE they are all delivered;
    # the survivors must still agree on what was delivered.
    net = converged_net([1, 2, 3, 4])
    for pid in (1, 2, 3, 4):
        for i in range(10):
            net.submit(pid, (pid, i))
    # A few steps only: messages are mid-flight.
    net.run_quiet(6)
    net.crash(4)
    net.run_until_converged()
    net.run_quiet(300)
    logs = {p: delivered(net, p) for p in (1, 2, 3)}
    assert logs[1] == logs[2] == logs[3]
    survivors_payloads = [payload for (_r, _s, payload) in logs[1]]
    # Everything the survivors submitted must eventually deliver
    # (self-delivery under EVS for processes that stay).
    for pid in (1, 2, 3):
        for i in range(10):
            assert (pid, i) in survivors_payloads


def test_virtual_synchrony_same_deliveries_per_configuration():
    # Members that move together through view changes deliver the same
    # messages in the same configurations.
    net = converged_net([1, 2, 3, 4])
    for pid in (1, 2, 3, 4):
        for i in range(8):
            net.submit(pid, (pid, i), Service.SAFE if i % 2 else Service.AGREED)
    net.run_quiet(5)
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.run_quiet(400)
    # Within each partition the event logs (messages + config changes)
    # must be identical from the first configuration the members shared
    # (their boot singletons necessarily differ).
    for group in ((1, 2), (3, 4)):
        logs = {}
        for p in group:
            events = [
                e if not isinstance(e, ConfigChange) else (e.configuration.kind,
                                                           e.configuration.members)
                for e in net.processes[p].app_log
            ]
            shared = (ConfigurationKind.REGULAR, (1, 2, 3, 4))
            logs[p] = events[events.index(shared):]
        a, b = (logs[p] for p in group)
        assert a == b, "virtual synchrony violated within %r" % (group,)


def test_transitional_messages_flagged():
    # Messages recovered past a safe bound are delivered with the
    # transitional flag set.
    net = converged_net([1, 2, 3])
    for i in range(6):
        net.submit(1, ("safe", i), Service.SAFE)
    net.run_quiet(4)  # not yet stable
    net.crash(3)
    net.run_until_converged()
    net.run_quiet(300)
    messages = net.processes[1].delivered_messages()
    safe_msgs = [m for m in messages if m.payload[0] == "safe"]
    assert len(safe_msgs) == 6
    assert any(m.transitional for m in safe_msgs) or all(
        not m.transitional for m in safe_msgs
    )
    # Survivors agree on the flags.
    other = [m for m in net.processes[2].delivered_messages() if m.payload[0] == "safe"]
    assert [(m.seq, m.transitional) for m in safe_msgs] == [
        (m.seq, m.transitional) for m in other
    ]


def test_no_cross_partition_message_leak():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.submit(1, "secret-left")
    net.run_quiet(300)
    for pid in (3, 4):
        payloads = [m.payload for m in net.processes[pid].delivered_messages()]
        assert "secret-left" not in payloads


def test_configuration_ids_strictly_increase_per_process():
    net = converged_net([1, 2, 3, 4])
    net.set_partition({1, 2}, {3, 4})
    net.run_until_converged()
    net.heal()
    net.run_until_converged()
    for pid in (1, 2, 3, 4):
        regulars = [
            c.ring_id for c in net.processes[pid].configurations() if c.is_regular
        ]
        seqs = [ring_id_seq(r) for r in regulars]
        assert seqs == sorted(seqs)
        assert len(set(regulars)) == len(regulars)
