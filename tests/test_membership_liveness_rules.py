"""Regression tests for the membership liveness rules found by fuzzing.

Each of these pins a concrete rule documented in DESIGN.md Section 7;
they exist so a future refactor cannot silently reintroduce the
livelocks and stale-token crashes the chaos fuzzer originally found.
"""

import pytest

from repro.core import ProtocolConfig
from repro.membership import (
    CommitToken,
    EVSProcess,
    JoinMessage,
    MemberInfo,
    MembershipTimeouts,
    State,
)
from repro.membership.controller import make_ring_id


def gathered_pair():
    """A process at pid 1 that has reached consensus with pid 2 and is
    mid-COMMIT (rotation-1 token sent to 2)."""
    process = EVSProcess(1, ProtocolConfig(), MembershipTimeouts())
    process.bootstrap()
    out = process.handle_ctrl(
        JoinMessage(sender=2, proc_set=frozenset({1, 2}),
                    fail_set=frozenset(), ring_seq=0),
        src=2,
    )
    assert process.state is State.COMMIT
    return process, out


def info_for(process, pid=None, old_ring_id=None):
    return MemberInfo(
        pid=pid if pid is not None else process.pid,
        old_ring_id=old_ring_id if old_ring_id is not None else process.ring.ring_id,
        old_aru=0, high_seq=0, old_members=(process.pid,),
        old_safe_bound=0, old_delivered_upto=0,
    )


def test_joins_do_not_abort_inflight_commit():
    process, _out = gathered_pair()
    attempt = process._commit
    out = process.handle_ctrl(
        JoinMessage(sender=9, proc_set=frozenset({1, 9}),
                    fail_set=frozenset(), ring_seq=999),
        src=9,
    )
    assert out == []
    assert process.state is State.COMMIT
    assert process._commit is attempt  # untouched
    # But the observed ring sequence advanced (no id reuse later).
    assert process._highest_ring_seq >= 999


def test_older_rotation1_cannot_displace_newer_attempt():
    process, _out = gathered_pair()
    current = process._commit
    older = CommitToken(
        new_ring_id=current.new_ring_id - 1,
        members=(1, 2), rotation=1,
    )
    assert process.handle_ctrl(older, src=2) == []
    assert process._commit is current


def test_newer_rotation1_displaces_older_attempt():
    process, _out = gathered_pair()
    current = process._commit
    newer = CommitToken(
        new_ring_id=make_ring_id(
            (current.new_ring_id >> 20) + 5, 1
        ),
        members=(1, 2), rotation=1,
    )
    out = process.handle_ctrl(newer, src=2)
    assert process._commit is not current
    assert process._commit.new_ring_id == newer.new_ring_id
    assert out  # forwarded to the successor


def test_stale_rotation2_with_mismatched_info_ignored():
    process, _out = gathered_pair()
    # A rotation-2 token whose collected info claims we were on some
    # other ring (we reconfigured since rotation 1 of that attempt).
    stale = CommitToken(
        new_ring_id=make_ring_id(50, 1),
        members=(1, 2), rotation=2,
        collected=(
            info_for(process, old_ring_id=process.ring.ring_id + 999),
            info_for(process, pid=2, old_ring_id=123),
        ),
    )
    assert process.handle_ctrl(stale, src=2) == []
    assert process.state is State.COMMIT  # unshaken


def test_join_sender_removed_from_fail_gossip():
    process = EVSProcess(1, ProtocolConfig(), MembershipTimeouts())
    process.bootstrap()
    # A join from 3 whose stale gossip claims 3 itself failed (relayed
    # second-hand): 3 is demonstrably alive, so it must not be failed.
    process.handle_ctrl(
        JoinMessage(sender=3, proc_set=frozenset({1, 3}),
                    fail_set=frozenset({3}), ring_seq=0),
        src=3,
    )
    assert 3 not in process._fail_set
    assert 3 in process._proc_set


def test_gather_escape_hatch_forms_singleton():
    timeouts = MembershipTimeouts(gather_ticks=1, max_gather_attempts=2)
    process = EVSProcess(1, ProtocolConfig(), timeouts)
    pending = list(process.bootstrap())
    # 9 responds once with a forever-mismatching view and then churns
    # (never converging); the escape hatch must bound the attempts.
    process.handle_ctrl(
        JoinMessage(sender=9, proc_set=frozenset({1, 9, 100}),
                    fail_set=frozenset({2}), ring_seq=0),
        src=9,
    )
    for tick in range(40):
        pending.extend(process.tick())
        while pending:
            out = pending.pop(0)
            if out.kind == "ctrl" and out.dst == 1:
                pending.extend(process.handle_ctrl(out.payload, src=1))
        if process.state is State.OPERATIONAL:
            break
    assert process.state is State.OPERATIONAL
    assert process.ring.members == (1,)


def test_evolving_views_are_not_struck():
    timeouts = MembershipTimeouts(gather_ticks=1)
    process = EVSProcess(1, ProtocolConfig(), timeouts)
    process.bootstrap()
    # 5's join arrives repeatedly, always mismatched but always
    # DIFFERENT (it is converging): it must never be failed.
    for round_number in range(6):
        process.handle_ctrl(
            JoinMessage(
                sender=5,
                proc_set=frozenset({1, 5, 100 + round_number}),
                fail_set=frozenset(),
                ring_seq=0,
            ),
            src=5,
        )
        for _tick in range(3):
            process.tick()
        assert 5 not in process._fail_set, "evolving responder was failed"
