"""Differential tests: core engine (original config) vs Totem reference.

The reference in :mod:`repro.totem.reference` is an independent
transcription of the original Ring protocol.  Driving both over the same
workload and first-transmission loss pattern must produce identical
delivery sequences at every participant — the paper's claim that the
accelerated engine with ``Accelerated_window = 0`` and the conservative
priority method *is* the original protocol.
"""

import pytest

from repro import LoopbackRing, Service
from repro.totem import ReferenceRing, original_config
from helpers import FirstTimeLoss, mixed_workload


def run_pair(seed, pids, per_pid, loss_p):
    plan = mixed_workload(seed, pids, per_pid, safe_fraction=0.3)

    ref_loss = FirstTimeLoss(seed + 1000, pids=pids, p=loss_p)
    reference = ReferenceRing(pids, personal_window=40, global_window=240,
                              drop_data=ref_loss.key_drop)
    for pid, payload, service in plan:
        reference.submit(pid, payload, service is Service.SAFE)
    reference.run()

    core_loss = FirstTimeLoss(seed + 1000, pids=pids, p=loss_p)
    core = LoopbackRing(pids, original_config(), drop_data=core_loss)
    for pid, payload, service in plan:
        core.submit(pid, payload, service)
    core.run(max_steps=1_000_000)

    return reference, core, plan


@pytest.mark.parametrize("seed", range(6))
def test_identical_delivery_under_loss(seed):
    pids = list(range(1, 6))
    reference, core, plan = run_pair(seed, pids, per_pid=35, loss_p=0.06)
    for pid in pids:
        assert reference.delivered_payloads(pid) == core.delivered_payloads(pid)
        assert len(reference.delivered_payloads(pid)) == len(plan)


def test_identical_delivery_no_loss_eight_nodes():
    pids = list(range(1, 9))
    reference, core, plan = run_pair(seed=99, pids=pids, per_pid=20, loss_p=0.0)
    for pid in pids:
        assert reference.delivered_seqs(pid) == core.delivered_seqs(pid)


def test_identical_seq_assignment():
    # Not only the delivery order: the seq assigned to each payload must
    # match, i.e. both protocols place every message identically.
    pids = [1, 2, 3]
    reference, core, _plan = run_pair(seed=7, pids=pids, per_pid=30, loss_p=0.05)
    ref_map = {
        m.payload: m.seq for m in reference.participants[1].delivered
    }
    core_map = {m.payload: m.seq for m in core.delivered[1]}
    assert ref_map == core_map


def test_heavy_loss_still_converges_identically():
    pids = [1, 2, 3, 4]
    reference, core, plan = run_pair(seed=11, pids=pids, per_pid=25, loss_p=0.2)
    for pid in pids:
        assert reference.delivered_payloads(pid) == core.delivered_payloads(pid)
        assert len(core.delivered_payloads(pid)) == len(plan)
