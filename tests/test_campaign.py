"""Campaign runner: clean runs, determinism, violation catching."""

import json
import os

from repro.sim import CampaignOptions, FaultSchedule, run_campaign
from repro.sim.campaign import corrupt_first_log


def _options(tmp_path, **overrides):
    params = dict(
        seed=5,
        scenarios=1,
        n_nodes=3,
        out_dir=str(tmp_path),
    )
    params.update(overrides)
    return CampaignOptions(**params)


def test_tiny_campaign_clean_and_byte_identical(tmp_path):
    options = _options(tmp_path)
    summary = run_campaign(options)
    assert summary["failures"] == 0
    for scenario in summary["results"]:
        assert len(scenario["schedule"]) >= 1
        for run in scenario["runs"]:
            assert run["converged"]
            assert run["violations"] == []
            assert run["repro"] is None
            # Workload actually flowed (cleanup-restarted incarnations
            # may legitimately deliver nothing: the workload is stopped
            # before they boot).
            assert all(
                count > 0 for key, count in run["delivered"].items()
                if key.endswith(".0")
            )
    path = summary["summary_path"]
    with open(path, "rb") as handle:
        first = handle.read()
    # Same seed, fresh run: the summary file is byte-identical.
    run_campaign(_options(tmp_path))
    with open(path, "rb") as handle:
        second = handle.read()
    assert first == second


def test_injected_violation_caught_and_shrunk(tmp_path):
    options = _options(
        tmp_path,
        windows=(2,),
        corrupt_logs=corrupt_first_log,
    )
    summary = run_campaign(options)
    assert summary["failures"] == 1
    run = summary["results"][0]["runs"][0]
    assert run["violations"]
    assert run["repro"] is not None and os.path.exists(run["repro"])
    with open(run["repro"]) as handle:
        repro = json.load(handle)
    assert repro["violations"] == run["violations"]
    # The corruption fails regardless of faults, so shrinking strips the
    # schedule entirely — the minimal failing schedule.
    shrunk = FaultSchedule.from_jsonable(repro["schedule"])
    original = FaultSchedule.from_jsonable(repro["original_schedule"])
    assert len(shrunk) < len(original)
    assert len(shrunk) == 0
    # A violation message names a concrete axiom, not just "failed".
    assert any("seq" in v or "synchrony" in v or "contiguous" in v
               for v in run["violations"])
