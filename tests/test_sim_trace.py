"""Tests for the round tracer — and through it, the paper's central
mechanism: acceleration shortens token rounds by overlapping sending
with token passing."""

import pytest

from repro.core import ProtocolConfig, Service
from repro.net import GIGABIT
from repro.sim import LIBRARY, SPREAD, RoundTracer, SimCluster


def traced_run(config, offered_mbps=500, duration_s=0.06, profile=SPREAD):
    cluster = SimCluster(8, GIGABIT, profile, config)
    tracer = RoundTracer(cluster)
    cluster.inject_at_rate(offered_mbps * 1e6, duration_s)
    cluster.run(duration_s, warmup_s=0.0, offered_bps=offered_mbps * 1e6)
    return tracer


ACCEL = ProtocolConfig.accelerated(personal_window=20, accelerated_window=15)
ORIG = ProtocolConfig.original_ring(personal_window=20)


def test_round_times_recorded_for_every_node():
    tracer = traced_run(ACCEL)
    for pid in range(8):
        stats = tracer.stats(pid)
        assert stats.count > 10
        assert 0 < stats.min_round_s <= stats.mean_round_s <= stats.max_round_s


def test_acceleration_shortens_rounds():
    # The core claim of the paper, measured directly: at the same load,
    # the accelerated token completes rounds much faster.
    accel = traced_run(ACCEL, offered_mbps=600)
    orig = traced_run(ORIG, offered_mbps=600)
    assert accel.mean_round_s() < orig.mean_round_s() * 0.6, (
        accel.mean_round_s(), orig.mean_round_s(),
    )


def test_overlap_fraction_reflects_window():
    accel = traced_run(ACCEL, offered_mbps=600)
    orig = traced_run(ORIG, offered_mbps=600)
    assert orig.overlap_fraction() == 0.0  # original never sends post-token
    assert accel.overlap_fraction() > 0.5  # most sends overlap the token


def test_round_time_grows_with_load():
    light = traced_run(ACCEL, offered_mbps=100)
    heavy = traced_run(ACCEL, offered_mbps=800)
    assert heavy.mean_round_s() > light.mean_round_s()


def test_stats_empty_when_node_never_handles():
    cluster = SimCluster(2, GIGABIT, LIBRARY, ACCEL)
    tracer = RoundTracer(cluster)
    # Never started: no handlings recorded.
    assert tracer.stats(0).count == 0
    assert tracer.mean_round_s() == 0.0
    assert tracer.overlap_fraction() == 0.0
