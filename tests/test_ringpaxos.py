"""Tests for the Ring Paxos baseline."""

import pytest

from repro.baselines import run_ringpaxos_point
from repro.net import GIGABIT
from repro.sim import LIBRARY, SPREAD


def test_delivers_offered_load():
    result = run_ringpaxos_point(
        LIBRARY, GIGABIT, 200e6, n_nodes=4,
        duration_s=0.05, warmup_s=0.015,
    )
    assert not result.saturated
    assert result.achieved_bps == pytest.approx(200e6, rel=0.15)
    assert result.latency.count > 100


def test_all_learners_deliver_everything():
    # min-throughput across receivers equals the offered rate: every
    # node learned every decision.
    result = run_ringpaxos_point(
        SPREAD, GIGABIT, 300e6, n_nodes=6,
        duration_s=0.06, warmup_s=0.02,
    )
    assert result.achieved_bps == pytest.approx(300e6, rel=0.15)


def test_latency_includes_quorum_ring():
    # Even at trivial load, latency includes forward + proposal +
    # quorum-ring traversal: it grows with the ring size.
    small = run_ringpaxos_point(LIBRARY, GIGABIT, 50e6, n_nodes=3,
                                duration_s=0.05, warmup_s=0.015)
    large = run_ringpaxos_point(LIBRARY, GIGABIT, 50e6, n_nodes=8,
                                duration_s=0.05, warmup_s=0.015)
    assert large.latency.mean_s > small.latency.mean_s


def test_coordinator_is_the_bottleneck():
    result = run_ringpaxos_point(
        SPREAD, GIGABIT, 900e6, n_nodes=8,
        duration_s=0.08, warmup_s=0.025,
    )
    assert result.saturated or result.achieved_bps < 850e6


def test_zero_rate():
    result = run_ringpaxos_point(LIBRARY, GIGABIT, 0.0, n_nodes=2,
                                 duration_s=0.01, warmup_s=0.0)
    assert result.achieved_bps == 0.0
