"""MultiRingSimCluster end-to-end: oracles, determinism, metrics.

Small M=2 deployments (plus one with a deliberately idle ring) run on
the packet-level simulator; every run must satisfy both ordering
oracles and reproduce byte-identical merged orders across observer
nodes and across same-seed reruns.
"""

import pytest

from repro.multiring import CrossRingChecker, merge_fingerprint
from repro.multiring.sim import MultiRingSimCluster

# One shared small-run shape: short but long enough for ~15 rounds.
RUN = dict(duration_s=0.08, warmup_s=0.02, drain_s=0.04,
           offered_per_ring_bps=80e6)


def _small(seed=7, **kwargs):
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("groups_per_ring", 2)
    kwargs.setdefault("round_interval_s", 0.004)
    return MultiRingSimCluster(2, seed=seed, **kwargs)


def test_m2_run_passes_both_oracles():
    result = _small().run(**RUN)
    assert result.evs_violations == []
    assert result.cross_ring_violations == []
    assert result.ok
    assert result.entries_merged > 0
    assert result.rounds_merged > 10
    assert result.aggregate_msgs_per_s > 0
    assert result.group_latency_p50_s > 0
    assert not any(r.saturated for r in result.per_ring)


def test_merged_order_identical_across_observer_nodes():
    cluster = _small()
    cluster.run(**RUN)
    fingerprints = {
        pid: merge_fingerprint(cluster._merge_from([pid, pid]))
        for pid in range(cluster.n_nodes)
    }
    assert len(set(fingerprints.values())) == 1
    # Mixed observers too: ring 0 read at node 2, ring 1 at node 0.
    assert merge_fingerprint(cluster._merge_from([2, 0])) \
        == fingerprints[0]


def test_same_seed_reruns_are_byte_identical():
    first = _small(seed=11).run(**RUN)
    second = _small(seed=11).run(**RUN)
    assert first.merged_fingerprint == second.merged_fingerprint
    assert first.aggregate_msgs_per_s == second.aggregate_msgs_per_s
    third = _small(seed=12).run(**RUN)
    # Different seed -> different jitter -> (almost surely) a
    # different interleaving; the point is it is still *checked*.
    assert third.ok


def test_idle_ring_rides_on_skips():
    cluster = _small(idle_rings=(1,))
    result = cluster.run(**RUN)
    assert result.ok
    # Every merged entry came from the loaded ring...
    assert {e.ring_index for e in cluster.merger.merged} == {0}
    # ...and the idle ring contributed one skip per merged round.
    assert result.skips_filled >= result.rounds_merged
    assert result.max_ring_lag_rounds <= 1


def test_groups_are_sharded_by_the_partitioner():
    cluster = _small()
    seen = set()
    for shard in cluster.shards:
        assert len(shard) == 2
        seen.update(shard)
    assert len(seen) == 4
    # Every delivered data payload belongs to a group of its ring.
    cluster.run(**RUN)
    for ring_index in range(cluster.n_rings):
        groups = set(cluster.shards[ring_index])
        for _seq, _sender, payload in cluster._data_entries(ring_index, 0):
            assert payload[0] in groups


def test_merge_metrics_registry_snapshot():
    cluster = _small()
    result = cluster.run(**RUN)
    snapshot = cluster.metrics.snapshot()
    cluster_metrics = snapshot["cluster"]
    assert cluster_metrics["multiring.merge.rounds_merged"] \
        == result.rounds_merged
    assert cluster_metrics["multiring.merge.skips_filled"] \
        == result.skips_filled
    assert cluster_metrics["multiring.merge.entries_merged"] \
        == result.entries_merged
    per_node = snapshot["nodes"]
    for ring_index in range(cluster.n_rings):
        node_metrics = per_node[str(ring_index)]
        assert node_metrics["multiring.merge.ring_lag_rounds"] >= 0
        assert node_metrics["multiring.ring.groups"] == 2
        assert node_metrics["multiring.ring.delivered_entries"] > 0


def test_checker_catches_a_corrupted_merge():
    """Self-test of the cross-ring oracle: reorder two merged entries
    and the legal-interleaving check must fire."""
    cluster = _small()
    cluster.run(**RUN)
    merged = list(cluster.merger.merged)
    data_positions = [
        i for i, e in enumerate(merged[:-1])
        if merged[i].ring_index == merged[i + 1].ring_index
    ]
    assert data_positions, "need two adjacent same-ring entries"
    i = data_positions[0]
    merged[i], merged[i + 1] = merged[i + 1], merged[i]
    ring_orders = {
        r: cluster._data_entries(r, 0) for r in range(cluster.n_rings)
    }
    checker = CrossRingChecker()
    checker.check(merged, ring_orders)
    assert not checker.ok


def test_cannot_run_twice():
    cluster = _small()
    cluster.run(**RUN)
    with pytest.raises(RuntimeError):
        cluster.run(**RUN)
