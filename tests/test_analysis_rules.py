"""Static-analysis engine tests: every rule over its fixture corpus.

Each rule id must flag its ``*_bad.py`` fixture and pass its
``*_clean.py`` fixture (tests/fixtures/analysis/); jurisdiction is
checked by re-linting a bad fixture under a driver-side module name.
The suite ends with the self-check the CI gate relies on: the real
``src/repro`` tree lints clean, through both the library and the
``python -m repro.cli lint`` entry point.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze_file,
    analyze_source,
    analyze_tree,
    all_rule_ids,
    load_baseline,
    split_by_baseline,
    write_baseline,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")
SRC_REPRO = os.path.join(
    os.path.dirname(__file__), os.pardir, "src", "repro"
)

#: Module names placing a fixture under each rule family's jurisdiction.
SANS_IO_MOD = "repro.core.fixture"
HOT_PATH_MOD = "repro.net.fixture"
WIRE_MOD = "repro.wire.fixture"
REGISTRY_MOD = AnalysisConfig().tag_registry_module
DRIVER_MOD = "repro.emulation.fixture"  # no rule family applies


def lint_fixture(filename, module):
    path = os.path.join(FIXTURES, filename)
    return analyze_file(path, module)


def rule_ids(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------- cases

BAD_CASES = [
    ("det_time_bad.py", SANS_IO_MOD, "DET-TIME"),
    ("det_entropy_bad.py", SANS_IO_MOD, "DET-ENTROPY"),
    ("det_rng_bad.py", SANS_IO_MOD, "DET-RNG"),
    ("det_setiter_bad.py", SANS_IO_MOD, "DET-SETITER"),
    ("io_import_bad.py", SANS_IO_MOD, "IO-IMPORT"),
    ("slots_missing_bad.py", HOT_PATH_MOD, "SLOT-MISSING"),
    ("slots_incomplete_bad.py", HOT_PATH_MOD, "SLOT-INCOMPLETE"),
    ("slots_dataclass_bad.py", HOT_PATH_MOD, "SLOT-DATACLASS"),
    ("wire_size_bad.py", WIRE_MOD, "WIRE-SIZE"),
    ("wire_tags_dup_bad.py", REGISTRY_MOD, "WIRE-TAG-DUP"),
    ("wire_scatter_bad.py", WIRE_MOD, "WIRE-TAG-SCATTER"),
]

CLEAN_CASES = [
    ("det_time_clean.py", SANS_IO_MOD),
    ("det_entropy_clean.py", SANS_IO_MOD),
    ("det_rng_clean.py", SANS_IO_MOD),
    ("det_setiter_clean.py", SANS_IO_MOD),
    ("io_import_clean.py", SANS_IO_MOD),
    ("slots_clean.py", HOT_PATH_MOD),
    ("wire_size_clean.py", WIRE_MOD),
    ("wire_tags_clean.py", REGISTRY_MOD),
    ("wire_scatter_clean.py", WIRE_MOD),
]


def test_every_rule_id_has_a_bad_and_a_clean_fixture():
    covered = {rule for _f, _m, rule in BAD_CASES}
    assert covered == set(all_rule_ids())


@pytest.mark.parametrize("filename,module,rule", BAD_CASES)
def test_bad_fixture_is_flagged(filename, module, rule):
    findings = lint_fixture(filename, module)
    assert rule in rule_ids(findings), (
        "%s under %s should trigger %s; got %s"
        % (filename, module, rule, [f.render() for f in findings])
    )


@pytest.mark.parametrize("filename,module", CLEAN_CASES)
def test_clean_fixture_passes(filename, module):
    findings = lint_fixture(filename, module)
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("filename,module,rule", BAD_CASES)
def test_jurisdiction_is_by_module_name(filename, module, rule):
    """The same bad source under a driver-side module name is legal."""
    assert lint_fixture(filename, DRIVER_MOD) == []


# ------------------------------------------------------ rule specifics

def test_det_time_flags_each_mechanism():
    findings = lint_fixture("det_time_bad.py", SANS_IO_MOD)
    messages = " ".join(f.message for f in findings)
    assert "imports 'time'" in messages
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages


def test_det_rng_flags_bare_random_instance():
    findings = lint_fixture("det_rng_bad.py", SANS_IO_MOD)
    assert any("without a seed" in f.message for f in findings)
    assert any("process-global" in f.message for f in findings)
    assert any(f.line for f in findings)


def test_setiter_counts_each_site():
    findings = lint_fixture("det_setiter_bad.py", SANS_IO_MOD)
    findings = [f for f in findings if f.rule == "DET-SETITER"]
    assert len(findings) == 3  # for-loop, comprehension, list() call


def test_slots_incomplete_names_the_attribute():
    findings = lint_fixture("slots_incomplete_bad.py", HOT_PATH_MOD)
    assert [f.key for f in findings] == ["WindowTracker.peak"]


def test_wire_size_folds_arithmetic_and_rejects_bad_formats():
    findings = lint_fixture("wire_size_bad.py", WIRE_MOD)
    keys = {f.key for f in findings}
    assert keys == {"size:HEADER_SIZE", "size:FRAME_SIZE", "fmt:_BROKEN"}


def test_wire_tag_dup_covers_both_byte_spaces_and_dict_keys():
    findings = lint_fixture("wire_tags_dup_bad.py", REGISTRY_MOD)
    keys = {f.key for f in findings if f.rule == "WIRE-TAG-DUP"}
    assert "dup:TYPE_JOIN" in keys            # frame byte-space
    assert "dup:OBJECT_TAG_CLIENT_ID" in keys  # shared TLV byte-space
    assert "dictdup:TYPE_NAMES:2" in keys      # collapsed dict key


def test_real_tag_registry_lints_clean():
    path = os.path.join(SRC_REPRO, "wire", "tags.py")
    assert analyze_file(path, REGISTRY_MOD) == []


# ------------------------------------------------- fingerprints/baseline

def test_fingerprints_survive_line_shifts():
    """Baseline fingerprints contain no line numbers, so inserting
    lines above a finding must not change its fingerprint."""
    path = os.path.join(FIXTURES, "det_time_bad.py")
    with open(path) as handle:
        source = handle.read()
    before = analyze_source(source, path, SANS_IO_MOD)
    shifted = "# shim\n# shim\n\n" + source
    after = analyze_source(shifted, path, SANS_IO_MOD)
    assert [f.fingerprint for f in before] == \
        [f.fingerprint for f in after]
    assert [f.line for f in before] != [f.line for f in after]


def test_repeated_findings_get_disambiguated_fingerprints():
    source = (
        "import time\n"
        "def poll():\n"
        "    a = time.time()\n"
        "    b = time.time()\n"
        "    return a, b\n"
    )
    findings = analyze_source(source, "x.py", SANS_IO_MOD)
    fingerprints = [f.fingerprint for f in findings
                    if "time.time@" in f.fingerprint]
    assert len(fingerprints) == 2
    assert len(set(fingerprints)) == 2
    assert fingerprints[1].endswith("#2")


def test_baseline_roundtrip_and_split(tmp_path):
    findings = lint_fixture("det_time_bad.py", SANS_IO_MOD)
    assert findings
    path = str(tmp_path / "lint_baseline.json")
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline == {f.fingerprint for f in findings}
    split = split_by_baseline(findings, baseline)
    assert split["new"] == []
    assert len(split["baselined"]) == len(findings)
    # A finding not in the baseline stays gating.
    other = lint_fixture("det_rng_bad.py", SANS_IO_MOD)
    split = split_by_baseline(other, baseline)
    assert split["new"] == other


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == set()


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "lint_baseline.json"
    path.write_text('{"version": 999, "suppressions": {}}')
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ------------------------------------------------------ the real gate

def test_src_repro_lints_clean_in_process():
    report = analyze_tree(SRC_REPRO)
    assert report.parse_errors == []
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.files_scanned > 80


def test_cli_lint_gate_exits_zero(tmp_path):
    """What ``make lint`` runs: exit 0 and a well-formed JSON report."""
    json_path = str(tmp_path / "lint_report.json")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", SRC_REPRO,
         "--no-baseline", "--json", json_path],
        capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(SRC_REPRO, os.pardir)},
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "lint:" in proc.stderr
    with open(json_path) as handle:
        payload = json.load(handle)
    assert payload["new_count"] == 0
    assert payload["finding_count"] == len(payload["findings"])
    assert payload["files_scanned"] > 80


def test_cli_lint_fails_on_findings(tmp_path):
    """A tree with one bad module makes the gate exit non-zero."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    bad = os.path.join(FIXTURES, "det_time_bad.py")
    with open(bad) as handle:
        (pkg / "clocky.py").write_text(handle.read())
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint",
         str(tmp_path / "repro"), "--no-baseline"],
        capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(SRC_REPRO, os.pardir)},
    )
    assert proc.returncode == 1, proc.stderr + proc.stdout
    assert "DET-TIME" in proc.stdout
