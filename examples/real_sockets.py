#!/usr/bin/env python3
"""The Accelerated Ring over real UDP sockets.

Runs four threaded nodes on 127.0.0.1 — real datagrams through the
kernel, real token acceleration, per the paper's library prototype in
miniature — and verifies the total order end-to-end.

Run:  python examples/real_sockets.py
"""

import time

from repro.core import ProtocolConfig, Service
from repro.emulation import EmulatedRing


def main() -> None:
    config = ProtocolConfig.accelerated(accelerated_window=10)
    print("Starting 4 nodes on localhost UDP ...")
    with EmulatedRing(4, config) as ring:
        started = time.monotonic()
        for pid in range(4):
            for i in range(50):
                service = Service.SAFE if i % 10 == 0 else Service.AGREED
                ring.submit(pid, ("node%d" % pid, i), service)
        collected = ring.collect_deliveries(expected_per_node=200, timeout_s=30.0)
        elapsed = time.monotonic() - started
        sent = sum(n.transport.datagrams_sent for n in ring.nodes.values())

    reference = [m.payload for m in collected[0][:200]]
    for pid in (1, 2, 3):
        assert [m.payload for m in collected[pid][:200]] == reference

    print("All 4 nodes delivered 200 messages in the identical total order.")
    print("Elapsed: %.2f s wall; %d UDP datagrams on the wire." % (elapsed, sent))
    print("First five deliveries: %s" % (reference[:5],))
    print("Safe messages (every 10th) were held for stability before delivery.")


if __name__ == "__main__":
    main()
