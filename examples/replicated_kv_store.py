#!/usr/bin/env python3
"""Replicated key-value store: state-machine replication over groups.

The classic use case the paper's introduction motivates ("maintaining
consistent distributed state"): each replica applies the same totally
ordered stream of operations, so all replicas converge to identical
state without any inter-replica coordination beyond the ordered
multicast itself.

Four daemons host one replica each; three concurrent writers issue
conflicting read-modify-write increments and transfers.  Because every
replica applies the operations in the identical (Agreed) order, the
final states match exactly.

Run:  python examples/replicated_kv_store.py
"""

from repro.core import Service
from repro.spreadlike import GroupMessage, SpreadCluster

GROUP = "kv-replicas"


class KvReplica:
    """One state-machine replica fed by the ordered group stream."""

    def __init__(self, cluster: SpreadCluster, daemon: int, name: str) -> None:
        self.client = cluster.client(name, daemon=daemon)
        self.client.join(GROUP)
        self.store = {}
        self.applied = 0

    def issue(self, op: tuple) -> None:
        """Submit an operation; it takes effect only via the ordered
        stream (even locally)."""
        self.client.multicast(GROUP, op, service=Service.AGREED)

    def apply_pending(self) -> None:
        for event in self.client.receive():
            if not isinstance(event, GroupMessage):
                continue
            self._apply(event.payload)
            self.applied += 1

    def _apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "set":
            _, key, value = op
            self.store[key] = value
        elif kind == "incr":
            _, key, delta = op
            self.store[key] = self.store.get(key, 0) + delta
        elif kind == "transfer":
            _, src, dst, amount = op
            if self.store.get(src, 0) >= amount:  # deterministic guard
                self.store[src] = self.store.get(src, 0) - amount
                self.store[dst] = self.store.get(dst, 0) + amount


def main() -> None:
    cluster = SpreadCluster(n_daemons=4)
    replicas = [
        KvReplica(cluster, daemon=i, name="replica-%d" % i) for i in range(4)
    ]
    cluster.flush()

    # Seed two accounts, then race conflicting updates from three writers.
    replicas[0].issue(("set", "alice", 100))
    replicas[0].issue(("set", "bob", 100))
    for round_number in range(10):
        replicas[0].issue(("incr", "alice", 1))
        replicas[1].issue(("transfer", "alice", "bob", 7))
        replicas[2].issue(("transfer", "bob", "alice", 5))
    cluster.flush()

    for replica in replicas:
        replica.apply_pending()

    states = [replica.store for replica in replicas]
    assert all(state == states[0] for state in states), states
    total = states[0]["alice"] + states[0]["bob"]
    assert total == 210, total  # conservation: transfers + 10 increments

    print("All 4 replicas applied %d operations and converged to:"
          % replicas[0].applied)
    for key in sorted(states[0]):
        print("  %-6s = %d" % (key, states[0][key]))
    print("Conservation check passed (alice + bob = %d)." % total)


if __name__ == "__main__":
    main()
