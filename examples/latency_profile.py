#!/usr/bin/env python3
"""Mini evaluation: the paper's Figure 1 shape on your laptop.

Sweeps offered load on the simulated 1-gigabit testbed (Spread cost
profile) for the original and accelerated protocols and prints the
latency/throughput profile as a table plus an ASCII plot — a fast,
self-contained taste of what `pytest benchmarks/` reproduces in full.

Run:  python examples/latency_profile.py
"""

from repro.bench import tuned_configs
from repro.core import Service
from repro.net import GIGABIT
from repro.sim import SPREAD, run_point

LOADS_MBPS = (100, 300, 500, 700, 800, 900)
BAR_SCALE_US = 18.0  # one # per this many microseconds


def measure(protocol_name):
    config = tuned_configs(GIGABIT)[protocol_name]
    rows = []
    for offered in LOADS_MBPS:
        result = run_point(
            config, SPREAD, GIGABIT, offered * 1e6,
            service=Service.AGREED, duration_s=0.12, warmup_s=0.04,
        )
        rows.append((offered, result))
    return rows


def main() -> None:
    print("Simulating the paper's 1G testbed (8 nodes, Spread profile,")
    print("1350-byte payloads, Agreed delivery)...\n")
    results = {name: measure(name) for name in ("original", "accelerated")}

    print("%8s | %22s | %22s" % ("offered", "original", "accelerated"))
    print("%8s | %22s | %22s" % ("(Mbps)", "latency (us)", "latency (us)"))
    print("-" * 60)
    for index, offered in enumerate(LOADS_MBPS):
        cells = []
        for name in ("original", "accelerated"):
            _, result = results[name][index]
            if result.saturated:
                cells.append("SATURATED")
            else:
                cells.append("%.0f" % result.latency_us)
        print("%8d | %22s | %22s" % (offered, cells[0], cells[1]))

    print("\nLatency profile (each # is %.0f us):" % BAR_SCALE_US)
    for name in ("original", "accelerated"):
        print("  %s:" % name)
        for offered, result in results[name]:
            if result.saturated:
                bar = "~" * 40 + " saturated"
            else:
                bar = "#" * max(1, int(result.latency_us / BAR_SCALE_US))
            print("    %4d Mbps %s" % (offered, bar))

    accel_900 = results["accelerated"][-1][1]
    print(
        "\nThe accelerated protocol sustains %d Mbps at %.0f us — the "
        "original protocol saturates first.\n"
        "(Paper: >920 Mbps vs ~500-800 Mbps on real hardware.)"
        % (LOADS_MBPS[-1], accel_900.latency_us)
    )


if __name__ == "__main__":
    main()
