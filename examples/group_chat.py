#!/usr/bin/env python3
"""Multi-group messaging: Spread-style chat rooms with cross-posting.

Demonstrates the features the paper credits for Spread's production
success (Section I): the client-daemon architecture, many simultaneous
groups, open-group semantics, and multi-group multicast — one send
delivered to the members of several groups with ordering guarantees
that hold ACROSS groups.

Run:  python examples/group_chat.py
"""

from repro.spreadlike import GroupMessage, MembershipNotice, SpreadCluster


def show_stream(label, events) -> None:
    print("  %s sees:" % label)
    for event in events:
        if isinstance(event, GroupMessage):
            print("    [%s] %s: %s"
                  % ("+".join(event.groups), event.sender, event.payload))
        elif isinstance(event, MembershipNotice):
            change = (
                "+%s" % ",".join(str(c) for c in event.joined)
                if event.joined
                else "-%s" % ",".join(str(c) for c in event.left)
            )
            print("    [%s] membership %s -> %d members"
                  % (event.group, change, len(event.members)))


def main() -> None:
    cluster = SpreadCluster(n_daemons=3)

    alice = cluster.client("alice", daemon=0)
    bob = cluster.client("bob", daemon=1)
    carol = cluster.client("carol", daemon=2)
    announcer = cluster.client("announcer", daemon=0)

    alice.join("dev")
    bob.join("dev")
    bob.join("ops")
    carol.join("ops")
    cluster.flush()

    alice.multicast("dev", "the new build is up")
    carol.multicast("ops", "rolling restart at noon")
    # Open-group semantics: the announcer is a member of neither group
    # but can cross-post to both with a single ordered send.
    announcer.multicast(["dev", "ops"], "ALL-HANDS: incident drill at 3pm")
    bob.multicast("dev", "ack, deploying")
    cluster.flush()

    show_stream("alice (dev)", alice.receive())
    show_stream("bob (dev+ops)", bob.receive())
    show_stream("carol (ops)", carol.receive())

    # Bob is in both target groups but received the cross-post once;
    # alice (dev) and carol (ops) saw the same announcement in the same
    # relative order as bob — ordering holds across groups.
    print("\nGroup views are identical on every daemon:")
    for group in ("dev", "ops"):
        views = {d: cluster.group_view(d, group) for d in range(3)}
        assert len({tuple(v) for v in views.values()}) == 1
        print("  %s: %s" % (group, [str(c) for c in views[0]]))


if __name__ == "__main__":
    main()
