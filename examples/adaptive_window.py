#!/usr/bin/env python3
"""Adaptive accelerated-window tuning (extension beyond the paper).

The paper picks the Accelerated_window by hand per deployment.  This
example attaches the AIMD auto-tuner to every node of a simulated 1G
ring, starts from the most conservative setting (window 1 — nearly the
original protocol), and watches it climb to the hand-tuned operating
point while the ring carries 800 Mbps.

Run:  python examples/adaptive_window.py
"""

from repro.core import (
    AcceleratedWindowTuner,
    ProtocolConfig,
    Service,
    TunerConfig,
)
from repro.net import GIGABIT
from repro.sim import SPREAD, SimCluster


def main() -> None:
    config = ProtocolConfig(
        personal_window=20, global_window=200, accelerated_window=1,
    )
    cluster = SimCluster(8, GIGABIT, SPREAD, config,
                         payload_size=1350, service=Service.AGREED)
    tuners = [
        AcceleratedWindowTuner(node.participant, TunerConfig(epoch_rounds=8))
        for node in cluster.nodes.values()
    ]

    # Sample the window of node 0 as simulated time advances.
    samples = []

    def sampler():
        from repro.net import Timeout

        while True:
            yield Timeout(0.01)
            samples.append(
                (cluster.sim.now, cluster.nodes[0].participant.accelerated_window)
            )

    cluster.sim.spawn(sampler(), "sampler")

    print("Driving 800 Mbps through a ring that starts at window=1 ...\n")
    cluster.inject_at_rate(800e6, duration_s=0.3)
    result = cluster.run(0.3, warmup_s=0.15, offered_bps=800e6)

    print("time (ms)   accelerated window at node 0")
    for when, window in samples:
        print("  %6.0f     %2d  %s" % (when * 1e3, window, "#" * window))

    final_windows = sorted(
        node.participant.accelerated_window for node in cluster.nodes.values()
    )
    total_increases = sum(t.increases for t in tuners)
    print("\nFinal windows across nodes: %s (%d increases, %d decreases)"
          % (final_windows, total_increases, sum(t.decreases for t in tuners)))
    print("Steady-state: %.0f Mbps delivered at %.0f us mean latency%s"
          % (result.achieved_mbps, result.latency_us,
             " (saturated!)" if result.saturated else ""))
    print("\nHand-tuning found window~15 best for this setup; the AIMD "
          "controller gets there on its own.")


if __name__ == "__main__":
    main()
