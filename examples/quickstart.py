#!/usr/bin/env python3
"""Quickstart: totally ordered multicast in a few lines.

Builds a 4-participant Accelerated Ring in-process, sends a mix of
Agreed and Safe messages from every participant, and shows that all
participants deliver exactly the same sequence.

Run:  python examples/quickstart.py
"""

from repro import LoopbackRing, ProtocolConfig, Service


def main() -> None:
    # An accelerated ring: participants keep multicasting for up to 10
    # messages after passing the token (the paper's contribution).
    config = ProtocolConfig.accelerated(accelerated_window=10)
    ring = LoopbackRing([1, 2, 3, 4], config)

    # Every participant submits interleaved work.
    for i in range(5):
        for pid in (1, 2, 3, 4):
            ring.submit(pid, payload=f"update-{pid}-{i}", service=Service.AGREED)
    # A Safe message: delivered only once EVERYONE is known to have it.
    ring.submit(1, payload="commit-checkpoint", service=Service.SAFE)

    ring.run()

    # All participants delivered the identical total order.
    reference = ring.delivered_payloads(1)
    for pid in (2, 3, 4):
        assert ring.delivered_payloads(pid) == reference

    print("Delivered %d messages in the same total order everywhere:" % len(reference))
    for index, payload in enumerate(reference, start=1):
        print("  %2d. %s" % (index, payload))

    stats = ring.participants[1].stats
    print("\nParticipant 1 protocol stats: %s" % (stats,))
    print("Safe message was delivered only after stability "
          "(safe bound = %d)." % ring.participants[1].safe_bound)


if __name__ == "__main__":
    main()
