#!/usr/bin/env python3
"""Extended Virtual Synchrony in action: partition, diverge, merge.

Five processes form a ring, a network partition splits them 3/2, both
sides keep ordering messages independently (EVS allows progress in all
partitions — the property Paxos-style systems give up), and when the
network heals the membership algorithm merges them back into one ring,
delivering transitional and regular configuration changes along the way.

Run:  python examples/partition_and_merge.py
"""

from repro.core import Service
from repro.evs import ConfigChange
from repro.harness.evsnet import EVSNetwork


def show_configs(net, pid) -> None:
    print("  process %d configuration history:" % pid)
    for config in net.processes[pid].configurations():
        print("    %-13s members=%s" % (config.kind.value, list(config.members)))


def main() -> None:
    pids = [1, 2, 3, 4, 5]
    net = EVSNetwork(pids)
    steps = net.run_until_converged()
    print("Formed ring %s in %d steps.\n" % (net.processes[1].ring.members, steps))

    for pid in pids:
        net.submit(pid, ("pre-partition", pid), Service.AGREED)
    net.run_quiet(300)

    print("Partitioning {1,2,3} | {4,5} ...")
    net.set_partition({1, 2, 3}, {4, 5})
    net.run_until_converged()
    print("  left ring:  %s" % (net.processes[1].ring.members,))
    print("  right ring: %s\n" % (net.processes[4].ring.members,))

    # Both components make independent progress.
    net.submit(1, ("left-side-work", 1), Service.SAFE)
    net.submit(4, ("right-side-work", 4), Service.SAFE)
    net.run_quiet(400)

    left_sees = [m.payload for m in net.processes[2].delivered_messages()]
    right_sees = [m.payload for m in net.processes[5].delivered_messages()]
    assert ("left-side-work", 1) in left_sees
    assert ("left-side-work", 1) not in right_sees
    assert ("right-side-work", 4) in right_sees
    print("Both partitions ordered their own messages (no leakage).\n")

    print("Healing the network ...")
    net.heal()
    net.run_until_converged()
    print("  merged ring: %s\n" % (net.processes[1].ring.members,))

    for pid in pids:
        net.submit(pid, ("post-merge", pid), Service.AGREED)
    net.run_quiet(400)
    tails = {
        pid: [m.payload for m in net.processes[pid].delivered_messages()][-5:]
        for pid in pids
    }
    assert all(tail == tails[1] for tail in tails.values())
    print("Post-merge messages totally ordered across all 5 processes.\n")

    show_configs(net, 1)
    show_configs(net, 4)


if __name__ == "__main__":
    main()
