"""repro — a reproduction of "Fast Total Ordering for Modern Data Centers".

The package implements the Accelerated Ring totally ordered multicast
protocol (Babay & Amir, ICDCS 2016) together with everything needed to
reproduce the paper's evaluation:

* :mod:`repro.core` — the sans-IO protocol engine (the contribution);
* :mod:`repro.totem` — the original Totem Ring baseline;
* :mod:`repro.net` — a discrete-event network substrate (1G/10G switches);
* :mod:`repro.sim` — protocol nodes bound to the substrate, with the
  paper's three implementation profiles (library / daemon / Spread);
* :mod:`repro.membership` — Totem-style membership with EVS semantics;
* :mod:`repro.spreadlike` — a Spread-like daemon/group layer;
* :mod:`repro.emulation` — the protocol over real UDP sockets;
* :mod:`repro.bench` — the harness that regenerates Figures 1-7.
"""

from .core import (
    AcceleratedWindowTuner,
    DataMessage,
    Participant,
    PriorityMethod,
    ProtocolConfig,
    Ring,
    Service,
    Token,
    TunerConfig,
    initial_token,
)
from .harness import LoopbackRing

__version__ = "1.0.0"

__all__ = [
    "Participant", "ProtocolConfig", "PriorityMethod", "Service",
    "Ring", "Token", "DataMessage", "initial_token",
    "AcceleratedWindowTuner", "TunerConfig",
    "LoopbackRing",
    "__version__",
]
