"""Fixed-sequencer total-order baseline (JGroups-SEQUENCER style).

Section V of the paper compares the token approach against
sequencer-based systems (JGroups, Isis2): a sender forwards its message
to a fixed coordinator, which assigns the sequence number and multicasts
it to everyone.  Built on the same network substrate and cost profiles
as the ring protocols, so the comparison bench
(`benchmarks/test_related_sequencer.py`) is apples-to-apples.

The structural trade-off this reproduces: the sequencer pays CPU for
every message in the system twice (receive from sender + multicast), so
it becomes the bottleneck at roughly half the ring's aggregate rate,
while at low load it has lower latency than the ring (no waiting for a
token rotation).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from ..core import Service
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from ..sim.latency import LatencyRecorder, LatencySummary
from ..sim.profiles import CostProfile


@dataclass(frozen=True)
class SequencedMessage:
    seq: int
    sender: int
    payload_size: int
    submitted_at: float


@dataclass(frozen=True)
class ForwardedMessage:
    sender: int
    payload_size: int
    submitted_at: float


class _SequencerHost:
    """Single-threaded host; pid 0 doubles as the sequencer."""

    def __init__(self, sim, pid, spec, profile, switch, recorder,
                 sequencer_pid=0):
        self.sim = sim
        self.pid = pid
        self.spec = spec
        self.profile = profile
        self.recorder = recorder
        self.sequencer_pid = sequencer_pid
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._inbox: Deque[Frame] = deque()
        self._inbox_bytes = 0
        self._wakeup = sim.signal("seqhost%d" % pid)
        self._next_seq = 1  # sequencer only
        self._delivered_upto = 0
        self._holdback: Dict[int, SequencedMessage] = {}
        self.socket_drops = 0
        sim.spawn(self._loop(), "seqcpu%d" % pid)

    def submit(self, payload_size: int) -> None:
        message = ForwardedMessage(self.pid, payload_size, self.sim.now)
        if self.pid == self.sequencer_pid:
            # Local fast path: the coordinator orders its own messages
            # without a network hop, but still pays the CPU.
            self._inbox.append(
                Frame(self.pid, self.pid, Traffic.DATA,
                      payload_size + self.profile.header_bytes, message)
            )
            self._wakeup.fire()
        else:
            self.nic.send(
                Frame(self.pid, self.sequencer_pid, Traffic.DATA,
                      payload_size + self.profile.header_bytes, message)
            )

    def _on_frame(self, frame: Frame) -> None:
        wire = frame.wire_bytes()
        if self._inbox_bytes + wire > self.spec.socket_buffer_bytes:
            self.socket_drops += 1
            return
        self._inbox.append(frame)
        self._inbox_bytes += wire
        self._wakeup.fire()

    def _loop(self):
        profile = self.profile
        while True:
            if not self._inbox:
                yield self._wakeup
                continue
            frame = self._inbox.popleft()
            self._inbox_bytes = max(0, self._inbox_bytes - frame.wire_bytes())
            message = frame.payload
            yield Timeout(profile.data_recv_cost(
                getattr(message, "payload_size", 0)))
            if isinstance(message, ForwardedMessage):
                # We are the sequencer: assign the order and multicast.
                sequenced = SequencedMessage(
                    self._next_seq, message.sender,
                    message.payload_size, message.submitted_at,
                )
                self._next_seq += 1
                yield Timeout(profile.data_send_cost(message.payload_size))
                self.nic.send(
                    Frame(self.pid, None, Traffic.DATA,
                          message.payload_size + profile.header_bytes,
                          sequenced)
                )
                # The sequencer delivers locally as well.
                for pause in self._deliver_in_order(sequenced):
                    yield pause
            else:
                for pause in self._deliver_in_order(message):
                    yield pause

    def _deliver_in_order(self, message: SequencedMessage):
        self._holdback[message.seq] = message
        while self._delivered_upto + 1 in self._holdback:
            ready = self._holdback.pop(self._delivered_upto + 1)
            self._delivered_upto += 1
            yield Timeout(self.profile.deliver_cost(ready.payload_size))
            self.recorder.record(
                self.pid, Service.AGREED, ready.submitted_at,
                self.sim.now, ready.payload_size,
            )


@dataclass
class SequencerResult:
    offered_bps: float
    achieved_bps: float
    latency: LatencySummary
    saturated: bool
    socket_drops: int

    @property
    def latency_us(self) -> float:
        return self.latency.mean_s * 1e6


def run_sequencer_point(
    profile: CostProfile,
    spec: LinkSpec,
    offered_bps: float,
    n_nodes: int = 8,
    payload_size: int = 1350,
    duration_s: float = 0.25,
    warmup_s: float = 0.08,
    seed: int = 0,
) -> SequencerResult:
    """One throughput/latency measurement of the sequencer baseline."""
    sim = Simulator()
    switch = Switch(sim, spec)
    recorder = LatencyRecorder(warmup_until_s=warmup_s)
    hosts = [
        _SequencerHost(sim, pid, spec, profile, switch, recorder)
        for pid in range(n_nodes)
    ]
    per_node_rate = offered_bps / n_nodes / (payload_size * 8.0)
    rng = random.Random(seed)

    def injector(host, offset):
        yield Timeout(offset)
        interval = 1.0 / per_node_rate
        while sim.now < duration_s:
            host.submit(payload_size)
            yield Timeout(interval * (1.0 + 0.05 * (rng.random() - 0.5)))

    if per_node_rate > 0:
        for index, host in enumerate(hosts):
            sim.spawn(
                injector(host, index / per_node_rate / n_nodes),
                "seqinject%d" % index,
            )
    sim.run(until=duration_s)
    window = duration_s - warmup_s
    achieved = recorder.min_throughput_bps(window)
    # Undelivered messages stuck at the sequencer indicate saturation.
    backlog = sum(len(h._holdback) + len(h._inbox) for h in hosts)
    return SequencerResult(
        offered_bps=offered_bps,
        achieved_bps=achieved,
        latency=recorder.summary(),
        saturated=achieved < offered_bps * 0.9 or backlog > 200,
        socket_drops=sum(h.socket_drops for h in hosts),
    )
