"""Non-token total-order comparators (Section V of the paper)."""

from .ringpaxos import RingPaxosResult, run_ringpaxos_point
from .sequencer import SequencerResult, run_sequencer_point

__all__ = [
    "run_sequencer_point", "SequencerResult",
    "run_ringpaxos_point", "RingPaxosResult",
]
