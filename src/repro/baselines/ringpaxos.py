"""Ring-Paxos-style atomic broadcast baseline (Section V comparator).

A simplified Ring Paxos (Marandi et al., DSN 2010) on the same
substrate: proposers forward values to a coordinator, the coordinator
IP-multicasts a proposal, acceptance acks travel along a ring of
acceptors (a majority quorum), and the closing acceptor's ack lets the
coordinator multicast a small decision; learners deliver in instance
order once decided.  Delivery therefore carries quorum stability —
comparable to the ring protocols' Safe service, which is what the paper
compares it against (U-Ring Paxos reaches ~750 Mbps on 1G with
1350-byte messages, with a latency profile similar to the original
Ring protocol's Safe delivery).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from ..core import Service
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from ..sim.latency import LatencyRecorder, LatencySummary
from ..sim.profiles import CostProfile

#: Size of ack/decision control messages on the wire.
CTRL_SIZE = 64


@dataclass(frozen=True)
class Forward:
    sender: int
    payload_size: int
    submitted_at: float


@dataclass(frozen=True)
class Proposal:
    instance: int
    sender: int
    payload_size: int
    submitted_at: float


@dataclass(frozen=True)
class Ack:
    instance: int
    hop: int


@dataclass(frozen=True)
class Decision:
    instance: int


class _PaxosNode:
    """One node; node 0 is coordinator/first acceptor."""

    def __init__(self, sim, pid, n_nodes, quorum, spec, profile, switch,
                 recorder):
        self.sim = sim
        self.pid = pid
        self.n_nodes = n_nodes
        self.quorum = quorum
        self.spec = spec
        self.profile = profile
        self.recorder = recorder
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._inbox: Deque[Frame] = deque()
        self._inbox_bytes = 0
        self._wakeup = sim.signal("paxos%d" % pid)
        self._next_instance = 1
        self._proposals: Dict[int, Proposal] = {}
        self._decided: set = set()
        self._delivered_upto = 0
        self.socket_drops = 0
        sim.spawn(self._loop(), "paxoscpu%d" % pid)

    # -- client-facing ------------------------------------------------------

    def submit(self, payload_size: int) -> None:
        forward = Forward(self.pid, payload_size, self.sim.now)
        if self.pid == 0:
            self._enqueue_local(forward, payload_size)
        else:
            self.nic.send(
                Frame(self.pid, 0, Traffic.DATA,
                      payload_size + self.profile.header_bytes, forward)
            )

    def _enqueue_local(self, obj, size) -> None:
        self._inbox.append(
            Frame(self.pid, self.pid, Traffic.DATA,
                  size + self.profile.header_bytes, obj)
        )
        self._wakeup.fire()

    # -- network ------------------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        wire = frame.wire_bytes()
        if self._inbox_bytes + wire > self.spec.socket_buffer_bytes:
            self.socket_drops += 1
            return
        self._inbox.append(frame)
        self._inbox_bytes += wire
        self._wakeup.fire()

    # -- the node loop -----------------------------------------------------------

    def _loop(self):
        profile = self.profile
        while True:
            if not self._inbox:
                yield self._wakeup
                continue
            frame = self._inbox.popleft()
            self._inbox_bytes = max(0, self._inbox_bytes - frame.wire_bytes())
            message = frame.payload
            yield Timeout(profile.data_recv_cost(
                getattr(message, "payload_size", CTRL_SIZE)))
            if isinstance(message, Forward):
                # Coordinator: open an instance and multicast it.
                proposal = Proposal(
                    self._next_instance, message.sender,
                    message.payload_size, message.submitted_at,
                )
                self._next_instance += 1
                self._proposals[proposal.instance] = proposal
                yield Timeout(profile.data_send_cost(proposal.payload_size))
                self.nic.send(
                    Frame(self.pid, None, Traffic.DATA,
                          proposal.payload_size + profile.header_bytes,
                          proposal)
                )
                # The coordinator is acceptor 0: its own ack starts the
                # ring at acceptor 1.
                yield Timeout(profile.send_token_cpu_s)
                self.nic.send(
                    Frame(self.pid, 1 % self.n_nodes, Traffic.TOKEN,
                          CTRL_SIZE, Ack(proposal.instance, hop=1))
                )
            elif isinstance(message, Proposal):
                self._proposals[message.instance] = message
                for pause in self._maybe_deliver():
                    yield pause
            elif isinstance(message, Ack):
                if message.hop + 1 < self.quorum:
                    # Accept and forward along the acceptor ring.
                    yield Timeout(profile.send_token_cpu_s)
                    self.nic.send(
                        Frame(self.pid, (self.pid + 1) % self.n_nodes,
                              Traffic.TOKEN, CTRL_SIZE,
                              Ack(message.instance, message.hop + 1))
                    )
                else:
                    # Quorum complete: multicast the decision.
                    yield Timeout(profile.send_token_cpu_s)
                    self.nic.send(
                        Frame(self.pid, None, Traffic.TOKEN,
                              CTRL_SIZE, Decision(message.instance))
                    )
                    self._decided.add(message.instance)
                    for pause in self._maybe_deliver():
                        yield pause
            elif isinstance(message, Decision):
                self._decided.add(message.instance)
                for pause in self._maybe_deliver():
                    yield pause

    def _maybe_deliver(self):
        while True:
            nxt = self._delivered_upto + 1
            proposal = self._proposals.get(nxt)
            if proposal is None or nxt not in self._decided:
                return
            self._delivered_upto = nxt
            yield Timeout(self.profile.deliver_cost(proposal.payload_size))
            self.recorder.record(
                self.pid, Service.SAFE, proposal.submitted_at,
                self.sim.now, proposal.payload_size,
            )


@dataclass
class RingPaxosResult:
    offered_bps: float
    achieved_bps: float
    latency: LatencySummary
    saturated: bool

    @property
    def latency_us(self) -> float:
        return self.latency.mean_s * 1e6

    @property
    def achieved_mbps(self) -> float:
        return self.achieved_bps / 1e6


def run_ringpaxos_point(
    profile: CostProfile,
    spec: LinkSpec,
    offered_bps: float,
    n_nodes: int = 8,
    payload_size: int = 1350,
    duration_s: float = 0.15,
    warmup_s: float = 0.05,
    seed: int = 0,
) -> RingPaxosResult:
    """One throughput/latency point of the Ring Paxos baseline."""
    sim = Simulator()
    switch = Switch(sim, spec)
    recorder = LatencyRecorder(warmup_until_s=warmup_s)
    quorum = n_nodes // 2 + 1
    nodes = [
        _PaxosNode(sim, pid, n_nodes, quorum, spec, profile, switch, recorder)
        for pid in range(n_nodes)
    ]
    per_node_rate = offered_bps / n_nodes / (payload_size * 8.0)
    rng = random.Random(seed)

    def injector(node, offset):
        yield Timeout(offset)
        interval = 1.0 / per_node_rate
        while sim.now < duration_s:
            node.submit(payload_size)
            yield Timeout(interval * (1.0 + 0.05 * (rng.random() - 0.5)))

    if per_node_rate > 0:
        for index, node in enumerate(nodes):
            sim.spawn(injector(node, index / per_node_rate / n_nodes),
                      "paxosinject%d" % index)
    sim.run(until=duration_s)
    window = duration_s - warmup_s
    achieved = recorder.min_throughput_bps(window)
    backlog = sum(
        len(n._proposals) - n._delivered_upto for n in nodes if n.pid == 0
    )
    return RingPaxosResult(
        offered_bps=offered_bps,
        achieved_bps=achieved,
        latency=recorder.summary(),
        saturated=achieved < offered_bps * 0.9 or backlog > 200,
    )
