"""Loss models for fault-injection.

The switch already drops frames on genuine buffer overflow; these models
inject *additional* loss so tests can exercise retransmission, token loss,
and the accelerated protocol's retransmission discipline under controlled,
reproducible conditions.  All randomness is seeded.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Set

from .frames import Frame, Traffic

#: A loss model is a predicate: return True to DROP the frame.
LossModel = Callable[[Frame], bool]


def no_loss(_frame: Frame) -> bool:
    """The default: drop nothing beyond real buffer overflow."""
    return False


def derive_port_loss(loss: LossModel, port_host: int) -> LossModel:
    """The per-port view of a loss model for one switch egress port.

    Models that expose ``for_port`` (seeded stochastic models,
    :class:`ReceiverLoss`) return a port-specific derivation so drop
    outcomes never depend on port iteration order; plain callables
    (deterministic predicates) are shared as-is.
    """
    for_port = getattr(loss, "for_port", None)
    if for_port is not None:
        return for_port(port_host)
    return loss


def _derive_port_seed(seed: int, port_host: int) -> int:
    """A stable per-port RNG seed, independent of port install order."""
    return (seed * 1_000_003 + 7919 * (port_host + 1)) & 0x7FFFFFFF


class BernoulliLoss:
    """Drop each frame independently with probability ``p`` (seeded).

    One instance holds ONE RNG; installing the same instance on several
    switch ports would make each port's drop outcomes depend on the
    order the ports happen to consume the shared stream.  Use
    :meth:`for_port` to derive an independently seeded per-port model
    (drops still aggregate into this instance's ``dropped``).
    """

    __slots__ = ("p", "seed", "spare_token", "_rng", "_parent", "dropped")

    def __init__(self, p: float, seed: int = 0, spare_token: bool = False) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0, 1], got %r" % p)
        self.p = p
        self.seed = seed
        self.spare_token = spare_token
        self._rng = random.Random(seed)
        self._parent: Optional["BernoulliLoss"] = None
        self.dropped = 0

    def for_port(self, port_host: int) -> "BernoulliLoss":
        """An independent per-port copy, deterministically seeded.

        The derived seed depends only on (base seed, port id), so drop
        outcomes on one port never depend on which other ports exist or
        in what order frames hit them.
        """
        child = BernoulliLoss(
            self.p, seed=_derive_port_seed(self.seed, port_host),
            spare_token=self.spare_token,
        )
        child._parent = self
        return child

    def __call__(self, frame: Frame) -> bool:
        if self.spare_token and frame.traffic is Traffic.TOKEN:
            return False
        if self._rng.random() < self.p:
            self.dropped += 1
            if self._parent is not None:
                self._parent.dropped += 1
            return True
        return False


class TargetedLoss:
    """Drop specific frames by predicate — deterministic fault injection.

    Example: drop the 3rd data frame from host 2, or every token once.
    """

    __slots__ = ("_should_drop", "_max_drops", "dropped")

    def __init__(self, should_drop: Callable[[Frame], bool], max_drops: Optional[int] = None) -> None:
        self._should_drop = should_drop
        self._max_drops = max_drops
        self.dropped = 0

    def __call__(self, frame: Frame) -> bool:
        if self._max_drops is not None and self.dropped >= self._max_drops:
            return False
        if self._should_drop(frame):
            self.dropped += 1
            return True
        return False


class SequenceLoss:
    """Drop data frames whose protocol message carries a listed seq.

    The payload must expose a ``seq`` attribute (our DataMessage does);
    frames without one are never dropped.  Each seq is dropped at most
    ``times`` times, so retransmissions eventually get through.
    """

    __slots__ = ("_remaining", "dropped")

    def __init__(self, seqs: Iterable[int], times: int = 1) -> None:
        self._remaining = {seq: times for seq in seqs}
        self.dropped = 0

    def __call__(self, frame: Frame) -> bool:
        # The traffic check MUST come first: tokens also expose a ``seq``
        # attribute, so reading the payload before checking the traffic
        # class would miscount (and potentially drop) token frames whose
        # seq happens to be listed.
        if frame.traffic is not Traffic.DATA:
            return False
        seq = getattr(frame.payload, "seq", None)
        if seq is None:
            return False
        left = self._remaining.get(seq, 0)
        if left > 0:
            self._remaining[seq] = left - 1
            self.dropped += 1
            return True
        return False


class PerFragmentLoss:
    """Frame-level loss applied per Ethernet fragment of a datagram.

    The paper's Section IV-A-3 caveat for large UDP datagrams: "the
    loss of a single frame results in the loss of the whole datagram".
    A datagram spanning k fragments is therefore lost with probability
    1 - (1 - p)^k — loss amplification that grows with payload size.
    """

    __slots__ = ("p", "seed", "spare_token", "_rng", "_parent",
                 "dropped", "fragments_seen")

    def __init__(self, p_per_fragment: float, seed: int = 0,
                 spare_token: bool = True) -> None:
        if not 0.0 <= p_per_fragment <= 1.0:
            raise ValueError("fragment loss probability must be in [0, 1]")
        self.p = p_per_fragment
        self.seed = seed
        self.spare_token = spare_token
        self._rng = random.Random(seed)
        self._parent: Optional["PerFragmentLoss"] = None
        self.dropped = 0
        self.fragments_seen = 0

    def for_port(self, port_host: int) -> "PerFragmentLoss":
        """An independent per-port copy, deterministically seeded (see
        :meth:`BernoulliLoss.for_port`)."""
        child = PerFragmentLoss(
            self.p, seed=_derive_port_seed(self.seed, port_host),
            spare_token=self.spare_token,
        )
        child._parent = self
        return child

    def __call__(self, frame: Frame) -> bool:
        if self.spare_token and frame.traffic is Traffic.TOKEN:
            return False
        fragments = frame.fragment_count()
        self.fragments_seen += fragments
        if self._parent is not None:
            self._parent.fragments_seen += fragments
        for _fragment in range(fragments):
            if self._rng.random() < self.p:
                self.dropped += 1
                if self._parent is not None:
                    self._parent.dropped += 1
                return True
        return False


class ReceiverLoss:
    """Drop frames only on the path to specific receivers.

    The switch applies loss per output port, so a multicast frame can be
    lost by one participant and received by the rest — the scenario that
    makes retransmission requests participant-specific.
    """

    __slots__ = ("_receivers", "_inner", "dropped")

    def __init__(self, receivers: Iterable[int], inner: LossModel) -> None:
        self._receivers: Set[int] = set(receivers)
        self._inner = inner
        self.dropped = 0

    def for_port(self, port_host: int) -> LossModel:
        def model(frame: Frame) -> bool:
            if port_host not in self._receivers:
                return False
            if self._inner(frame):
                self.dropped += 1
                return True
            return False

        return model
