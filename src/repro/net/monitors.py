"""Network observability: byte/frame accounting across the fabric.

Used by benchmarks to report achieved utilization and by tests to assert
conservation properties (bytes in == bytes out + drops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .engine import Simulator, Timeout
from .nic import Nic
from .switch import Switch


@dataclass
class FabricSnapshot:
    """Aggregated counters at one instant."""

    time: float
    frames_sent: int
    bytes_sent: int
    frames_forwarded: int
    switch_drops: int
    nic_drops: int
    max_port_queue_bytes: int


class FabricMonitor:
    """Aggregates NIC and switch counters; can sample queue depths."""

    def __init__(self, sim: Simulator, switch: Switch, nics: List[Nic]) -> None:
        self.sim = sim
        self.switch = switch
        self.nics = nics
        self.samples: List[FabricSnapshot] = []

    def snapshot(self) -> FabricSnapshot:
        ports = [self.switch.port(h) for h in self.switch.host_ids]
        return FabricSnapshot(
            time=self.sim.now,
            frames_sent=sum(n.frames_sent for n in self.nics),
            bytes_sent=sum(n.bytes_sent for n in self.nics),
            frames_forwarded=sum(p.frames_forwarded for p in ports),
            switch_drops=self.switch.total_drops(),
            nic_drops=sum(n.drops_overflow for n in self.nics),
            max_port_queue_bytes=max((p.max_queue_bytes for p in ports), default=0),
        )

    def sample_periodically(self, interval_s: float) -> None:
        """Spawn a process recording a snapshot every ``interval_s``."""

        def sampler():
            while True:
                yield Timeout(interval_s)
                self.samples.append(self.snapshot())

        self.sim.spawn(sampler(), "fabric-monitor")

    def utilization(self, link_rate_bps: float, window_s: float) -> float:
        """Fraction of one link's capacity used by forwarded bytes/window."""
        if window_s <= 0:
            return 0.0
        snap = self.snapshot()
        return (snap.bytes_sent * 8.0 / window_s) / link_rate_bps
