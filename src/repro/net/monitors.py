"""Network observability: byte/frame accounting across the fabric.

Used by benchmarks to report achieved utilization and by tests to assert
conservation properties (bytes in == bytes out + drops).  When a
:class:`repro.obs.registry.MetricsRegistry` is attached
(:meth:`FabricMonitor.register_metrics`), every fabric counter is also
readable through the registry's unified namespace — the monitor stays
the thin aggregation shim over the same live NIC/switch attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .engine import Simulator, Timeout
from .nic import Nic
from .switch import Switch


@dataclass(slots=True)
class FabricSnapshot:
    """Aggregated counters at one instant."""

    time: float
    frames_sent: int
    bytes_sent: int
    frames_forwarded: int
    switch_drops: int
    nic_drops: int
    max_port_queue_bytes: int
    #: Switch-ingress frames per traffic class ("data", "jumbo", "token",
    #: "gossip", "ctrl") — conservation asserts can separate the control
    #: plane from the data plane.
    frames_by_class: Dict[str, int] = field(default_factory=dict)
    #: Switch-ingress wire bytes per traffic class.
    bytes_by_class: Dict[str, int] = field(default_factory=dict)


class FabricMonitor:
    """Aggregates NIC and switch counters; can sample queue depths."""

    __slots__ = ("sim", "switch", "nics", "samples")

    def __init__(self, sim: Simulator, switch: Switch, nics: List[Nic]) -> None:
        self.sim = sim
        self.switch = switch
        self.nics = nics
        self.samples: List[FabricSnapshot] = []

    def snapshot(self) -> FabricSnapshot:
        ports = [self.switch.port(h) for h in self.switch.host_ids]
        return FabricSnapshot(
            time=self.sim.now,
            frames_sent=sum(n.frames_sent for n in self.nics),
            bytes_sent=sum(n.bytes_sent for n in self.nics),
            frames_forwarded=sum(p.frames_forwarded for p in ports),
            switch_drops=self.switch.total_drops(),
            nic_drops=sum(n.drops_overflow for n in self.nics),
            max_port_queue_bytes=max((p.max_queue_bytes for p in ports), default=0),
            frames_by_class=dict(self.switch.class_frames),
            bytes_by_class=dict(self.switch.class_bytes),
        )

    def register_metrics(self, registry) -> None:
        """Expose the fabric counters through a MetricsRegistry.

        Every metric is a zero-cost bound view over the same live NIC /
        switch-port attributes this monitor already sums — nothing on
        the frame path changes.  Per-node scopes use the NIC/port host
        id; switch-wide counters are unscoped.
        """
        for nic in self.nics:
            pid = nic.host_id
            registry.bind("net.nic.frames_sent", nic, "frames_sent", node=pid)
            registry.bind("net.nic.bytes_sent", nic, "bytes_sent", node=pid)
            registry.bind("net.nic.drops_overflow", nic, "drops_overflow",
                          node=pid)
        for host_id in self.switch.host_ids:
            port = self.switch.port(host_id)
            registry.bind("net.port.frames_forwarded", port,
                          "frames_forwarded", node=host_id)
            registry.bind("net.port.bytes_forwarded", port,
                          "bytes_forwarded", node=host_id)
            registry.bind("net.port.drops_overflow", port,
                          "drops_overflow", node=host_id)
            registry.bind("net.port.drops_injected", port,
                          "drops_injected", node=host_id)
            registry.bind("net.port.queued_bytes", port, "queued_bytes",
                          node=host_id, kind="gauge")
            registry.bind("net.port.max_queue_bytes", port,
                          "max_queue_bytes", node=host_id, kind="gauge")
        switch = self.switch
        registry.bind("net.switch.frames_received", switch, "frames_received")
        registry.bind("net.switch.drops_partition", switch, "drops_partition")
        registry.bind("net.switch.drops_fault", switch, "drops_fault")
        for cls in switch.class_frames:
            registry.bind_fn(
                "net.switch.class.%s.frames" % cls,
                (lambda c=cls: switch.class_frames.get(c, 0)),
                kind="counter",
            )
            registry.bind_fn(
                "net.switch.class.%s.bytes" % cls,
                (lambda c=cls: switch.class_bytes.get(c, 0)),
                kind="counter",
            )

    def sample_periodically(self, interval_s: float) -> None:
        """Spawn a process recording a snapshot every ``interval_s``."""

        def sampler():
            while True:
                yield Timeout(interval_s)
                self.samples.append(self.snapshot())

        self.sim.spawn(sampler(), "fabric-monitor")

    def utilization(self, link_rate_bps: float, window_s: float) -> float:
        """Fraction of one link's capacity used by forwarded bytes/window."""
        if window_s <= 0:
            return 0.0
        snap = self.snapshot()
        return (snap.bytes_sent * 8.0 / window_s) / link_rate_bps
