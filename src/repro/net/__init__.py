"""Discrete-event network substrate.

Models the testbed the paper ran on: hosts with line-rate NICs attached to
a store-and-forward switch with finite per-port buffers, supporting
unicast and multicast datagrams, with seeded loss injection.

Public surface::

    from repro.net import Simulator, Timeout, Signal
    from repro.net import Frame, Traffic, LinkSpec, GIGABIT, TEN_GIGABIT
    from repro.net import Nic, Switch, FabricMonitor
"""

from .engine import Latch, Process, Signal, SimulationError, Simulator, Timeout
from .frames import ETHERNET_MTU, WIRE_OVERHEAD, Frame, Traffic
from .links import GIGABIT, PRESETS, TEN_GIGABIT, TEN_MEGABIT, LinkSpec
from .loss import (
    BernoulliLoss,
    PerFragmentLoss,
    ReceiverLoss,
    SequenceLoss,
    TargetedLoss,
    derive_port_loss,
    no_loss,
)
from .monitors import FabricMonitor, FabricSnapshot
from .nic import Nic
from .switch import Switch, SwitchPort

__all__ = [
    "Simulator", "Timeout", "Signal", "Latch", "Process", "SimulationError",
    "Frame", "Traffic", "WIRE_OVERHEAD", "ETHERNET_MTU",
    "LinkSpec", "GIGABIT", "TEN_GIGABIT", "TEN_MEGABIT", "PRESETS",
    "no_loss", "derive_port_loss",
    "BernoulliLoss", "TargetedLoss", "SequenceLoss", "ReceiverLoss",
    "PerFragmentLoss",
    "Nic", "Switch", "SwitchPort",
    "FabricMonitor", "FabricSnapshot",
]
