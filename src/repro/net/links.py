"""Link and switch presets for the paper's two testbeds.

The paper's benchmarks run on a 1-gigabit Cisco Catalyst 2960 and a
10-gigabit Arista 7100T.  The numbers below model the quantities the
protocol is sensitive to: line rate (serialization delay), one-way
propagation/NIC latency, store-and-forward switch forwarding latency, and
per-output-port buffering (whose exhaustion is what bounds how much
multicast overlap the accelerated protocol can exploit).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """Physical parameters of a host<->switch link plus the switch path."""

    name: str
    #: Line rate in bits per second (both host NIC and switch port).
    rate_bps: float
    #: One-way propagation + PHY latency host<->switch, seconds.
    propagation_s: float
    #: Fixed switch forwarding latency (lookup + crossbar), seconds.
    switch_latency_s: float
    #: Per-output-port buffer on the switch, bytes.  Small shared-buffer
    #: switches (Catalyst 2960 class) drop multicast bursts readily.
    port_buffer_bytes: int
    #: Host NIC transmit queue, bytes (qdisc + ring buffer).
    nic_queue_bytes: int
    #: Per-socket receive buffer at the host, bytes (SO_RCVBUF).
    socket_buffer_bytes: int

    def serialization_s(self, wire_bytes: int) -> float:
        """Time to clock ``wire_bytes`` onto the link."""
        return wire_bytes * 8.0 / self.rate_bps

    def with_overrides(self, **kwargs) -> "LinkSpec":
        """A copy with selected fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)


#: 1-gigabit testbed (Catalyst 2960 class): modest forwarding latency,
#: small per-port buffering.
GIGABIT = LinkSpec(
    name="1G",
    rate_bps=1e9,
    propagation_s=2e-6,
    switch_latency_s=4e-6,
    port_buffer_bytes=384 * 1024,
    nic_queue_bytes=2 * 1024 * 1024,
    socket_buffer_bytes=4 * 1024 * 1024,
)

#: 10-gigabit testbed (Arista 7100T class): cut-through-era latency but we
#: keep store-and-forward semantics; deeper buffers.
TEN_GIGABIT = LinkSpec(
    name="10G",
    rate_bps=1e10,
    propagation_s=1e-6,
    switch_latency_s=2.5e-6,
    port_buffer_bytes=1024 * 1024,
    nic_queue_bytes=4 * 1024 * 1024,
    socket_buffer_bytes=8 * 1024 * 1024,
)

#: The original Totem environment: 10-megabit shared Ethernet (for the
#: historical-context ablation; the paper's Section I discussion).
TEN_MEGABIT = LinkSpec(
    name="10M",
    rate_bps=1e7,
    propagation_s=10e-6,
    switch_latency_s=0.0,
    port_buffer_bytes=64 * 1024,
    nic_queue_bytes=256 * 1024,
    socket_buffer_bytes=256 * 1024,
)

PRESETS = {spec.name: spec for spec in (GIGABIT, TEN_GIGABIT, TEN_MEGABIT)}
