"""Host network interface: a transmit queue serialized at line rate.

The sending side of a host.  The protocol stack hands datagrams to the
NIC instantly (the CPU cost of the send syscall is charged by the host
model in :mod:`repro.sim.node`); the NIC clocks them onto the wire one at
a time at the link rate, which is what creates the serialization delay
that dominates 1-gigabit behaviour in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from heapq import heappush

from .engine import Simulator, Timeout
from .frames import Frame
from .links import LinkSpec


class Nic:
    """Transmit path of one host: bounded byte queue + line-rate clocking."""

    __slots__ = (
        "sim", "host_id", "spec", "_deliver_to_switch", "_queue",
        "_queued_bytes", "_queue_limit", "_wakeup", "_sim_ready",
        "frames_sent", "bytes_sent", "drops_overflow", "_process",
    )

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        spec: LinkSpec,
        deliver_to_switch: Callable[[Frame], None],
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.spec = spec
        self._deliver_to_switch = deliver_to_switch
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._queue_limit = spec.nic_queue_bytes
        self._wakeup = sim.signal("nic%d.tx" % host_id)
        self._sim_ready = sim._ready
        self.frames_sent = 0
        self.bytes_sent = 0
        self.drops_overflow = 0
        self._process = sim.spawn(self._tx_loop(), "nic%d" % host_id)

    # -- host-facing API ---------------------------------------------------

    def send(self, frame: Frame) -> bool:
        """Enqueue a datagram for transmission.

        Returns False (and counts a drop) if the transmit queue is full —
        the equivalent of a qdisc overflow.  The protocol's flow control
        is what keeps this from happening in correct configurations.
        """
        wire = frame.wire
        if self._queued_bytes + wire > self._queue_limit:
            self.drops_overflow += 1
            return False
        frame.sent_at = self.sim.now
        self._queue.append(frame)
        self._queued_bytes += wire
        # Inlined Signal.fire (value=None): one call per datagram sent.
        waiters = self._wakeup._waiters
        if waiters:
            self._sim_ready.extend(waiters)
            waiters.clear()
        return True

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def is_idle(self) -> bool:
        return not self._queue

    # -- internals ----------------------------------------------------------

    def _tx_loop(self):
        # Hot loop: one iteration per frame sent by this host.  Locals are
        # cached and the serialization delay is computed with the exact
        # same operations as LinkSpec.serialization_s (bit-identical
        # floats keep runs reproducible against older kernels).
        spec = self.spec
        queue = self._queue
        wakeup = self._wakeup
        rate_bps = spec.rate_bps
        propagation_s = spec.propagation_s
        sim = self.sim
        heap = sim._queue
        ready = sim._ready
        tie = sim._tie
        deliver = self._deliver_to_switch
        # Timeouts are immutable and wire sizes repeat, so the
        # serialization pauses are cached per size.
        timeouts: dict = {}
        while True:
            if not queue:
                yield wakeup
                continue
            frame = queue.popleft()
            wire = frame.wire
            self._queued_bytes -= wire
            pause = timeouts.get(wire)
            if pause is None:
                pause = timeouts[wire] = Timeout(wire * 8.0 / rate_bps)
            yield pause
            self.frames_sent += 1
            self.bytes_sent += wire
            # Inlined sim.call_in (one fewer Python call per frame); the
            # branch mirrors call_in's zero-delay ready-queue fast path.
            if propagation_s:
                heappush(heap, (sim.now + propagation_s, next(tie),
                                (deliver, (frame,))))
            else:
                ready.append((deliver, (frame,)))
