"""Wire-level frame model for the simulated network.

A :class:`Frame` is what travels on links: it carries an opaque payload
(the protocol message object), explicit byte sizes for serialization-delay
accounting, and an addressing mode (unicast destination or multicast).

The Accelerated Ring implementations in the paper send data messages with
IP-multicast and the token with UDP unicast; we model both as frames with
different ``dst`` and ``traffic`` values, received on distinct logical
ports (the paper's "different sockets for token and data").
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

#: Ethernet + IP + UDP framing overhead added to every datagram, in bytes.
#: 14 (Ethernet) + 4 (FCS) + 20 (IP) + 8 (UDP) + 24 (preamble/IPG equivalent).
WIRE_OVERHEAD = 70

#: Maximum payload of a single standard Ethernet frame (no jumbo frames).
ETHERNET_MTU = 1500


class Traffic(enum.Enum):
    """Logical receive port: the protocol separates token and data sockets."""

    DATA = "data"
    TOKEN = "token"


_frame_ids = itertools.count()


class Frame:
    """One UDP datagram on the simulated network.

    ``size`` is the datagram size (protocol headers + payload, excluding
    link-layer overhead); :attr:`wire` accounts for fragmentation of
    datagrams larger than the MTU — the paper's 8850-byte experiments use
    kernel-level fragmentation across six frames, and the loss of any
    fragment loses the whole datagram.

    A plain ``__slots__`` class, not a dataclass: tens of thousands of
    frames are built per simulated second, and the hand-written
    ``__init__`` precomputes the fragment count and wire size once so
    every hop — NIC, switch port, receive socket — reads a plain
    attribute (:attr:`wire`).  ``wire_bytes()``/``fragment_count()``
    remain as method aliases for existing callers.
    """

    __slots__ = ("src", "dst", "traffic", "size", "payload", "sent_at",
                 "frame_id", "fragments", "wire")

    def __init__(
        self,
        src: int,
        dst: Optional[int],  # None means multicast to every other port
        traffic: Traffic,
        size: int,
        payload: Any,
        sent_at: float = 0.0,
        frame_id: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.traffic = traffic
        self.size = size
        self.payload = payload
        self.sent_at = sent_at
        self.frame_id = next(_frame_ids) if frame_id is None else frame_id
        fragments = -(-size // ETHERNET_MTU)
        if fragments < 1:
            fragments = 1
        self.fragments = fragments
        self.wire = size + fragments * WIRE_OVERHEAD

    @property
    def is_multicast(self) -> bool:
        return self.dst is None

    def fragment_count(self) -> int:
        """Number of Ethernet frames the datagram occupies on the wire."""
        return self.fragments

    def wire_bytes(self) -> int:
        """Total bytes on the wire including per-fragment overhead."""
        return self.wire

    def __repr__(self) -> str:
        target = "mcast" if self.is_multicast else str(self.dst)
        return "Frame(#%d %s %d->%s %dB)" % (
            self.frame_id, self.traffic.value, self.src, target, self.size,
        )
