"""Store-and-forward switch with per-output-port buffering.

The switch is the piece of modern data-center hardware whose behaviour
motivated the Accelerated Ring protocol: buffering lets several
participants multicast simultaneously (the overlap the accelerated
protocol exploits), while finite per-port buffers bound how much overlap
is safe (the reason the ``Accelerated_window`` must be tuned, Section
III-C of the paper).

A multicast frame is replicated at the crossbar into every other port's
output queue; each output queue drains at line rate.  Frames are never
reordered on a single port; loss happens only on buffer overflow or via
an injected loss model.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Deque, Dict, Iterable, List, Optional

from .engine import Simulator, Timeout
from .frames import Frame, Traffic
from .links import LinkSpec
from .loss import LossModel, no_loss

#: Ingress traffic classes (per-class frame/byte accounting).  ``data``
#: is the plain ordered-data plane, ``jumbo`` its coalesced wire-type-8
#: flavor, ``token`` the rotating token, ``gossip`` the SWIM detector's
#: wire types 9-11, and ``ctrl`` the membership control plane (joins,
#: commit tokens, recovery floods).
TRAFFIC_CLASSES = ("data", "jumbo", "token", "gossip", "ctrl")


class SwitchPort:
    """One output port: bounded byte queue draining at line rate."""

    __slots__ = (
        "sim", "host_id", "spec", "_deliver", "_loss", "_queue",
        "_queued_bytes", "_queue_limit", "_wakeup", "_sim_ready",
        "frames_forwarded", "bytes_forwarded", "drops_overflow",
        "drops_injected", "max_queue_bytes", "_process",
    )

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        spec: LinkSpec,
        deliver: Callable[[Frame], None],
        loss: LossModel = no_loss,
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.spec = spec
        self._deliver = deliver
        self._loss = loss
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._queue_limit = spec.port_buffer_bytes
        self._wakeup = sim.signal("port%d.tx" % host_id)
        self._sim_ready = sim._ready
        self.frames_forwarded = 0
        self.bytes_forwarded = 0
        self.drops_overflow = 0
        self.drops_injected = 0
        self.max_queue_bytes = 0
        self._process = sim.spawn(self._tx_loop(), "port%d" % host_id)

    def enqueue(self, frame: Frame) -> None:
        loss = self._loss
        if loss is not no_loss and loss(frame):
            self.drops_injected += 1
            return
        wire = frame.wire
        queued = self._queued_bytes + wire
        if queued > self._queue_limit:
            self.drops_overflow += 1
            return
        self._queue.append(frame)
        self._queued_bytes = queued
        if queued > self.max_queue_bytes:
            self.max_queue_bytes = queued
        # Inlined Signal.fire (value=None): one call per frame replicated
        # to this port.
        waiters = self._wakeup._waiters
        if waiters:
            self._sim_ready.extend(waiters)
            waiters.clear()

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def _tx_loop(self):
        # Hot loop: one iteration per frame leaving this port.  The
        # serialization delay uses the exact same float operations as
        # LinkSpec.serialization_s so results stay bit-identical.
        queue = self._queue
        wakeup = self._wakeup
        rate_bps = self.spec.rate_bps
        propagation_s = self.spec.propagation_s
        sim = self.sim
        heap = sim._queue
        ready = sim._ready
        tie = sim._tie
        deliver = self._deliver
        # Timeouts are immutable and wire sizes repeat, so the
        # serialization pauses are cached per size.
        timeouts: dict = {}
        while True:
            if not queue:
                yield wakeup
                continue
            frame = queue.popleft()
            wire = frame.wire
            self._queued_bytes -= wire
            pause = timeouts.get(wire)
            if pause is None:
                pause = timeouts[wire] = Timeout(wire * 8.0 / rate_bps)
            yield pause
            self.frames_forwarded += 1
            self.bytes_forwarded += wire
            # Inlined sim.call_in (one fewer Python call per frame); the
            # branch mirrors call_in's zero-delay ready-queue fast path.
            if propagation_s:
                heappush(heap, (sim.now + propagation_s, next(tie),
                                (deliver, (frame,))))
            else:
                ready.append((deliver, (frame,)))


class Switch:
    """The crossbar: receives ingress frames, replicates, enqueues egress."""

    __slots__ = (
        "sim", "spec", "_ports", "_fanout", "_partition",
        "_fault_filters", "_capture", "frames_received",
        "drops_partition", "drops_fault", "class_frames", "class_bytes",
        "_data_class_cache", "_ctrl_class_cache",
    )

    def __init__(self, sim: Simulator, spec: LinkSpec) -> None:
        self.sim = sim
        self.spec = spec
        self._ports: Dict[int, SwitchPort] = {}
        #: Per-source multicast fan-out: list of enqueue methods of every
        #: *other* port, in attach order (the replication order at the
        #: crossbar).  Built lazily, invalidated on attach and on
        #: partition changes (the fan-out respects port groups).
        self._fanout: Dict[int, list] = {}
        #: host -> partition group key; None means fully connected.
        #: Hosts absent from the mapping while a partition is active are
        #: isolated (their group key is unique to them).
        self._partition: Optional[Dict[int, object]] = None
        #: Ingress fault filters (fault-injection hooks): each is a
        #: predicate on the frame; True swallows it at the crossbar
        #: before any replication.  Used by the fault-schedule layer for
        #: scheduled token drops.
        self._fault_filters: List[Callable[[Frame], bool]] = []
        #: Optional ingress observer (packet capture): sees every frame
        #: that arrives at the crossbar, before filters and replication.
        self._capture: Optional[Callable[[Frame], None]] = None
        self.frames_received = 0
        self.drops_partition = 0
        self.drops_fault = 0
        #: Ingress frames/bytes per traffic class (see TRAFFIC_CLASSES).
        self.class_frames: Dict[str, int] = dict.fromkeys(TRAFFIC_CLASSES, 0)
        self.class_bytes: Dict[str, int] = dict.fromkeys(TRAFFIC_CLASSES, 0)
        #: payload type -> class, for bare payloads and ("data", ...) inner
        #: payloads.  Tuples (the EVS harness's markers) are never cached
        #: by type — their inner type varies per frame.
        self._data_class_cache: Dict[type, str] = {}
        #: inner payload type -> class for ("ctrl", message) payloads.
        self._ctrl_class_cache: Dict[type, str] = {}

    def attach(
        self,
        host_id: int,
        deliver: Callable[[Frame], None],
        loss: LossModel = no_loss,
    ) -> SwitchPort:
        """Register a host.  ``deliver`` is called when a frame reaches it."""
        if host_id in self._ports:
            raise ValueError("host %d already attached" % host_id)
        port = SwitchPort(self.sim, host_id, self.spec, deliver, loss)
        self._ports[host_id] = port
        self._fanout.clear()
        return port

    def port(self, host_id: int) -> SwitchPort:
        return self._ports[host_id]

    def set_port_loss(self, host_id: int, loss: LossModel) -> None:
        """Install a loss model on one egress port.

        The public way to inject fabric loss after attachment (e.g. the
        benchmark cluster applying one shared loss model to every port).
        """
        port = self._ports.get(host_id)
        if port is None:
            raise ValueError("no port for host %r" % (host_id,))
        port._loss = loss

    @property
    def host_ids(self):
        return sorted(self._ports)

    # -- fault injection: partitions and ingress filters --------------------

    def set_partition(self, *groups: Iterable[int]) -> None:
        """Split the fabric into isolated port groups.

        Frames only flow between ports in the same group (the moral
        equivalent of unplugging an inter-switch trunk).  Attached hosts
        not listed in any group are isolated.  Frames already queued on
        an egress port have crossed the crossbar and still deliver.
        """
        mapping: Dict[int, object] = {}
        for index, group in enumerate(groups):
            for host in group:
                mapping[host] = index
        self._partition = mapping
        self._fanout.clear()

    def heal(self) -> None:
        """Remove any partition: every port reaches every other again."""
        self._partition = None
        self._fanout.clear()

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def connected(self, a: int, b: int) -> bool:
        """True when the fabric currently forwards frames from a to b."""
        if a == b:
            return True
        partition = self._partition
        if partition is None:
            return True
        # Unlisted hosts are isolated: a unique per-host key.
        group_a = partition.get(a, ("isolated", a))
        group_b = partition.get(b, ("isolated", b))
        return group_a == group_b

    def add_fault_filter(self, predicate: Callable[[Frame], bool]) -> None:
        """Install an ingress filter; True swallows the frame."""
        self._fault_filters.append(predicate)

    def remove_fault_filter(self, predicate: Callable[[Frame], bool]) -> None:
        """Remove a previously installed filter (no-op if absent)."""
        try:
            self._fault_filters.remove(predicate)
        except ValueError:
            pass

    def clear_fault_filters(self) -> None:
        """Drop every ingress filter (campaign cleanup before drain)."""
        self._fault_filters.clear()

    def set_capture(self, tap: Optional[Callable[[Frame], None]]) -> None:
        """Install (or clear) an ingress observer.

        The tap sees every frame exactly once — multicasts before
        replication — mirroring a monitor port on the physical switch.
        It must not mutate the frame; the wire layer's
        :class:`repro.wire.capture.SimCaptureTap` is the standard tap.
        """
        self._capture = tap

    def receive(self, frame: Frame) -> None:
        """Ingress: a frame has fully arrived from a host NIC."""
        self.frames_received += 1
        payload = frame.payload
        cls = self._data_class_cache.get(type(payload))
        if cls is None:
            cls = self._classify(frame)
        class_frames = self.class_frames
        class_frames[cls] = class_frames.get(cls, 0) + 1
        class_bytes = self.class_bytes
        class_bytes[cls] = class_bytes.get(cls, 0) + frame.wire
        if self._capture is not None:
            self._capture(frame)
        self.sim.call_in(self.spec.switch_latency_s, self._forward, frame)

    def _classify(self, frame: Frame) -> str:
        """Slow path of per-class accounting: first sighting of a type.

        Bare payload types are classified once and cached; the EVS
        harness's marker tuples (``("data", ring_id, message)`` /
        ``("ctrl", message)``) are unwrapped per frame and their *inner*
        type cached instead.
        """
        payload = frame.payload
        tp = type(payload)
        if tp is tuple:
            if len(payload) == 3 and payload[0] == "data":
                inner = type(payload[2])
                cls = self._data_class_cache.get(inner)
                if cls is None:
                    cls = self._data_class_cache[inner] = (
                        self._classify_bare(inner, frame.traffic)
                    )
                return cls
            if len(payload) == 2 and payload[0] == "ctrl":
                inner = type(payload[1])
                cls = self._ctrl_class_cache.get(inner)
                if cls is None:
                    cls = self._ctrl_class_cache[inner] = (
                        self._classify_ctrl(inner)
                    )
                return cls
            return "data"  # unknown tuple shape: count with the data plane
        cls = self._classify_bare(tp, frame.traffic)
        self._data_class_cache[tp] = cls
        return cls

    @staticmethod
    def _classify_bare(tp: type, traffic: Traffic) -> str:
        from ..core.coalesce import JumboDatagram  # local: keep net light
        from ..core.messages import Token

        if tp is Token:
            return "token"
        if tp is JumboDatagram:
            return "jumbo"
        if traffic is Traffic.TOKEN:
            return "token"
        return "data"

    @staticmethod
    def _classify_ctrl(tp: type) -> str:
        from ..membership.gossip import GOSSIP_MESSAGE_TYPES

        if issubclass(tp, GOSSIP_MESSAGE_TYPES):
            return "gossip"
        return "ctrl"

    def _forward(self, frame: Frame) -> None:
        if self._fault_filters:
            # Copy: a filter may detach itself when its budget runs out.
            for predicate in tuple(self._fault_filters):
                if predicate(frame):
                    self.drops_fault += 1
                    return
        if frame.dst is None:  # multicast
            src = frame.src
            fanout = self._fanout.get(src)
            if fanout is None:
                if self._partition is None:
                    fanout = [
                        port.enqueue
                        for host_id, port in self._ports.items()
                        if host_id != src
                    ]
                else:
                    fanout = [
                        port.enqueue
                        for host_id, port in self._ports.items()
                        if host_id != src and self.connected(src, host_id)
                    ]
                self._fanout[src] = fanout
            for enqueue in fanout:
                enqueue(frame)
        else:
            port = self._ports.get(frame.dst)
            if port is None:
                raise ValueError("frame for unknown host %r" % (frame.dst,))
            if not self.connected(frame.src, frame.dst):
                self.drops_partition += 1
                return
            port.enqueue(frame)

    # -- diagnostics --------------------------------------------------------

    def total_drops(self) -> int:
        """Per-port drops (overflow + injected loss).

        Partition and fault-filter suppressions are counted separately
        (:attr:`drops_partition`, :attr:`drops_fault`): they model
        disconnection, not congestion loss.
        """
        return sum(p.drops_overflow + p.drops_injected for p in self._ports.values())

    def drop_report(self) -> Dict[int, Dict[str, int]]:
        return {
            host_id: {
                "overflow": port.drops_overflow,
                "injected": port.drops_injected,
                "forwarded": port.frames_forwarded,
                "max_queue_bytes": port.max_queue_bytes,
            }
            for host_id, port in self._ports.items()
        }
