"""Store-and-forward switch with per-output-port buffering.

The switch is the piece of modern data-center hardware whose behaviour
motivated the Accelerated Ring protocol: buffering lets several
participants multicast simultaneously (the overlap the accelerated
protocol exploits), while finite per-port buffers bound how much overlap
is safe (the reason the ``Accelerated_window`` must be tuned, Section
III-C of the paper).

A multicast frame is replicated at the crossbar into every other port's
output queue; each output queue drains at line rate.  Frames are never
reordered on a single port; loss happens only on buffer overflow or via
an injected loss model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict

from .engine import Simulator, Timeout
from .frames import Frame
from .links import LinkSpec
from .loss import LossModel, no_loss


class SwitchPort:
    """One output port: bounded byte queue draining at line rate."""

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        spec: LinkSpec,
        deliver: Callable[[Frame], None],
        loss: LossModel = no_loss,
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.spec = spec
        self._deliver = deliver
        self._loss = loss
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._wakeup = sim.signal("port%d.tx" % host_id)
        self.frames_forwarded = 0
        self.bytes_forwarded = 0
        self.drops_overflow = 0
        self.drops_injected = 0
        self.max_queue_bytes = 0
        self._process = sim.spawn(self._tx_loop(), "port%d" % host_id)

    def enqueue(self, frame: Frame) -> None:
        loss = self._loss
        if loss is not no_loss and loss(frame):
            self.drops_injected += 1
            return
        wire = frame.wire_bytes()
        if self._queued_bytes + wire > self.spec.port_buffer_bytes:
            self.drops_overflow += 1
            return
        self._queue.append(frame)
        self._queued_bytes += wire
        if self._queued_bytes > self.max_queue_bytes:
            self.max_queue_bytes = self._queued_bytes
        self._wakeup.fire()

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def _tx_loop(self):
        # Hot loop: one iteration per frame leaving this port.  The
        # serialization delay uses the exact same float operations as
        # LinkSpec.serialization_s so results stay bit-identical.
        queue = self._queue
        wakeup = self._wakeup
        rate_bps = self.spec.rate_bps
        propagation_s = self.spec.propagation_s
        call_in = self.sim.call_in
        deliver = self._deliver
        # Timeouts are immutable and wire sizes repeat, so the
        # serialization pauses are cached per size.
        timeouts: dict = {}
        while True:
            if not queue:
                yield wakeup
                continue
            frame = queue.popleft()
            wire = frame.wire_bytes()
            self._queued_bytes -= wire
            pause = timeouts.get(wire)
            if pause is None:
                pause = timeouts[wire] = Timeout(wire * 8.0 / rate_bps)
            yield pause
            self.frames_forwarded += 1
            self.bytes_forwarded += wire
            call_in(propagation_s, deliver, frame)


class Switch:
    """The crossbar: receives ingress frames, replicates, enqueues egress."""

    def __init__(self, sim: Simulator, spec: LinkSpec) -> None:
        self.sim = sim
        self.spec = spec
        self._ports: Dict[int, SwitchPort] = {}
        #: Per-source multicast fan-out: list of enqueue methods of every
        #: *other* port, in attach order (the replication order at the
        #: crossbar).  Built lazily, invalidated on attach.
        self._fanout: Dict[int, list] = {}
        self.frames_received = 0

    def attach(
        self,
        host_id: int,
        deliver: Callable[[Frame], None],
        loss: LossModel = no_loss,
    ) -> SwitchPort:
        """Register a host.  ``deliver`` is called when a frame reaches it."""
        if host_id in self._ports:
            raise ValueError("host %d already attached" % host_id)
        port = SwitchPort(self.sim, host_id, self.spec, deliver, loss)
        self._ports[host_id] = port
        self._fanout.clear()
        return port

    def port(self, host_id: int) -> SwitchPort:
        return self._ports[host_id]

    def set_port_loss(self, host_id: int, loss: LossModel) -> None:
        """Install a loss model on one egress port.

        The public way to inject fabric loss after attachment (e.g. the
        benchmark cluster applying one shared loss model to every port).
        """
        port = self._ports.get(host_id)
        if port is None:
            raise ValueError("no port for host %r" % (host_id,))
        port._loss = loss

    @property
    def host_ids(self):
        return sorted(self._ports)

    def receive(self, frame: Frame) -> None:
        """Ingress: a frame has fully arrived from a host NIC."""
        self.frames_received += 1
        self.sim.call_in(self.spec.switch_latency_s, self._forward, frame)

    def _forward(self, frame: Frame) -> None:
        if frame.dst is None:  # multicast
            src = frame.src
            fanout = self._fanout.get(src)
            if fanout is None:
                fanout = self._fanout[src] = [
                    port.enqueue
                    for host_id, port in self._ports.items()
                    if host_id != src
                ]
            for enqueue in fanout:
                enqueue(frame)
        else:
            port = self._ports.get(frame.dst)
            if port is None:
                raise ValueError("frame for unknown host %r" % (frame.dst,))
            port.enqueue(frame)

    # -- diagnostics --------------------------------------------------------

    def total_drops(self) -> int:
        return sum(p.drops_overflow + p.drops_injected for p in self._ports.values())

    def drop_report(self) -> Dict[int, Dict[str, int]]:
        return {
            host_id: {
                "overflow": port.drops_overflow,
                "injected": port.drops_injected,
                "forwarded": port.frames_forwarded,
                "max_queue_bytes": port.max_queue_bytes,
            }
            for host_id, port in self._ports.items()
        }
