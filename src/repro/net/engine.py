"""Discrete-event simulation kernel.

A deliberately small, fast, generator-based kernel in the style of simpy.
Simulated entities are *processes*: Python generators that yield either a
:class:`Timeout` (sleep for simulated seconds) or a :class:`Signal` (wait
until some other process triggers it).  The kernel owns a single event
queue ordered by simulated time; ties are broken by insertion order so the
simulation is fully deterministic.

The network substrate (:mod:`repro.net`) and the protocol hosts
(:mod:`repro.sim`) are built entirely on this kernel, which keeps the
protocol code free of wall-clock concerns and makes every experiment
reproducible bit-for-bit.

Performance notes
-----------------
The kernel is the hot loop of every benchmark: a simulated second pushes
millions of events through :meth:`Simulator.run`, so the event path is
tuned while keeping the *observable order identical* to a single heap:

* Zero-delay events (process resumes, :meth:`Signal.fire`, and
  ``call_in(0.0, ...)``) bypass the heap entirely and go to a FIFO
  *ready queue* (a deque).  The run loop always executes the globally
  smallest ``(time, insertion-order)`` event next, so the documented
  deterministic tie-break order is preserved exactly (locked in by
  ``tests/test_determinism.py``); see :class:`Simulator` for why the
  ready queue needs no explicit insertion-order numbers.
* :meth:`Process._step` inlines the :class:`Timeout` schedule (the single
  most common yield) instead of going through :meth:`Simulator.call_in`.
* The :meth:`Simulator.run` loop caches the queue, ready deque and heap
  functions in locals.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised when the kernel is used incorrectly."""


#: Shared argument tuple for the overwhelmingly common resume-with-None.
_NONE_ARGS = (None,)

#: Tie value carried by every ready-queue entry.  Ready entries never need
#: real insertion-order numbers: when simulated time advances to T the
#: ready queue is empty (its entries always sort before any later heap
#: event), so every heap event at time T was pushed *before* T's execution
#: began, while every ready entry at T is created *during* it.  Heap
#: events at T therefore always precede ready events at T — exactly what a
#: constant +inf tie expresses — and the ready queue's FIFO order equals
#: creation order, which is what the shared counter would have recorded.
_READY_TIE = float("inf")


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError("negative timeout: %r" % delay)
        self.delay = delay

    def __repr__(self) -> str:
        return "Timeout(%g)" % self.delay


class Signal:
    """A triggerable, reusable event.

    Processes that yield a signal are suspended until :meth:`fire` is
    called, at which point all current waiters are resumed (in the order
    they started waiting) with the fired value.  Waiters that arrive after
    a fire wait for the next fire; a Signal carries no memory of past
    fires.  Use :class:`Latch` when the "already happened" memory matters.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Resume every process currently waiting on this signal."""
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        # Inlined Simulator._schedule_resume: append each waiter to the
        # ready queue; the FIFO preserves the wait order.
        sim = self.sim
        append = sim._ready.append
        now = sim.now
        args = _NONE_ARGS if value is None else (value,)
        for process in waiters:
            append((now, _READY_TIE, process._step, args))

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return "Signal(%s, waiters=%d)" % (self.name, len(self._waiters))


class Latch(Signal):
    """A one-shot signal that remembers having fired.

    Waiting on an already-fired latch resumes immediately with the stored
    value.  Used for completion events (e.g. "simulation warmed up").
    """

    __slots__ = ("fired", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, name)
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.value = value
        super().fire(value)


class Process:
    """A running generator, driven by the kernel."""

    __slots__ = ("sim", "name", "_generator", "alive", "_done_latch", "_resume_args")

    def __init__(self, sim: "Simulator", generator: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.alive = True
        self._done_latch = Latch(sim, name + ".done")
        #: Constant argument tuple for the Timeout wake-up path.
        self._resume_args = (self, None)

    @property
    def done(self) -> Latch:
        """Latch fired when this process finishes."""
        return self._done_latch

    def _step(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration:
            self.alive = False
            self._done_latch.fire()
            return
        cls = type(yielded)
        if cls is Timeout:
            # Fast path: schedule the resume directly, skipping the
            # call_in indirection (Timeout already validated delay >= 0).
            # The resume stays a two-hop schedule (heap event ->
            # ready-queue _step) so the interleaving with events scheduled
            # between now and the wake-up time is unchanged.
            sim = self.sim
            delay = yielded.delay
            if delay:
                heappush(
                    sim._queue,
                    (sim.now + delay, next(sim._tie), sim._schedule_resume,
                     self._resume_args),
                )
            else:
                sim._ready.append(
                    (sim.now, _READY_TIE, sim._schedule_resume,
                     self._resume_args)
                )
        elif isinstance(yielded, Signal):
            if isinstance(yielded, Latch) and yielded.fired:
                self.sim._schedule_resume(self, yielded.value)
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, Timeout):  # a Timeout subclass
            self.sim.call_in(yielded.delay, self.sim._schedule_resume, self, None)
        else:
            raise SimulationError(
                "process %s yielded %r; expected Timeout or Signal"
                % (self.name, yielded)
            )

    def interrupt(self) -> None:
        """Stop the process.  It will never be resumed again."""
        self.alive = False

    def __repr__(self) -> str:
        return "Process(%s, alive=%s)" % (self.name, self.alive)


class Simulator:
    """The event loop: a priority queue of timestamped callbacks.

    Two internal queues back the loop: a binary heap for events in the
    future and a FIFO *ready queue* for events scheduled at the current
    time.  Both hold ``(when, tie, fn, args)`` tuples and :meth:`run`
    always executes the smallest ``(when, tie)`` next — so the split is
    invisible: execution order is identical to a single heap with
    insertion-order tie-breaking.  Heap entries draw real numbers from
    the ``tie`` counter; ready entries carry the constant
    :data:`_READY_TIE` (= +inf), which encodes the provable invariant
    that at any timestamp all heap events precede all ready events (a
    heap event at time T is always pushed before T's execution starts,
    a ready event at T is always created during it).
    """

    __slots__ = ("now", "_queue", "_ready", "_tie", "_event_count")

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._ready: Deque[Tuple[float, int, Callable, tuple]] = deque()
        self._tie = itertools.count()
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay > 0:
            heappush(self._queue, (self.now + delay, next(self._tie), fn, args))
        elif delay == 0:
            self._ready.append((self.now, _READY_TIE, fn, args))
        else:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        self.call_in(when - self.now, fn, *args)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self._ready.append((
            self.now, _READY_TIE, process._step,
            _NONE_ARGS if value is None else (value,),
        ))

    # -- processes -------------------------------------------------------

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process from a generator; it runs at the current time."""
        process = Process(self, generator, name)
        self._schedule_resume(process, None)
        return process

    def signal(self, name: str = "") -> Signal:
        return Signal(self, name)

    def latch(self, name: str = "") -> Latch:
        return Latch(self, name)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> None:
        """Drain the event queue.

        ``until`` bounds simulated time (events at exactly ``until`` run).

        ``max_events`` is a runaway-loop backstop counted **per call**:
        each ``run()`` invocation gets a fresh budget of ``max_events``
        events, independent of the cumulative :attr:`event_count` (which
        keeps growing across calls).
        """
        queue = self._queue
        ready = self._ready
        pop = heappop
        popleft = ready.popleft
        limit = float("inf") if until is None else until
        count = 0
        try:
            while True:
                # Pick the globally smallest (when, tie).  Tuples never
                # compare past the tie (heap ties are unique ints, ready
                # ties are +inf), so fn/args are never compared.
                if ready:
                    item = ready[0]
                    if queue and queue[0] < item:
                        item = queue[0]
                        from_ready = False
                    else:
                        from_ready = True
                elif queue:
                    item = queue[0]
                    from_ready = False
                else:
                    break
                when = item[0]
                if when > limit:
                    self.now = until  # type: ignore[assignment]
                    return
                if from_ready:
                    popleft()
                else:
                    pop(queue)
                self.now = when
                item[2](*item[3])
                count += 1
                if count >= max_events:
                    raise SimulationError("exceeded max_events=%d" % max_events)
            if until is not None:
                self.now = until
        finally:
            self._event_count += count

    @property
    def event_count(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._event_count

    def __repr__(self) -> str:
        return "Simulator(now=%g, pending=%d)" % (
            self.now, len(self._queue) + len(self._ready),
        )


def drain(iterable: Iterable[Any]) -> None:
    """Exhaust an iterable for its side effects (explicit, unlike list())."""
    for _item in iterable:
        pass
