"""Discrete-event simulation kernel.

A deliberately small, fast, generator-based kernel in the style of simpy.
Simulated entities are *processes*: Python generators that yield either a
:class:`Timeout` (sleep for simulated seconds) or a :class:`Signal` (wait
until some other process triggers it).  The kernel owns a single event
queue ordered by simulated time; ties are broken by insertion order so the
simulation is fully deterministic.

The network substrate (:mod:`repro.net`) and the protocol hosts
(:mod:`repro.sim`) are built entirely on this kernel, which keeps the
protocol code free of wall-clock concerns and makes every experiment
reproducible bit-for-bit.

Performance notes
-----------------
The kernel is the hot loop of every benchmark: a simulated second pushes
millions of events through :meth:`Simulator.run`, so the event path is
tuned while keeping the *observable order identical* to a single heap
with insertion-order tie-breaking (locked in by
``tests/test_determinism.py`` and the golden fingerprints in
``tests/test_golden_fingerprints.py``):

* Two queues back the loop: a binary heap (the calendar) for future
  events and a FIFO *ready queue* (an array-backed deque) for events at
  the current time.  Zero-delay events — process resumes,
  :meth:`Signal.fire`, ``call_in(0.0, ...)`` — never touch the heap.
* Events are dispatched **by type, not by callback**: a queue entry is
  either a bare :class:`Process` (the overwhelmingly common timer
  resume / zero-delay resume) or a ``(fn, args)`` pair (an arbitrary
  scheduled callback).  The run loop branches on the entry's class, so
  the hot path allocates *no* per-event tuples, no bound methods and no
  argument packs: a sleeping process costs one 3-tuple on the heap and
  one bare object reference on the ready queue.
* :meth:`Process._step` inlines the :class:`Timeout` schedule (the single
  most common yield) and caches ``generator.send`` at spawn time.
* :meth:`Signal.fire` bulk-appends its waiters with ``deque.extend``.

Ordering proof sketch (unchanged from the 4-tuple kernel): ready entries
never need insertion-order numbers because when simulated time advances
to T the ready queue is empty — every heap event at T was pushed *before*
T's execution began, while every ready entry at T is created *during* it.
Heap events at T therefore always run before ready events at T, and the
ready queue's FIFO order equals creation order.  The run loop encodes
exactly that: the heap head runs whenever its timestamp is ``<= now``.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised when the kernel is used incorrectly."""


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError("negative timeout: %r" % delay)
        self.delay = delay

    def __repr__(self) -> str:
        return "Timeout(%g)" % self.delay


class Signal:
    """A triggerable, reusable event.

    Processes that yield a signal are suspended until :meth:`fire` is
    called, at which point all current waiters are resumed (in the order
    they started waiting) with the fired value.  Waiters that arrive after
    a fire wait for the next fire; a Signal carries no memory of past
    fires.  Use :class:`Latch` when the "already happened" memory matters.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Resume every process currently waiting on this signal."""
        waiters = self._waiters
        if not waiters:
            return
        # The ready queue preserves the wait order (FIFO); a bare Process
        # entry means "resume with None", the overwhelmingly common case.
        ready = self.sim._ready
        if value is None:
            # extend() copies the references first, so clearing in place
            # is safe and reuses the list (one fewer allocation per fire).
            ready.extend(waiters)
            waiters.clear()
        else:
            self._waiters = []
            append = ready.append
            for process in waiters:
                append((process._step, (value,)))

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return "Signal(%s, waiters=%d)" % (self.name, len(self._waiters))


class Latch(Signal):
    """A one-shot signal that remembers having fired.

    Waiting on an already-fired latch resumes immediately with the stored
    value.  Used for completion events (e.g. "simulation warmed up").
    """

    __slots__ = ("fired", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, name)
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.value = value
        super().fire(value)


class Process:
    """A running generator, driven by the kernel."""

    __slots__ = ("sim", "name", "_generator", "_send", "alive", "_done_latch")

    def __init__(self, sim: "Simulator", generator: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        #: Cached bound ``send`` — one attribute lookup saved per step.
        self._send = generator.send
        self.alive = True
        self._done_latch = Latch(sim, name + ".done")

    @property
    def done(self) -> Latch:
        """Latch fired when this process finishes."""
        return self._done_latch

    def _step(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self._send(value)
        except StopIteration:
            self.alive = False
            self._done_latch.fire()
            return
        cls = yielded.__class__
        if cls is Timeout:
            # Fast path: schedule the resume directly.  The resume stays a
            # two-hop schedule (heap entry -> ready-queue _step) so the
            # interleaving with events scheduled between now and the
            # wake-up time is unchanged: popping the bare Process from the
            # heap appends it to the ready queue, where it runs after
            # every other heap event at the wake-up time.
            sim = self.sim
            delay = yielded.delay
            if delay:
                heappush(sim._queue, (sim.now + delay, next(sim._tie), self))
            else:
                # Timeout(0) keeps the same two-hop shape (hop 1 is the
                # scheduler call, hop 2 the resume) so its position among
                # other zero-delay events is unchanged.
                sim._ready.append((sim._schedule_resume, (self, None)))
        elif cls is Signal:
            # Exact-type fast path: a plain Signal never has latch memory.
            yielded._waiters.append(self)
        else:
            self._yield_slow(yielded)

    def _yield_slow(self, yielded: Any) -> None:
        """Handle the rare yields: Latch, Signal/Timeout subclasses, junk.

        Split out of the exact-type fast paths (shared by :meth:`_step`
        and the inlined resume in :meth:`Simulator.run`).
        """
        if isinstance(yielded, Signal):
            if isinstance(yielded, Latch) and yielded.fired:
                self.sim._schedule_resume(self, yielded.value)
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, Timeout):  # a Timeout subclass
            self.sim.call_in(yielded.delay, self.sim._schedule_resume, self, None)
        else:
            raise SimulationError(
                "process %s yielded %r; expected Timeout or Signal"
                % (self.name, yielded)
            )

    def interrupt(self) -> None:
        """Stop the process.  It will never be resumed again."""
        self.alive = False

    def __repr__(self) -> str:
        return "Process(%s, alive=%s)" % (self.name, self.alive)


class Simulator:
    """The event loop: a time-ordered calendar of typed event entries.

    Two internal queues back the loop: a binary heap for events in the
    future and a FIFO *ready queue* (array-backed deque) for events at
    the current time.  Heap entries are ``(when, tie, entry)`` 3-tuples;
    ready-queue entries carry no timestamp at all.  ``entry`` is either a
    bare :class:`Process` — a timer resume (from the heap) or a pending
    ``_step(None)`` (on the ready queue) — or a ``(fn, args)`` pair for
    arbitrary callbacks; :meth:`run` dispatches on the entry's class.

    Execution order is identical to a single heap with insertion-order
    tie-breaking: heap ties are unique ints (so the third tuple element
    is never compared), and at any timestamp all heap events run before
    all ready events — a heap event at time T is always pushed before T's
    execution starts, a ready event at T is always created during it.
    """

    __slots__ = ("now", "_queue", "_ready", "_tie", "_event_count")

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Any]] = []
        self._ready: Deque[Any] = deque()
        self._tie = itertools.count()
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay > 0:
            heappush(self._queue, (self.now + delay, next(self._tie), (fn, args)))
        elif delay == 0:
            self._ready.append((fn, args))
        else:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        self.call_in(when - self.now, fn, *args)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        if value is None:
            self._ready.append(process)
        else:
            self._ready.append((process._step, (value,)))

    # -- processes -------------------------------------------------------

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process from a generator; it runs at the current time."""
        process = Process(self, generator, name)
        self._ready.append(process)
        return process

    def signal(self, name: str = "") -> Signal:
        return Signal(self, name)

    def latch(self, name: str = "") -> Latch:
        return Latch(self, name)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> None:
        """Drain the event queue.

        ``until`` bounds simulated time (events at exactly ``until`` run).

        ``max_events`` is a runaway-loop backstop counted **per call**:
        each ``run()`` invocation gets a fresh budget of ``max_events``
        events, independent of the cumulative :attr:`event_count` (which
        keeps growing across calls).
        """
        queue = self._queue
        ready = self._ready
        pop = heappop
        push = heappush
        popleft = ready.popleft
        ready_append = ready.append
        tie_next = self._tie.__next__
        limit = float("inf") if until is None else until
        count = 0
        now = self.now
        try:
            while True:
                # A ready entry runs unless a heap event is due at (or
                # before) the current time — heap events at time T always
                # precede ready events at T (see the class docstring).
                if ready and not (queue and queue[0][0] <= now):
                    # Drain the whole ready queue.  While draining, every
                    # heap push lands strictly after ``now`` (Timeout and
                    # call_in route zero delays to the ready queue), so
                    # the heap-head check cannot become true until time
                    # advances — one deque truth test per event replaces
                    # the full compound check.
                    while ready:
                        entry = popleft()
                        if entry.__class__ is Process:
                            # Inlined Process._step(None) — the single
                            # hottest event type, worth one saved Python
                            # call per resume.  Keep in sync with _step.
                            if entry.alive:
                                try:
                                    yielded = entry._send(None)
                                except StopIteration:
                                    entry.alive = False
                                    entry._done_latch.fire()
                                else:
                                    cls = yielded.__class__
                                    if cls is Timeout:
                                        delay = yielded.delay
                                        if delay:
                                            push(queue, (now + delay,
                                                         tie_next(), entry))
                                        else:
                                            ready_append(
                                                (entry.sim._schedule_resume,
                                                 (entry, None))
                                            )
                                    elif cls is Signal:
                                        yielded._waiters.append(entry)
                                    else:
                                        entry._yield_slow(yielded)
                        else:
                            entry[0](*entry[1])
                        count += 1
                        if count >= max_events:
                            raise SimulationError(
                                "exceeded max_events=%d" % max_events
                            )
                elif queue:
                    when = queue[0][0]
                    if when > limit:
                        self.now = until  # type: ignore[assignment]
                        return
                    entry = pop(queue)[2]
                    self.now = now = when
                    if entry.__class__ is Process:
                        # Timer resume: two-hop via the ready queue, so
                        # every other heap event at this time runs first.
                        ready.append(entry)
                    else:
                        entry[0](*entry[1])
                    count += 1
                    if count >= max_events:
                        raise SimulationError(
                            "exceeded max_events=%d" % max_events
                        )
                else:
                    break
            if until is not None:
                self.now = until
        finally:
            self._event_count += count

    @property
    def event_count(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._event_count

    def __repr__(self) -> str:
        return "Simulator(now=%g, pending=%d)" % (
            self.now, len(self._queue) + len(self._ready),
        )


def drain(iterable: Iterable[Any]) -> None:
    """Exhaust an iterable for its side effects (explicit, unlike list())."""
    for _item in iterable:
        pass
