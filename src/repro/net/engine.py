"""Discrete-event simulation kernel.

A deliberately small, fast, generator-based kernel in the style of simpy.
Simulated entities are *processes*: Python generators that yield either a
:class:`Timeout` (sleep for simulated seconds) or a :class:`Signal` (wait
until some other process triggers it).  The kernel owns a single event
queue ordered by simulated time; ties are broken by insertion order so the
simulation is fully deterministic.

The network substrate (:mod:`repro.net`) and the protocol hosts
(:mod:`repro.sim`) are built entirely on this kernel, which keeps the
protocol code free of wall-clock concerns and makes every experiment
reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised when the kernel is used incorrectly."""


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError("negative timeout: %r" % delay)
        self.delay = delay

    def __repr__(self) -> str:
        return "Timeout(%g)" % self.delay


class Signal:
    """A triggerable, reusable event.

    Processes that yield a signal are suspended until :meth:`fire` is
    called, at which point all current waiters are resumed (in the order
    they started waiting) with the fired value.  Waiters that arrive after
    a fire wait for the next fire; a Signal carries no memory of past
    fires.  Use :class:`Latch` when the "already happened" memory matters.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Resume every process currently waiting on this signal."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule_resume(process, value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return "Signal(%s, waiters=%d)" % (self.name, len(self._waiters))


class Latch(Signal):
    """A one-shot signal that remembers having fired.

    Waiting on an already-fired latch resumes immediately with the stored
    value.  Used for completion events (e.g. "simulation warmed up").
    """

    __slots__ = ("fired", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, name)
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.value = value
        super().fire(value)


class Process:
    """A running generator, driven by the kernel."""

    __slots__ = ("sim", "name", "_generator", "alive", "_done_latch")

    def __init__(self, sim: "Simulator", generator: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.alive = True
        self._done_latch = Latch(sim, name + ".done")

    @property
    def done(self) -> Latch:
        """Latch fired when this process finishes."""
        return self._done_latch

    def _step(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration:
            self.alive = False
            self._done_latch.fire()
            return
        if isinstance(yielded, Timeout):
            self.sim.call_in(yielded.delay, self.sim._schedule_resume, self, None)
        elif isinstance(yielded, Signal):
            yielded_signal = yielded
            if isinstance(yielded_signal, Latch) and yielded_signal.fired:
                self.sim._schedule_resume(self, yielded_signal.value)
            else:
                yielded_signal._waiters.append(self)
        else:
            raise SimulationError(
                "process %s yielded %r; expected Timeout or Signal"
                % (self.name, yielded)
            )

    def interrupt(self) -> None:
        """Stop the process.  It will never be resumed again."""
        self.alive = False

    def __repr__(self) -> str:
        return "Process(%s, alive=%s)" % (self.name, self.alive)


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Any] = []
        self._tie = itertools.count()
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._queue, (self.now + delay, next(self._tie), fn, args))

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        self.call_in(when - self.now, fn, *args)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self.call_in(0.0, process._step, value)

    # -- processes -------------------------------------------------------

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process from a generator; it runs at the current time."""
        process = Process(self, generator, name)
        self._schedule_resume(process, None)
        return process

    def signal(self, name: str = "") -> Signal:
        return Signal(self, name)

    def latch(self, name: str = "") -> Latch:
        return Latch(self, name)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> None:
        """Drain the event queue.

        ``until`` bounds simulated time (events at exactly ``until`` run);
        ``max_events`` is a runaway-loop backstop.
        """
        queue = self._queue
        count = 0
        while queue:
            when, _tie, fn, args = queue[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(queue)
            self.now = when
            fn(*args)
            count += 1
            self._event_count += 1
            if count >= max_events:
                raise SimulationError("exceeded max_events=%d" % max_events)
        if until is not None:
            self.now = until

    @property
    def event_count(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._event_count

    def __repr__(self) -> str:
        return "Simulator(now=%g, pending=%d)" % (self.now, len(self._queue))


def drain(iterable: Iterable[Any]) -> None:
    """Exhaust an iterable for its side effects (explicit, unlike list())."""
    for _item in iterable:
        pass
