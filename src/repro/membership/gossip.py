"""SWIM-style gossip failure detection (sans-IO).

Totem-style membership discovers failures and mergeable components by
having every Operational daemon *broadcast* a probe every interval —
N daemons put N·(N-1) probe deliveries per interval on the fabric, and
at 50-100 nodes that control-plane flood is exactly what melts under
churn (PR 3 already had to rate-limit join storms).  This module
replaces the detection path with a SWIM-style gossip protocol
[Das et al., SWIM, DSN 2002; the pattern write-up in SNIPPETS.md]:

* **Probing** — each protocol period a node pings ONE peer (randomized
  round-robin over its membership list, which bounds the time to first
  probe of any member).  If no ack arrives in time, it asks ``k``
  other peers to ping the target on its behalf (``ping-req``), which
  separates "the target is dead" from "my link to the target is bad".
* **Suspicion** — a target that answers nobody becomes *suspect*, not
  dead.  Suspicion is gossiped; the suspect, on hearing its own
  suspicion, *refutes* it by bumping its incarnation number and
  gossiping a fresher ``alive``.  Only an unrefuted suspicion expires
  into a *confirm* (declared dead).
* **Dissemination** — updates ride piggybacked on ping/ping-req/ack
  traffic (no extra datagrams).  The gossip buffer is bounded: each
  update is retransmitted O(log n) times and then dropped, so per-node
  control traffic stays O(1) datagrams per period regardless of
  cluster size.

The detector is sans-IO and tick-driven like
:class:`~repro.membership.controller.EVSProcess`: the host calls
:meth:`GossipDetector.tick` once per logical tick and
:meth:`GossipDetector.handle` per received message; both return
``(messages, events)`` where messages are ``(dst, message)`` pairs to
put on the wire and events are the suspect/confirm/alive stream the
ring membership controller consumes (`EVSProcess.notify_peer_failed`
/ ``notify_peer_alive``).  Totem-style gather/commit still forms the
actual views — gossip only decides *when* to reconfigure and about
whom, which is the cheap part to scale.

Update precedence is a total order on ``(incarnation, status rank)``
with ranks alive(0) < suspect(1) < dead(2): an update applies iff its
pair is strictly greater than the stored one.  This is SWIM's rule set
collapsed into one comparison, with one deliberate extension: a
``dead`` record is *not* terminal — an ``alive`` with a strictly
higher incarnation resurrects the member.  Restarted daemons have
total amnesia (they cannot know their old incarnation), so rejoin
works by refutation: the restarted node hears its own ``dead`` record
piggybacked on an ack, adopts ``dead_incarnation + 1``, and gossips
itself back to life.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Member status codes (wire-stable: these go into gossip updates).
ALIVE = 0
SUSPECT = 1
DEAD = 2

_STATUS_NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead"}


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GossipUpdate:
    """One piggybacked membership claim: ``pid`` is ``status`` at ``incarnation``."""

    pid: int
    incarnation: int
    status: int

    def describe(self) -> str:
        return "%s(%d@%d)" % (
            _STATUS_NAMES.get(self.status, "?%d" % self.status),
            self.pid, self.incarnation,
        )


@dataclass(frozen=True, slots=True)
class GossipPing:
    """Direct probe; the receiver answers with a :class:`GossipAck`."""

    sender: int
    incarnation: int
    probe_id: int
    updates: Tuple[GossipUpdate, ...] = ()


@dataclass(frozen=True, slots=True)
class GossipPingReq:
    """Indirect probe request: "ping ``target`` for me, relay its ack"."""

    sender: int
    incarnation: int
    target: int
    probe_id: int
    updates: Tuple[GossipUpdate, ...] = ()


@dataclass(frozen=True, slots=True)
class GossipAck:
    """Liveness attestation for ``sender`` answering ``probe_id``.

    For a direct ping the attested node sends it itself; for an
    indirect probe the intermediary relays it with ``sender`` still the
    attested node (the wire source is the intermediary — the sans-IO
    host passes the wire source separately).
    """

    sender: int
    incarnation: int
    probe_id: int
    updates: Tuple[GossipUpdate, ...] = ()


GOSSIP_MESSAGE_TYPES = (GossipPing, GossipPingReq, GossipAck)


# ---------------------------------------------------------------------------
# Events toward the membership controller
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PeerAlive:
    """``pid`` is (back) among the living — merge/rejoin trigger."""

    pid: int
    incarnation: int


@dataclass(frozen=True, slots=True)
class PeerSuspect:
    """``pid`` missed a whole probe round (direct + indirect)."""

    pid: int
    incarnation: int


@dataclass(frozen=True, slots=True)
class PeerConfirm:
    """``pid``'s suspicion expired unrefuted: declared dead."""

    pid: int
    incarnation: int


# ---------------------------------------------------------------------------
# Configuration and member state
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class GossipConfig:
    """All timing in detector ticks (the host defines the tick length)."""

    #: One probe round starts every this many ticks.
    ping_interval_ticks: int = 10
    #: Direct-ping ack deadline; after it the indirect round starts.
    ping_timeout_ticks: int = 6
    #: Total probe-round deadline (direct + indirect) before suspicion.
    probe_timeout_ticks: int = 14
    #: How long a suspicion may stand before it becomes a confirm.
    suspicion_ticks: int = 60
    #: How many peers are asked to ping-req an unresponsive target.
    indirect_probes: int = 3
    #: Max piggybacked updates per outgoing message (bounded buffer).
    max_piggyback: int = 8
    #: An update is retransmitted ``retransmit_factor * ceil(log2(n+1))``
    #: times before it leaves the gossip buffer.
    retransmit_factor: int = 3
    #: Every this many probe rounds, one extra ping goes to a DEAD
    #: member (round-robin): the reconnaissance that lets healed
    #: partitions and restarted amnesiacs find their way back without
    #: any broadcast.  0 disables it.
    recon_round_interval: int = 4


class _Member:
    __slots__ = ("pid", "incarnation", "status", "since_tick")

    def __init__(self, pid: int, incarnation: int, status: int,
                 since_tick: int) -> None:
        self.pid = pid
        self.incarnation = incarnation
        self.status = status
        self.since_tick = since_tick


class _Probe:
    """One in-flight probe round."""

    __slots__ = ("target", "started_tick", "indirect_sent")

    def __init__(self, target: int, started_tick: int) -> None:
        self.target = target
        self.started_tick = started_tick
        self.indirect_sent = False


class _Relay:
    """Book-keeping for a ping we sent on someone else's behalf."""

    __slots__ = ("origin", "origin_probe_id", "target")

    def __init__(self, origin: int, origin_probe_id: int, target: int) -> None:
        self.origin = origin
        self.origin_probe_id = origin_probe_id
        self.target = target


#: (dst pid, message) pairs the host must put on the wire.
Send = Tuple[int, object]
#: PeerAlive / PeerSuspect / PeerConfirm stream for the controller.
Event = object


class GossipDetector:
    """One node's SWIM state machine (sans-IO, deterministic).

    Determinism: peer selection uses a :class:`random.Random` seeded
    from ``(seed, pid)``, so a simulated cluster replays identically;
    two detectors never share an RNG.
    """

    __slots__ = (
        "pid", "config", "incarnation", "_tick", "_rng", "_members",
        "_probe_order", "_probe_cursor", "_round_counter",
        "_recon_cursor", "_probe_seq", "_inflight", "_relays",
        "_buffer", "messages_sent", "false_suspicions_refuted",
    )

    def __init__(
        self,
        pid: int,
        config: Optional[GossipConfig] = None,
        seed: int = 0,
    ) -> None:
        self.pid = pid
        self.config = config or GossipConfig()
        self.incarnation = 0
        self._tick = 0
        self._rng = random.Random((seed * 0x9E3779B1 + pid) & 0xFFFFFFFF)
        self._members: Dict[int, _Member] = {}
        #: Randomized round-robin probe order (SWIM §4.3): shuffle once,
        #: walk to the end, reshuffle.  Bounds worst-case detection time.
        self._probe_order: List[int] = []
        self._probe_cursor = 0
        self._round_counter = 0
        self._recon_cursor = 0
        self._probe_seq = 0
        self._inflight: Dict[int, _Probe] = {}
        self._relays: Dict[int, _Relay] = {}
        #: Gossip buffer: update -> remaining retransmissions.
        self._buffer: Dict[GossipUpdate, int] = {}
        # Stats (the churn campaigns chart these).
        self.messages_sent = 0
        self.false_suspicions_refuted = 0

    # -- introspection -----------------------------------------------------

    def members(self) -> Dict[int, Tuple[int, int]]:
        """pid -> (incarnation, status) snapshot (self excluded)."""
        return {
            m.pid: (m.incarnation, m.status) for m in self._members.values()
        }

    def alive_pids(self) -> List[int]:
        return sorted(
            m.pid for m in self._members.values() if m.status != DEAD
        )

    def status_of(self, pid: int) -> Optional[int]:
        member = self._members.get(pid)
        return None if member is None else member.status

    # -- membership seeding ------------------------------------------------

    def seed_members(self, pids: Iterable[int]) -> None:
        """Install the boot-time host list (everyone alive at inc 0).

        A cluster's static host list plays the role SWIM's join step
        plays in open-membership systems; nodes learned later via
        traffic are added on first contact.
        """
        for pid in pids:
            if pid != self.pid and pid not in self._members:
                self._members[pid] = _Member(pid, 0, ALIVE, self._tick)

    # -- gossip buffer -----------------------------------------------------

    def _retransmit_limit(self) -> int:
        n = len(self._members) + 1
        log2 = max(1, (n - 1).bit_length())
        return self.config.retransmit_factor * log2

    def _enqueue(self, update: GossipUpdate) -> None:
        # A fresher claim about the same pid obsoletes the buffered one.
        stale = [
            u for u in self._buffer
            if u.pid == update.pid and (u.incarnation, u.status)
            < (update.incarnation, update.status)
        ]
        for u in stale:
            del self._buffer[u]
        if any(u.pid == update.pid and (u.incarnation, u.status)
               >= (update.incarnation, update.status) for u in self._buffer):
            return
        self._buffer[update] = self._retransmit_limit()

    def _piggyback(self) -> Tuple[GossipUpdate, ...]:
        """Select up to ``max_piggyback`` updates, freshest-first.

        Selection charges each chosen update one retransmission;
        exhausted updates leave the buffer — this is what keeps the
        buffer (and every datagram) bounded.
        """
        if not self._buffer:
            return ()
        chosen = sorted(
            self._buffer.items(),
            key=lambda item: (-item[1], item[0].pid, item[0].incarnation),
        )[: self.config.max_piggyback]
        out = []
        for update, remaining in chosen:
            out.append(update)
            if remaining <= 1:
                del self._buffer[update]
            else:
                self._buffer[update] = remaining - 1
        return tuple(out)

    # -- update application ------------------------------------------------

    @staticmethod
    def _precedence(incarnation: int, status: int) -> Tuple[int, int]:
        return (incarnation, status)

    def _apply_update(self, update: GossipUpdate,
                      events: List[Event]) -> None:
        if update.pid == self.pid:
            # Refutation: any claim that we are suspect/dead at our
            # incarnation (or beyond) is beaten by a higher incarnation.
            if update.status in (SUSPECT, DEAD) \
                    and update.incarnation >= self.incarnation:
                self.incarnation = update.incarnation + 1
                self.false_suspicions_refuted += 1
                self._enqueue(
                    GossipUpdate(self.pid, self.incarnation, ALIVE)
                )
            return
        member = self._members.get(update.pid)
        if member is None:
            if update.status == DEAD:
                # Don't resurrect-then-kill unknown pids; just remember.
                self._members[update.pid] = _Member(
                    update.pid, update.incarnation, DEAD, self._tick
                )
                return
            self._members[update.pid] = _Member(
                update.pid, update.incarnation, update.status, self._tick
            )
            self._probe_order.append(update.pid)
            self._enqueue(update)
            events.append(
                PeerAlive(update.pid, update.incarnation)
                if update.status == ALIVE
                else PeerSuspect(update.pid, update.incarnation)
            )
            return
        current = self._precedence(member.incarnation, member.status)
        incoming = self._precedence(update.incarnation, update.status)
        if incoming <= current:
            return
        was = member.status
        member.incarnation = update.incarnation
        member.status = update.status
        member.since_tick = self._tick
        self._enqueue(update)
        if update.status == ALIVE and was != ALIVE:
            events.append(PeerAlive(update.pid, update.incarnation))
        elif update.status == SUSPECT and was != SUSPECT:
            events.append(PeerSuspect(update.pid, update.incarnation))
        elif update.status == DEAD and was != DEAD:
            events.append(PeerConfirm(update.pid, update.incarnation))

    def _alive_evidence(self, pid: int, incarnation: int,
                        events: List[Event]) -> None:
        """Direct contact with ``pid`` (ack or ping) proves it alive."""
        self._apply_update(GossipUpdate(pid, incarnation, ALIVE), events)
        member = self._members.get(pid)
        if member is not None and member.status != ALIVE \
                and member.incarnation <= incarnation:
            # Same-incarnation suspicion cannot be cleared by evidence
            # alone under the precedence order (suspect outranks alive
            # at equal incarnation, so third parties need the
            # refutation) — but *local* direct contact is stronger than
            # gossip: stop our own suspicion clock so we never confirm
            # a node we can literally hear.
            member.since_tick = self._tick

    # -- probing -----------------------------------------------------------

    def _next_probe_target(self) -> Optional[int]:
        candidates = [
            m.pid for m in self._members.values() if m.status != DEAD
        ]
        if not candidates:
            return None
        for _attempt in range(len(self._probe_order) + 1):
            if self._probe_cursor >= len(self._probe_order):
                self._probe_order = candidates
                self._rng.shuffle(self._probe_order)
                self._probe_cursor = 0
            pid = self._probe_order[self._probe_cursor]
            self._probe_cursor += 1
            member = self._members.get(pid)
            if member is not None and member.status != DEAD \
                    and pid not in {p.target for p in self._inflight.values()}:
                return pid
        return None

    def _recon_target(self) -> Optional[int]:
        dead = sorted(
            m.pid for m in self._members.values() if m.status == DEAD
        )
        if not dead:
            return None
        self._recon_cursor = (self._recon_cursor + 1) % len(dead)
        return dead[self._recon_cursor]

    def _make_ping(self, target: int) -> Tuple[int, GossipPing]:
        self._probe_seq += 1
        probe_id = self._probe_seq
        self._inflight[probe_id] = _Probe(target, self._tick)
        return probe_id, GossipPing(
            self.pid, self.incarnation, probe_id, self._piggyback()
        )

    def _indirect_relayers(self, target: int) -> List[int]:
        candidates = [
            m.pid for m in self._members.values()
            if m.status == ALIVE and m.pid != target
        ]
        self._rng.shuffle(candidates)
        return candidates[: self.config.indirect_probes]

    # -- the sans-IO surface ----------------------------------------------

    def tick(self) -> Tuple[List[Send], List[Event]]:
        """Advance one tick: fire probes, escalate timeouts."""
        self._tick += 1
        sends: List[Send] = []
        events: List[Event] = []
        config = self.config

        # Escalate in-flight probes.
        for probe_id in sorted(self._inflight):
            probe = self._inflight[probe_id]
            age = self._tick - probe.started_tick
            member = self._members.get(probe.target)
            if member is None or member.status == DEAD:
                del self._inflight[probe_id]
                continue
            if age >= config.probe_timeout_ticks:
                del self._inflight[probe_id]
                if member.status == ALIVE:
                    update = GossipUpdate(
                        probe.target, member.incarnation, SUSPECT
                    )
                    member.status = SUSPECT
                    member.since_tick = self._tick
                    self._enqueue(update)
                    events.append(
                        PeerSuspect(probe.target, member.incarnation)
                    )
            elif age >= config.ping_timeout_ticks and not probe.indirect_sent:
                probe.indirect_sent = True
                for relayer in self._indirect_relayers(probe.target):
                    sends.append((relayer, GossipPingReq(
                        self.pid, self.incarnation, probe.target,
                        probe_id, self._piggyback(),
                    )))

        # Expire suspicions into confirms.
        for member in list(self._members.values()):
            if member.status == SUSPECT and \
                    self._tick - member.since_tick >= config.suspicion_ticks:
                member.status = DEAD
                member.since_tick = self._tick
                self._enqueue(
                    GossipUpdate(member.pid, member.incarnation, DEAD)
                )
                events.append(PeerConfirm(member.pid, member.incarnation))

        # Start the periodic probe round.
        if self._tick % config.ping_interval_ticks == 0:
            self._round_counter += 1
            target = self._next_probe_target()
            if target is not None:
                _probe_id, ping = self._make_ping(target)
                sends.append((target, ping))
            if config.recon_round_interval and \
                    self._round_counter % config.recon_round_interval == 0:
                recon = self._recon_target()
                if recon is not None:
                    # Fire-and-forget: no probe record, so no suspicion
                    # can come of it — a dead node is already dead.
                    self._probe_seq += 1
                    sends.append((recon, GossipPing(
                        self.pid, self.incarnation, self._probe_seq,
                        self._piggyback(),
                    )))

        self.messages_sent += len(sends)
        return sends, events

    def handle(self, message: object, src: int) -> Tuple[List[Send], List[Event]]:
        """Process one received gossip message."""
        sends: List[Send] = []
        events: List[Event] = []
        if isinstance(message, GossipPing):
            for update in message.updates:
                self._apply_update(update, events)
            self._alive_evidence(message.sender, message.incarnation, events)
            updates = self._piggyback()
            member = self._members.get(message.sender)
            if member is not None and member.status == DEAD:
                # The sender is talking, yet our books say dead: hand it
                # the record so it can refute (rejoin-by-refutation).
                updates = updates + (GossipUpdate(
                    member.pid, member.incarnation, DEAD
                ),)
            sends.append((src, GossipAck(
                self.pid, self.incarnation, message.probe_id, updates
            )))
        elif isinstance(message, GossipPingReq):
            for update in message.updates:
                self._apply_update(update, events)
            self._alive_evidence(message.sender, message.incarnation, events)
            self._probe_seq += 1
            sub_id = self._probe_seq
            self._relays[sub_id] = _Relay(
                message.sender, message.probe_id, message.target
            )
            sends.append((message.target, GossipPing(
                self.pid, self.incarnation, sub_id, self._piggyback()
            )))
        elif isinstance(message, GossipAck):
            for update in message.updates:
                self._apply_update(update, events)
            self._alive_evidence(message.sender, message.incarnation, events)
            relay = self._relays.pop(message.probe_id, None)
            if relay is not None and message.sender == relay.target:
                # Relay the attestation to whoever asked for it.
                sends.append((relay.origin, GossipAck(
                    message.sender, message.incarnation,
                    relay.origin_probe_id, self._piggyback(),
                )))
            self._inflight.pop(message.probe_id, None)
        else:
            raise TypeError("unknown gossip message %r" % (message,))
        self.messages_sent += len(sends)
        return sends, events
