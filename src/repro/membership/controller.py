"""The membership state machine: Gather / Commit / Recover / Operational.

A faithful-but-simplified version of the Totem membership algorithm as
used by Spread (the paper reuses it unchanged; the ordering protocol is
the contribution).  Each :class:`EVSProcess` wraps one ordering
:class:`~repro.core.Participant` and carries it through configuration
changes with Extended Virtual Synchrony semantics:

* **Operational** — normal ordering on the current ring.  Token loss,
  a foreign message, or a join shifts the process to Gather.
* **Gather** — flood :class:`JoinMessage`s until every live member of
  the proposed ``proc_set`` agrees on (proc_set, fail_set); unresponsive
  processes move to the fail set on timeout.  The lowest-id member of
  the agreed membership is the representative.
* **Commit** — the representative circulates a :class:`CommitToken`;
  rotation one collects every member's old-ring state, rotation two
  distributes the complete table.
* **Recover** — members flood the old-ring messages they hold (down to
  the continuing members' common delivery floor), then deliver: the
  gap-free stable prefix in the old regular configuration, a
  transitional configuration event, the remaining recovered messages
  with transitional guarantees, and finally the new regular
  configuration — after which a fresh ring starts.

Time is logical: the driver calls :meth:`EVSProcess.tick` once per step
and all timeouts are counted in ticks, keeping every scenario
deterministic and replayable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..core import (
    DataMessage,
    Deliver,
    Discard,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
    initial_token,
)
from ..evs import AppMessage, ConfigChange, Configuration
from .messages import (
    CommitToken,
    JoinMessage,
    MemberInfo,
    ProbeMessage,
    RecoveryComplete,
    RecoveryData,
)


class State(enum.Enum):
    OPERATIONAL = "operational"
    GATHER = "gather"
    COMMIT = "commit"
    RECOVER = "recover"


#: Ring ids are (sequence, representative) packed into one int so that
#: two partitions reconfiguring concurrently can never mint the same id
#: (Totem's ring ids are (rep, seq) pairs for exactly this reason).
_RING_ID_STRIDE = 1 << 20


def make_ring_id(seq: int, representative: int) -> int:
    return seq * _RING_ID_STRIDE + representative


def ring_id_seq(ring_id: int) -> int:
    return ring_id // _RING_ID_STRIDE


@dataclass(frozen=True)
class Outgoing:
    """A message the process wants sent.  ``dst`` None means multicast."""

    kind: str  # "token" | "data" | "ctrl"
    payload: Any
    dst: Optional[int] = None


@dataclass
class MembershipTimeouts:
    """All in logical ticks (one driver step each)."""

    token_loss_ticks: int = 60
    gather_ticks: int = 40
    commit_ticks: int = 80
    #: How often an Operational process announces itself (merge discovery).
    probe_interval_ticks: int = 25
    #: After this many fruitless gather timeouts, collapse to a
    #: singleton ring (guaranteed progress); probes re-merge later.
    max_gather_attempts: int = 8


class EVSProcess:
    """One process running ordering + membership with EVS delivery."""

    #: Reconfiguration attempts without a successful install before the
    #: singleton circuit breaker fires (see _start_gather).
    _FRUSTRATION_LIMIT = 10

    def __init__(
        self,
        pid: int,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        stable_ring_seq: int = 0,
    ) -> None:
        self.pid = pid
        self.config = config or ProtocolConfig()
        self.timeouts = timeouts or MembershipTimeouts()
        # Symmetry breaker.  Identical timers across processes let
        # concurrent membership attempts collide in perfect lockstep
        # forever: every gather times out on the same tick, every
        # process restarts on the same tick, and the collision repeats —
        # a true livelock under a deterministic driver.  Totem breaks
        # such orbits with randomized timers; we use a deterministic
        # per-(pid, attempt) jitter instead, which keeps every scenario
        # replayable.  The jitter must change from attempt to attempt —
        # a fixed per-pid offset merely trades one periodic orbit for
        # another.
        self._attempt_counter = 0
        self._rejitter()
        #: Totem-style probe broadcasts announce an Operational process
        #: every probe interval — an all-to-all control flood at scale.
        #: A host that runs an external failure detector (the SWIM-style
        #: gossip layer, :mod:`repro.membership.gossip`) turns them off
        #: and feeds :meth:`notify_peer_alive` / :meth:`notify_peer_failed`
        #: instead; gather/commit/recovery are unchanged.
        self.probes_enabled = True
        #: Application-visible events: AppMessage and ConfigChange, in order.
        self.app_log: List[Union[AppMessage, ConfigChange]] = []

        # Boot as a singleton configuration (Totem-style).
        self.ring = Ring.of([pid], ring_id=pid)
        self.participant = Participant(pid, self.ring, self.config)
        self.state = State.OPERATIONAL
        self.app_log.append(ConfigChange(Configuration.regular(pid, (pid,))))

        # Totem keeps the ring sequence number in stable storage so a
        # ring id is never reused across a crash: a rebooted process
        # that starts its singleton rings from zero can re-mint a ring
        # id its previous incarnation already delivered messages under,
        # and two different configurations sharing one id is a virtual
        # synchrony violation waiting to be observed.  A restarting
        # driver passes the previous incarnation's value here (the
        # "disk"); everything else about the process is amnesiac.
        self._highest_ring_seq = stable_ring_seq
        self._ticks_since_token = 0
        self._state_ticks = 0

        # Gather state.
        self._proc_set: Set[int] = {pid}
        self._fail_set: Set[int] = set()
        self._joins: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
        self._gather_attempts = 0
        self._frustration = 0
        self._join_cooldown = 0
        self._join_dirty = False
        self._mismatch_strikes: Dict[int, int] = {}
        self._silence_strikes: Dict[int, int] = {}
        self._strike_snapshot: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}

        # Commit/recovery state.
        self._commit: Optional[CommitToken] = None
        self._recovery_union: Dict[int, DataMessage] = {}
        self._recovery_done: Set[int] = set()
        self._installed = True

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------

    def submit(self, payload: Any, service: Service = Service.AGREED,
               payload_size: int = 0) -> None:
        self.participant.submit(payload, service, payload_size)

    def delivered_messages(self) -> List[AppMessage]:
        return [e for e in self.app_log if isinstance(e, AppMessage)]

    def configurations(self) -> List[Configuration]:
        return [e.configuration for e in self.app_log if isinstance(e, ConfigChange)]

    @property
    def current_configuration(self) -> Configuration:
        for event in reversed(self.app_log):
            if isinstance(event, ConfigChange):
                return event.configuration
        raise RuntimeError("no configuration delivered yet")

    # ------------------------------------------------------------------
    # Driver API: message handling
    # ------------------------------------------------------------------

    def _is_foreign(self, ring_id: int, src: int) -> bool:
        """A message that justifies reconfiguration.

        Traffic from a process outside our ring means a mergeable
        component exists; traffic for a *newer* ring means we were left
        behind.  Traffic for an older ring we have moved past is merely
        stale and must NOT trigger a new membership round (that would
        reconfigure forever on queued leftovers).
        """
        if ring_id == self.ring.ring_id:
            return False
        if src not in self.ring:
            return True
        return ring_id_seq(ring_id) > ring_id_seq(self.ring.ring_id)

    def handle_token(self, ring_id: int, token: Token, src: int) -> List[Outgoing]:
        if self.state is not State.OPERATIONAL:
            return []  # membership change in progress; old tokens die
        if ring_id != self.ring.ring_id:
            if self._is_foreign(ring_id, src):
                return self._start_gather(extra_procs={src})
            return []
        self._ticks_since_token = 0
        return self._run_participant_actions(self.participant.on_token(token))

    def handle_data(self, ring_id: int, message: DataMessage, src: int) -> List[Outgoing]:
        if ring_id != self.ring.ring_id:
            if self.state is State.OPERATIONAL and self._is_foreign(ring_id, src):
                return self._start_gather(extra_procs={src})
            return []
        if not self._installed:
            return []
        # Data for the current ring is processed (and delivered — the
        # regular configuration stands until a config change is
        # delivered) even while membership is forming, so recovery has
        # as much as possible to work with.
        self._ticks_since_token = 0
        return self._run_participant_actions(self.participant.on_data(message))

    def bootstrap(self) -> List[Outgoing]:
        """Announce ourselves at startup: enter Gather immediately.

        A freshly started daemon does not wait to be discovered; it
        floods a join so connected processes form a ring right away.
        """
        return self._start_gather()

    def handle_ctrl(self, message: Any, src: int) -> List[Outgoing]:
        if isinstance(message, ProbeMessage):
            return self._on_probe(message)
        if isinstance(message, JoinMessage):
            return self._on_join(message)
        if isinstance(message, CommitToken):
            return self._on_commit_token(message)
        if isinstance(message, RecoveryData):
            return self._on_recovery_data(message)
        if isinstance(message, RecoveryComplete):
            return self._on_recovery_complete(message)
        raise TypeError("unknown control message %r" % (message,))

    def tick(self) -> List[Outgoing]:
        """One logical time step: drive the state's timeout."""
        self._state_ticks += 1
        if self.state is State.OPERATIONAL:
            self._ticks_since_token += 1
            if (
                len(self.ring) > 1
                and self._ticks_since_token > self.timeouts.token_loss_ticks
            ):
                return self._start_gather()
            if self.probes_enabled and self._state_ticks % self._probe_ticks == 0:
                return [
                    Outgoing("ctrl", ProbeMessage(self.pid, self.ring.ring_id))
                ]
            return []
        if self.state is State.GATHER:
            out: List[Outgoing] = []
            if self._join_cooldown > 0:
                self._join_cooldown -= 1
                if self._join_cooldown == 0 and self._join_dirty:
                    out.extend(self._broadcast_join())
            if self._state_ticks > self._gather_ticks:
                out.extend(self._gather_timeout())
            return out
        # COMMIT or RECOVER stuck: fall back to gather among the members
        # we were trying to form (minus nobody; the next gather round's
        # timeout will fail the unresponsive ones).  The failed attempt's
        # membership is carried into the new gather — resetting to the
        # old ring would forget every process learned during the attempt
        # and re-fragment the membership.
        if self._state_ticks > self._commit_ticks:
            attempt = set(self._commit.members) if self._commit else set()
            return self._start_gather(extra_procs=attempt)
        return []

    @property
    def token_has_priority(self) -> bool:
        return self.participant.token_has_priority

    @property
    def stable_ring_seq(self) -> int:
        """The persisted ring epoch a restart must carry forward.

        Models Totem's stable-storage ring sequence number: the value
        is updated whenever a higher ring sequence is observed (join,
        commit token, install), which is exactly when a real daemon
        would write it to disk.
        """
        return self._highest_ring_seq

    # ------------------------------------------------------------------
    # Operational internals
    # ------------------------------------------------------------------

    def _run_participant_actions(self, actions) -> List[Outgoing]:
        out: List[Outgoing] = []
        for action in actions:
            if isinstance(action, SendData):
                out.append(Outgoing("data", (self.ring.ring_id, action.message)))
            elif isinstance(action, SendToken):
                out.append(
                    Outgoing("token", (self.ring.ring_id, action.token), dst=action.dst)
                )
            elif isinstance(action, Deliver):
                message = action.message
                self.app_log.append(
                    AppMessage(
                        ring_id=self.ring.ring_id,
                        seq=message.seq,
                        sender=message.pid,
                        payload=message.payload,
                        safe=message.service.requires_stability,
                        transitional=False,
                    )
                )
            elif isinstance(action, Discard):
                pass
        return out

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------

    def _rejitter(self) -> None:
        """Re-draw the timer jitter for the next membership attempt.

        A deterministic stand-in for Totem's randomized timeouts: a
        small hash of (pid, attempt number) offsets the gather, commit
        and probe timers, so colliding attempts drift out of phase and
        — because the offsets differ every round — the membership race
        cannot settle into a periodic orbit.
        """
        self._attempt_counter += 1
        x = (self.pid * 2654435761 + self._attempt_counter * 40503) & 0xFFFFFFFF
        x ^= x >> 16
        # Offsets scale with the configured timeouts (~a third of each)
        # so tightly-tuned test configurations stay tight.
        gather = self.timeouts.gather_ticks
        commit = self.timeouts.commit_ticks
        probe = self.timeouts.probe_interval_ticks
        self._gather_ticks = gather + x % (gather // 3 + 2)
        self._commit_ticks = commit + (x >> 5) % (commit // 3 + 2)
        self._probe_ticks = probe + (x >> 10) % (probe // 4 + 2)

    def _start_gather(
        self,
        extra_procs: Optional[Set[int]] = None,
        extra_fails: Optional[Set[int]] = None,
    ) -> List[Outgoing]:
        self.state = State.GATHER
        self._rejitter()
        self._state_ticks = 0
        self._gather_attempts = 0
        self._mismatch_strikes = {}
        self._silence_strikes = {}
        self._strike_snapshot = {}
        self._join_cooldown = 0
        self._join_dirty = False
        self._proc_set = set(self.ring.members) | {self.pid} | (extra_procs or set())
        # A failure detector (gossip) may pre-seed the fail set so the
        # gather does not burn three silence strikes rediscovering what
        # the detector already knows.  Grounding still applies: a join
        # from a pre-failed process proves it alive and scrubs it.
        self._fail_set = set(extra_fails or ()) - {self.pid}
        self._proc_set |= self._fail_set
        self._joins = {}
        self._commit = None
        self._recovery_union = {}
        self._recovery_done = set()
        self._frustration += 1
        if self._frustration > self._FRUSTRATION_LIMIT:
            # Circuit breaker: this many reconfigurations without a
            # single successful install means the membership race is
            # churning (rival attempts displacing each other, stale
            # fail-set gossip re-splitting the group).  Stop arguing:
            # install a singleton ring, which always succeeds — the
            # self-addressed commit token is handled atomically — and
            # let Operational probes drive a calm re-merge.  The
            # poisonous everyone-failed join is deliberately NOT
            # broadcast; going quiet is the point.
            self._fail_set = self._proc_set - {self.pid}
            view = (frozenset(self._proc_set), frozenset(self._fail_set))
            self._joins = {self.pid: view}
            return self._check_consensus()
        return self._broadcast_join()

    def _broadcast_join(self) -> List[Outgoing]:
        join = JoinMessage(
            sender=self.pid,
            proc_set=frozenset(self._proc_set),
            fail_set=frozenset(self._fail_set),
            ring_seq=self._highest_ring_seq,
        )
        self._joins[self.pid] = (join.proc_set, join.fail_set)
        self._join_dirty = False
        # The cooldown must keep the AGGREGATE join arrival rate at any
        # process strictly below its one-control-message-per-tick drain
        # capacity, counting BOTH broadcast sources: n-1 peers batching
        # behind their cooldowns (n-1 ÷ cooldown) plus their
        # gather-timeout rebroadcasts (n-1 ÷ gather window).  At one
        # tick per member (the old value) the cooldown term alone
        # approaches 1.0 as n grows, so the timeout term tips a
        # 50-process gather into meltdown: the backlog diverges, every
        # process argues with an ever-staler past, and silence strikes
        # fail live members faster than consensus can form.  Two ticks
        # per member holds the cooldown term at 0.5, leaving the other
        # half of the drain budget for timeout rebroadcasts and commit
        # traffic (gather windows are sized >= 2(n-1) ticks at scale).
        self._join_cooldown = max(8, 2 * len(self._proc_set))
        return [Outgoing("ctrl", join)]

    def _queue_join_broadcast(self) -> List[Outgoing]:
        """Broadcast our join now, or mark it for the next cooldown expiry.

        Totem floods join messages on a TIMER.  Rebroadcasting eagerly
        on every view change amplifies each received join into n-1 new
        ones, and under churn that melts the control plane down: the
        join backlog grows faster than one-message-per-step processing
        drains it, so every process reacts to an ever-older past and
        the membership race never settles.  Batching rapid view changes
        behind a short cooldown keeps the join rate strictly below the
        drain rate, which is what lets gathers actually converge.
        """
        view = (frozenset(self._proc_set), frozenset(self._fail_set))
        self._joins[self.pid] = view
        if self._join_cooldown <= 0:
            return self._broadcast_join()
        self._join_dirty = True
        return []

    def _on_probe(self, probe: ProbeMessage) -> List[Outgoing]:
        if self.state is State.OPERATIONAL:
            if self._is_foreign(probe.ring_id, probe.sender):
                return self._start_gather(extra_procs={probe.sender})
            return []
        if self.state is State.GATHER and probe.sender not in self._proc_set:
            self._proc_set.add(probe.sender)
            self._state_ticks = 0
            return self._queue_join_broadcast()
        return []

    # -- external failure detector (gossip) hooks ----------------------

    def notify_peer_alive(self, pid: int) -> List[Outgoing]:
        """Detector evidence that ``pid`` is up and reachable.

        The gossip-layer replacement for the foreign-probe trigger:
        a live process outside our ring means a mergeable component
        exists, so reconfigure toward it.  Evidence about processes
        already in the ring is a no-op.
        """
        if pid == self.pid:
            return []
        if self.state is State.OPERATIONAL:
            if pid not in self.ring:
                return self._start_gather(extra_procs={pid})
            return []
        if self.state is State.GATHER and pid not in self._proc_set:
            self._proc_set.add(pid)
            self._state_ticks = 0
            return self._queue_join_broadcast()
        return []

    def notify_peer_failed(self, pid: int) -> List[Outgoing]:
        """Detector verdict that ``pid`` is dead (suspicion expired).

        Replaces waiting out the token-loss timeout: an Operational
        process reconfigures immediately with ``pid`` pre-seeded into
        the fail set, and a gathering process adds the verdict to its
        view.  The verdict is evidence, not truth — a join from the
        condemned process proves it alive and the grounding rule
        scrubs it from the merged fail set.
        """
        if pid == self.pid:
            return []
        if self.state is State.OPERATIONAL:
            if pid in self.ring and len(self.ring) > 1:
                return self._start_gather(extra_fails={pid})
            return []
        if self.state is State.GATHER and pid not in self._fail_set \
                and pid in self._proc_set:
            self._fail_set.add(pid)
            view = (frozenset(self._proc_set), frozenset(self._fail_set))
            self._joins = {
                sender: sets
                for sender, sets in self._joins.items()
                if sets == view
            }
            out = self._queue_join_broadcast()
            out.extend(self._check_consensus())
            return out
        return []

    def _on_join(self, join: JoinMessage) -> List[Outgoing]:
        if self.state in (State.COMMIT, State.RECOVER):
            # A join carrying no knowledge of our in-flight attempt must
            # not abort it (that way lies livelock: concurrent gathers
            # keep killing each other's commits).  The joiner will see
            # our new ring via probes and trigger a calmer merge.  Only
            # a join that already knows an equal-or-newer ring sequence
            # dooms the attempt.
            # Joins NEVER abort an in-flight attempt.  Either the
            # attempt completes (and probes then merge the joiner in) or
            # its commit timeout expires and the next gather hears the
            # joiner.  A newer attempt displaces an older one through
            # its rotation-1 token, not through join chatter — this is
            # what makes concurrent membership attempts converge instead
            # of endlessly killing each other.
            self._highest_ring_seq = max(self._highest_ring_seq, join.ring_seq)
            return []
        if self.state is not State.GATHER:
            # Any join is evidence that membership must change.
            out = self._start_gather(extra_procs=set(join.proc_set))
            return out + self._merge_join(join)
        return self._merge_join(join)

    def _merge_join(self, join: JoinMessage) -> List[Outgoing]:
        self._highest_ring_seq = max(self._highest_ring_seq, join.ring_seq)
        merged_procs = self._proc_set | set(join.proc_set)
        # Union the fail sets (consensus needs a common view of who is
        # gone) but ground them in reality: a join from a process is
        # proof it is alive and reachable, so it must not stay failed
        # merely by stale gossip — without this, second-hand fail sets
        # circulate forever and fragment the membership into slivers.
        merged_fails = (self._fail_set | set(join.fail_set)) - {self.pid}
        merged_fails.discard(join.sender)
        out: List[Outgoing] = []
        if merged_procs != self._proc_set or merged_fails != self._fail_set:
            # The consensus clock restarts only when the membership
            # GROWS (a new participant genuinely widens the agreement
            # problem).  Fail-set churn must not restart it: stale fail
            # gossip echoing between joins can flip fail sets forever,
            # and if each flip reset the clock the gather timeout — the
            # only source of fresh evidence (strikes, escape hatch) —
            # would never fire.
            if merged_procs != self._proc_set:
                self._state_ticks = 0
            self._proc_set = merged_procs
            self._fail_set = merged_fails
            self._joins = {
                pid: sets
                for pid, sets in self._joins.items()
                if sets == (frozenset(merged_procs), frozenset(merged_fails))
            }
            out.extend(self._queue_join_broadcast())
        self._joins[join.sender] = (join.proc_set, join.fail_set)
        self._silence_strikes.pop(join.sender, None)
        out.extend(self._check_consensus())
        return out

    def _gather_timeout(self) -> List[Outgoing]:
        self._gather_attempts += 1
        if self._gather_attempts > self.timeouts.max_gather_attempts:
            # Livelock escape: give up on agreement with the others for
            # now and proceed alone; Operational probes will trigger a
            # fresh, calmer merge attempt afterwards.  Like the
            # frustration breaker, the everyone-failed view is NOT
            # broadcast — it would only seed more stale fail gossip.
            self._fail_set = self._proc_set - {self.pid}
            view = (frozenset(self._proc_set), frozenset(self._fail_set))
            self._joins = {self.pid: view}
            return self._check_consensus()
        self._state_ticks = 0
        # Processes that never answered this gather are suspects, but a
        # process deep in a rival COMMIT/RECOVER legitimately ignores
        # join traffic for longer than one gather window — failing it on
        # first silence fragments the membership and the fragments then
        # chase each other forever.  Silence must outlast a full commit
        # attempt (several consecutive timeouts) to count as death.
        silent = set()
        for pid in sorted(
                self._proc_set - set(self._joins) - {self.pid}
                - self._fail_set):
            strikes = self._silence_strikes.get(pid, 0) + 1
            self._silence_strikes[pid] = strikes
            if strikes >= 3:
                silent.add(pid)
        # Processes whose view merely LAGS ours are NOT failed on first
        # sight — proc/fail sets grow monotonically within a gather, so
        # crossing joins converge on their own; failing eager responders
        # is how membership livelocks.  Only persistent stragglers
        # (several consecutive timeouts with a stale view) are failed.
        view = (frozenset(self._proc_set), frozenset(self._fail_set))
        stale = set()
        for pid, sets in self._joins.items():
            if pid == self.pid or pid in self._fail_set:
                continue
            if sets != view and sets == self._strike_snapshot.get(pid):
                # Mismatched AND frozen since the last timeout: the
                # process is stuck on a stale view, not converging.
                strikes = self._mismatch_strikes.get(pid, 0) + 1
                self._mismatch_strikes[pid] = strikes
                if strikes >= 3:
                    stale.add(pid)
            else:
                # Matching, or mismatched but still evolving: progress.
                self._mismatch_strikes[pid] = 0
            self._strike_snapshot[pid] = sets
        self._fail_set |= silent | stale
        return self._broadcast_join() + self._check_consensus()

    def _check_consensus(self) -> List[Outgoing]:
        candidates = sorted(self._proc_set - self._fail_set)
        if not candidates or self.pid not in candidates:
            return []
        view = (frozenset(self._proc_set), frozenset(self._fail_set))
        if any(self._joins.get(pid) != view for pid in candidates):
            return []
        # Consensus.  The representative builds and circulates the
        # commit token; everyone else waits for it.
        if self.pid != candidates[0]:
            return []
        new_ring_id = make_ring_id(self._highest_ring_seq + 1, candidates[0])
        token = CommitToken(
            new_ring_id=new_ring_id,
            members=tuple(candidates),
            rotation=1,
        )
        return self._on_commit_token(token)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _my_member_info(self) -> MemberInfo:
        participant = self.participant
        return MemberInfo(
            pid=self.pid,
            old_ring_id=self.ring.ring_id,
            old_aru=participant.local_aru,
            high_seq=participant.buffer.highest_seq_seen,
            old_members=tuple(self.ring.members),
            old_safe_bound=participant.safe_bound,
            old_delivered_upto=participant.delivered_upto,
        )

    @staticmethod
    def _commit_successor(token: CommitToken, pid: int) -> int:
        members = token.members
        return members[(members.index(pid) + 1) % len(members)]

    def _on_commit_token(self, token: CommitToken) -> List[Outgoing]:
        if self.pid not in token.members:
            return []
        if token.new_ring_id <= self.ring.ring_id and self._installed:
            return []  # stale
        # Concurrent attempts: only the newest (highest ring seq) may
        # displace an in-flight one, otherwise circulating tokens of
        # rival attempts ping-pong processes between commits forever.
        if (
            self.state in (State.COMMIT, State.RECOVER)
            and self._commit is not None
            and token.new_ring_id < self._commit.new_ring_id
        ):
            return []
        # Any observed attempt advances the ring sequence so later
        # attempts can never mint a previously-used ring id.
        self._highest_ring_seq = max(
            self._highest_ring_seq, ring_id_seq(token.new_ring_id)
        )
        successor = self._commit_successor(token, self.pid)
        representative = token.members[0]
        if token.rotation == 1:
            updated = token.with_info(self._my_member_info())
            if self.state is not State.COMMIT:
                # The commit timeout runs from COMMIT entry; attempt
                # churn must not keep resetting it.
                self._state_ticks = 0
            self.state = State.COMMIT
            self._commit = updated
            if successor == representative:
                # The first rotation is complete.  Promote to rotation
                # two; when the representative is ourselves (singleton
                # attempts in particular) handle it ATOMICALLY — queuing
                # it would open a window for a crossing join to abort an
                # attempt that is already decided.
                second = CommitToken(
                    updated.new_ring_id, updated.members, 2, updated.collected
                )
                if successor == self.pid:
                    return self._on_commit_token(second)
                return [Outgoing("ctrl", second, dst=successor)]
            return [Outgoing("ctrl", updated, dst=successor)]
        # Rotation 2: the full table is aboard.  Enter recovery.
        if self.state is State.RECOVER and self._commit is not None and (
            self._commit.new_ring_id == token.new_ring_id
        ):
            return []  # duplicate
        my_info = token.info_for(self.pid)
        if my_info is None or my_info.old_ring_id != self.ring.ring_id:
            # A stale attempt: our collected info no longer matches the
            # ring we are on (we reconfigured since rotation one).
            return []
        self._commit = token
        out: List[Outgoing] = []
        if successor != representative:
            out.append(Outgoing("ctrl", token, dst=successor))
        out.extend(self._enter_recovery(token))
        return out

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _sharers(self, token: CommitToken) -> List[MemberInfo]:
        """New-ring members that were on OUR old ring (incl. ourselves)."""
        return [
            info
            for info in token.collected
            if info.old_ring_id == self.ring.ring_id
        ]

    def _enter_recovery(self, token: CommitToken) -> List[Outgoing]:
        self.state = State.RECOVER
        self._state_ticks = 0
        # _recovery_union/_recovery_done may already hold early arrivals
        # stashed while we were still in COMMIT — keep them.
        self._recovery_done.add(self.pid)
        sharers = self._sharers(token)
        if sharers:
            floor = min(info.old_delivered_upto for info in sharers)
        else:  # defensive: nobody shares our old ring, not even us
            floor = self.participant.delivered_upto
        out: List[Outgoing] = []
        buffer = self.participant.buffer
        for seq in buffer.held_seqs():
            if seq > floor:
                message = buffer.get(seq)
                out.append(
                    Outgoing(
                        "ctrl",
                        RecoveryData(self.pid, self.ring.ring_id, message),
                    )
                )
                self._recovery_union[seq] = message
        out.append(
            Outgoing("ctrl", RecoveryComplete(self.pid, token.new_ring_id))
        )
        if self._recovery_done >= set(token.members):
            out.extend(self._finalize_recovery())
        return out

    def _on_recovery_data(self, data: RecoveryData) -> List[Outgoing]:
        if self.state not in (State.COMMIT, State.RECOVER):
            return []
        if data.old_ring_id != self.ring.ring_id:
            return []  # another component's old ring: not our configuration
        self._recovery_union.setdefault(data.message.seq, data.message)
        return []

    def _on_recovery_complete(self, done: RecoveryComplete) -> List[Outgoing]:
        if self.state not in (State.COMMIT, State.RECOVER) or self._commit is None:
            return []
        if done.new_ring_id != self._commit.new_ring_id:
            return []
        self._recovery_done.add(done.sender)
        if (
            self.state is State.RECOVER
            and self._recovery_done >= set(self._commit.members)
        ):
            return self._finalize_recovery()
        return []

    def _finalize_recovery(self) -> List[Outgoing]:
        token = self._commit
        assert token is not None
        sharers = self._sharers(token)
        transitional_members = tuple(sorted(info.pid for info in sharers))
        old_ring_id = self.ring.ring_id
        delivered_upto = self.participant.delivered_upto
        safe_floor = self.participant.safe_bound

        known = dict(self._recovery_union)
        top = max(known) if known else delivered_upto
        regular_phase: List[AppMessage] = []
        transitional_phase: List[AppMessage] = []
        in_transitional = False
        for seq in range(delivered_upto + 1, top + 1):
            message = known.get(seq)
            if message is None:
                # A hole: nobody continuing holds it.  Everything after
                # it can only get transitional guarantees.
                in_transitional = True
                continue
            is_safe = message.service.requires_stability
            if is_safe and seq > safe_floor:
                in_transitional = True
            entry = AppMessage(
                ring_id=old_ring_id,
                seq=seq,
                sender=message.pid,
                payload=message.payload,
                safe=is_safe,
                transitional=in_transitional,
            )
            (transitional_phase if in_transitional else regular_phase).append(entry)

        self.app_log.extend(regular_phase)
        self.app_log.append(
            ConfigChange(
                Configuration.transitional(old_ring_id, transitional_members)
            )
        )
        self.app_log.extend(transitional_phase)
        new_config = Configuration.regular(token.new_ring_id, token.members)
        self.app_log.append(ConfigChange(new_config))

        # Install the new ring: per-ring protocol state is reset while
        # the unsent application backlog (and cumulative stats) carry
        # over.  rebind_ring also re-seeds the priority tracker with the
        # new ring's geometry — size, predecessor and index all change.
        self.ring = Ring.of(token.members, ring_id=token.new_ring_id)
        self.participant.rebind_ring(self.ring)
        self._highest_ring_seq = max(self._highest_ring_seq, ring_id_seq(token.new_ring_id))
        self.state = State.OPERATIONAL
        self._installed = True
        self._ticks_since_token = 0
        self._state_ticks = 0
        self._frustration = 0
        self._commit = None
        self._recovery_union = {}
        self._recovery_done = set()

        if self.pid == token.members[0]:
            # The representative injects the first regular token (to
            # itself: it is the first handler).
            return [
                Outgoing(
                    "token",
                    (self.ring.ring_id, initial_token(self.ring.ring_id)),
                    dst=self.pid,
                )
            ]
        return []
