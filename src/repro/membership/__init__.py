"""Totem-style membership with Extended Virtual Synchrony delivery.

The ordering protocol (the paper's contribution) assumes an established
ring; this package provides the substrate that establishes and changes
rings: failure detection, the Gather/Commit/Recover state machine, and
recovery of old-ring messages with EVS transitional semantics.
"""

from .controller import EVSProcess, MembershipTimeouts, Outgoing, State
from .gossip import (
    GossipAck,
    GossipConfig,
    GossipDetector,
    GossipPing,
    GossipPingReq,
    GossipUpdate,
    PeerAlive,
    PeerConfirm,
    PeerSuspect,
)
from .messages import (
    CommitToken,
    JoinMessage,
    MemberInfo,
    ProbeMessage,
    RecoveryComplete,
    RecoveryData,
)

__all__ = [
    "EVSProcess", "MembershipTimeouts", "Outgoing", "State",
    "JoinMessage", "CommitToken", "MemberInfo", "ProbeMessage",
    "RecoveryData", "RecoveryComplete",
    "GossipDetector", "GossipConfig", "GossipUpdate",
    "GossipPing", "GossipPingReq", "GossipAck",
    "PeerAlive", "PeerSuspect", "PeerConfirm",
]
