"""Membership control messages (Totem membership, Spread variant).

Three message kinds drive a membership change:

* :class:`JoinMessage` — flooded while in the Gather state; carries the
  sender's current view of who should be in the next ring (``proc_set``)
  and who has demonstrably failed (``fail_set``).  Consensus is reached
  when every live member of ``proc_set`` has sent a join with identical
  sets.
* :class:`CommitToken` — sent around the candidate ring by the
  representative; the first rotation collects every member's old-ring
  state, the second rotation distributes the complete table and starts
  recovery.
* :class:`RecoveryData` / :class:`RecoveryComplete` — old-ring messages
  flooded on the new ring so all continuing members share the same set,
  and the end-of-flood marker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..core.messages import DataMessage


@dataclass(frozen=True)
class ProbeMessage:
    """Periodic presence announcement (Operational state).

    Totem discovers mergeable rings through *foreign messages* — any
    traffic from a process outside the current ring.  An idle ring sends
    no multicast traffic, so daemons announce themselves periodically;
    receiving a probe from a foreign ring is the foreign-message trigger.
    """

    sender: int
    ring_id: int


@dataclass(frozen=True)
class JoinMessage:
    sender: int
    proc_set: FrozenSet[int]
    fail_set: FrozenSet[int]
    #: Highest ring id the sender has belonged to (new ring id exceeds all).
    ring_seq: int


@dataclass(frozen=True)
class MemberInfo:
    """What one member contributes on the commit token's first rotation."""

    pid: int
    old_ring_id: int
    #: The member's old-ring local aru (all received through here).
    old_aru: int
    #: Highest old-ring seq the member holds any message for.
    high_seq: int
    #: The old configuration's membership as this member knew it.
    old_members: Tuple[int, ...]
    #: The member's old-ring stability (safe) bound.
    old_safe_bound: int
    #: How far the member had delivered on the old ring.
    old_delivered_upto: int


@dataclass(frozen=True)
class CommitToken:
    new_ring_id: int
    members: Tuple[int, ...]
    rotation: int
    collected: Tuple[MemberInfo, ...] = ()

    def with_info(self, info: MemberInfo) -> "CommitToken":
        existing = tuple(i for i in self.collected if i.pid != info.pid)
        return CommitToken(
            self.new_ring_id, self.members, self.rotation,
            existing + (info,),
        )

    def info_for(self, pid: int) -> Optional[MemberInfo]:
        for info in self.collected:
            if info.pid == pid:
                return info
        return None

    @property
    def complete(self) -> bool:
        return {i.pid for i in self.collected} == set(self.members)


@dataclass(frozen=True)
class RecoveryData:
    """An old-ring message flooded during recovery."""

    sender: int
    old_ring_id: int
    message: DataMessage


@dataclass(frozen=True)
class RecoveryComplete:
    """Sender has flooded everything it holds for recovery."""

    sender: int
    new_ring_id: int
