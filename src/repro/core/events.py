"""Lightweight instrumentation hooks for the protocol core.

Tests and benchmarks subscribe to named protocol events without the core
knowing anything about them.  Hooks are synchronous and exception-
transparent: a broken subscriber fails the run loudly rather than
corrupting measurements silently.

Payloads are positional: each event name below documents the argument
list its subscribers receive.  (Keyword dispatch was measured at ~3x
the cost per event — a dict build plus ``fn(**payload)`` unpack — which
the lifecycle tracer's per-message stages cannot afford.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, Dict, List

Subscriber = Callable[..., None]

#: Event names emitted by Participant, with their positional payloads.
TOKEN_HANDLED = "token_handled"          # (pid, received, sent, new_messages, retransmissions)
DATA_RECEIVED = "data_received"          # (pid, message, new)
MESSAGE_SENT = "message_sent"            # (pid, message)
MESSAGE_DELIVERED = "message_delivered"  # (pid, message)
RETRANSMISSION_SENT = "retransmission_sent"            # (pid, message)
RETRANSMISSION_REQUESTED = "retransmission_requested"  # (pid, seqs)
MESSAGES_DISCARDED = "messages_discarded"              # (pid, upto)
DUPLICATE_TOKEN = "duplicate_token"      # (pid, token)


class EventHub:
    """A tiny synchronous pub/sub used for protocol observability."""

    __slots__ = ("_subscribers", "counts", "active")

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)
        self.counts: Dict[str, int] = defaultdict(int)
        #: True once anything has subscribed.  Hot emitters (one emit per
        #: data message) check this and fall back to a bare counter
        #: increment, skipping the keyword-dict build for the common
        #: nobody-is-listening case (benchmarks, sweeps).
        self.active = False

    def subscribe(self, event: str, fn: Subscriber) -> None:
        self._subscribers[event].append(fn)
        self.active = True

    def emit(self, event: str, *args: Any) -> None:
        self.counts[event] += 1
        subscribers = self._subscribers.get(event)
        if subscribers:
            for fn in subscribers:
                fn(*args)

    def count(self, event: str) -> int:
        return self.counts.get(event, 0)
