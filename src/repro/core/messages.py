"""Protocol message types: data messages and the token.

Field names follow Section III of the paper exactly (``seq``, ``aru``,
``fcc``, ``rtr``, ``pid``, ``round``).  The token's ``hop`` field is the
per-handling counter used for duplicate detection and for the priority
methods: every participant increments it when handling the token, so a
participant's handlings are ``h, h + n, h + 2n, ...`` on an ``n``-ring,
and the data-message ``round`` field records the hop of the handling in
which the message was initiated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .config import Service


@dataclass(slots=True, unsafe_hash=True)
class DataMessage:
    """One application message on the ring (Section III-B).

    Instances are immutable by convention: the same object is inserted in
    the sender's buffer, shipped on the (simulated or real) wire, and
    retransmitted on request, so nothing may mutate it after creation.
    ``unsafe_hash`` keeps the field-based hash/eq a frozen dataclass would
    generate while using the plain-store ``__init__`` — a frozen slots
    dataclass routes every field through ``object.__setattr__`` and is
    ~4x slower to construct, which dominated both wire decode and the
    simulator's message-initiation path.
    """

    #: Position in the total order (assigned by the initiator from the token).
    seq: int
    #: Identifier of the initiating participant.
    pid: int
    #: Token hop of the handling in which the message was initiated.
    round: int
    #: Delivery service requested by the application.
    service: Service
    #: Application payload — opaque to the protocol.
    payload: Any = None
    #: Payload size in bytes (drivers add per-implementation headers).
    payload_size: int = 0
    #: True when the message was multicast in the post-token phase.  The
    #: conservative priority method keys on this flag.
    sent_after_token: bool = False
    #: Submission timestamp in the driver's clock (latency accounting).
    submitted_at: Optional[float] = None

    def as_post_token(self) -> "DataMessage":
        """The same message flagged as sent after the token."""
        if self.sent_after_token:
            return self
        # Hand-rolled copy: this runs for every accelerated-window message
        # of every round, and dataclasses.replace is ~10x slower.
        return DataMessage(
            self.seq, self.pid, self.round, self.service, self.payload,
            self.payload_size, True, self.submitted_at,
        )

    def __repr__(self) -> str:
        return "DataMessage(seq=%d, pid=%d, round=%d, %s%s)" % (
            self.seq, self.pid, self.round, self.service.value,
            ", post-token" if self.sent_after_token else "",
        )


#: Serialized size of a token with an empty rtr list, bytes.  Matches the
#: order of magnitude of Totem/Spread regular tokens, and is exactly what
#: the wire codec (:mod:`repro.wire.codec`) produces for an empty-rtr
#: token — ``tests/test_wire_sizes.py`` fails if the two ever drift.
TOKEN_BASE_SIZE = 72
#: Additional bytes per retransmission request carried on the token
#: (one u32 sequence number in the wire encoding).
TOKEN_RTR_ENTRY_SIZE = 4
#: Wire framing on a data message with a raw bytes payload: the frame
#: header plus the fixed data body of :mod:`repro.wire.codec`.  The
#: library cost profile charges exactly this per-message overhead, so
#: the simulator's figure benchmarks measure real datagram sizes.
DATA_HEADER_SIZE = 60


@dataclass(slots=True, unsafe_hash=True)
class Token:
    """The regular token (Section III-A).

    Immutable by convention (see :class:`DataMessage` for why the class
    is not ``frozen``): a handling produces a *new* token via
    :meth:`evolve`, which keeps tokens safe to retransmit and to log.
    """

    #: Identifier of the ring (configuration) this token belongs to.
    ring_id: int = 0
    #: Handling counter; incremented by every participant that handles it.
    hop: int = 0
    #: Highest sequence number claimed by any participant.
    seq: int = 0
    #: All-received-up-to: see the aru rules in Section III-A-2.
    aru: int = 0
    #: Participant that last lowered the aru (None if nobody holds it).
    aru_id: Optional[int] = None
    #: Flow-control count: messages multicast during the last full round.
    fcc: int = 0
    #: Sorted tuple of sequence numbers requested for retransmission.
    rtr: Tuple[int, ...] = ()

    def evolve(self, **overrides) -> "Token":
        """A copy with ``overrides`` applied (token-path hot spot).

        Equivalent to :func:`dataclasses.replace` — including the
        ``TypeError`` on unknown field names — but without its per-call
        field introspection: one token evolves on every handling of every
        simulated round.
        """
        pop = overrides.pop
        token = Token(
            pop("ring_id", self.ring_id),
            pop("hop", self.hop),
            pop("seq", self.seq),
            pop("aru", self.aru),
            pop("aru_id", self.aru_id),
            pop("fcc", self.fcc),
            pop("rtr", self.rtr),
        )
        if overrides:
            raise TypeError(
                "evolve() got unexpected token fields %r" % sorted(overrides)
            )
        return token

    @property
    def size(self) -> int:
        """Serialized size in bytes (the token is a small control message)."""
        return TOKEN_BASE_SIZE + TOKEN_RTR_ENTRY_SIZE * len(self.rtr)

    def __repr__(self) -> str:
        return "Token(ring=%d, hop=%d, seq=%d, aru=%d, aru_id=%s, fcc=%d, rtr=%d reqs)" % (
            self.ring_id, self.hop, self.seq, self.aru,
            self.aru_id, self.fcc, len(self.rtr),
        )


def initial_token(ring_id: int = 0) -> Token:
    """The first regular token after membership establishes a ring."""
    return Token(ring_id=ring_id, hop=0, seq=0, aru=0, aru_id=None, fcc=0, rtr=())
