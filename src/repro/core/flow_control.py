"""Flow-control arithmetic (Section III-A-1).

The number of new messages a participant may initiate in a round is

    min( backlog,
         Personal_window,
         Global_window - received_token.fcc - num_retransmissions,
         Global_aru + Max_seq_gap - received_token.seq )

clamped at zero.  ``Global_aru`` — the highest seq known received by all
participants — is the aru carried on the token as received.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ProtocolConfig
from .messages import Token


@dataclass(slots=True, unsafe_hash=True)
class FlowControlDecision:
    """The budget for one token handling, with per-limit visibility.

    A value object, immutable by convention (``unsafe_hash`` keeps the
    field-based hash/eq of the earlier frozen declaration without
    ``frozen``'s per-field ``object.__setattr__`` construction cost —
    one decision is built on every token handling).
    """

    allowed_new: int
    limited_by_backlog: bool
    limited_by_personal_window: bool
    limited_by_global_window: bool
    limited_by_seq_gap: bool


def new_message_budget(
    config: ProtocolConfig,
    received_token: Token,
    backlog: int,
    num_retransmissions: int,
) -> FlowControlDecision:
    """How many new messages may be initiated this round."""
    global_budget = config.global_window - received_token.fcc - num_retransmissions
    gap_budget = received_token.aru + config.max_seq_gap - received_token.seq
    allowed = min(backlog, config.personal_window, global_budget, gap_budget)
    allowed = max(0, allowed)
    return FlowControlDecision(
        allowed_new=allowed,
        limited_by_backlog=allowed == backlog,
        limited_by_personal_window=allowed == config.personal_window,
        limited_by_global_window=allowed == max(0, global_budget),
        limited_by_seq_gap=allowed == max(0, gap_budget),
    )


def updated_fcc(
    received_token: Token,
    sent_last_round: int,
    sending_this_round: int,
) -> int:
    """New fcc: replace our last-round contribution with this round's."""
    return received_token.fcc - sent_last_round + sending_this_round
