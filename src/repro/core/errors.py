"""Exceptions raised by the protocol core."""

from __future__ import annotations


class ProtocolError(Exception):
    """Base class for all protocol-level errors."""


class ConfigurationError(ProtocolError):
    """Invalid protocol configuration (window sizes, ring shape, ...)."""


class RingError(ProtocolError):
    """Malformed ring definition or unknown participant."""


class TokenError(ProtocolError):
    """A token that violates protocol invariants (bad ring id, regressing
    fields) was handed to a participant."""


class DeliveryInvariantError(ProtocolError):
    """Internal delivery invariant broken — always a bug, never expected
    in correct runs; surfaced loudly instead of corrupting the order."""
