"""Retransmission-request bookkeeping (Section III-A-2, rtr rules).

The accelerated protocol's key subtlety: the ``seq`` field of a received
token may cover messages that *have not been sent yet* (the predecessor's
post-token phase is still in flight).  Requesting those would trigger
useless retransmissions, so a participant only requests gaps up through
the ``seq`` of the token it received in the **previous** round — by the
time the token comes around again, every message covered by the previous
token has certainly been multicast.
"""

from __future__ import annotations

from typing import List, Tuple

from .buffer import ReceiveBuffer
from .messages import DataMessage, Token


class RetransmitTracker:
    """Per-participant rtr state: the previous-round seq horizon."""

    __slots__ = ("_request_horizon", "requests_issued", "requests_answered")

    def __init__(self) -> None:
        #: seq of the token received in the previous round; gaps are only
        #: requested up to this horizon.
        self._request_horizon = 0
        self.requests_issued = 0
        self.requests_answered = 0

    @property
    def request_horizon(self) -> int:
        return self._request_horizon

    def answer_requests(
        self, token: Token, buffer: ReceiveBuffer
    ) -> Tuple[List[DataMessage], List[int]]:
        """Messages we can retransmit and the seqs that remain unanswered.

        Every answerable request must be answered in the pre-token phase
        (otherwise other participants would re-request them).
        """
        if not token.rtr:
            return [], []
        answered: List[DataMessage] = []
        remaining: List[int] = []
        for seq in token.rtr:
            message = buffer.get(seq)
            if message is not None:
                answered.append(message)
            elif seq > buffer.discarded_upto:
                # A stable (discarded) message is held by everyone; a
                # request for it is a stale duplicate and simply dropped.
                remaining.append(seq)
        self.requests_answered += len(answered)
        return answered, remaining

    def my_new_requests(self, buffer: ReceiveBuffer) -> List[int]:
        """Gaps this participant should request, bounded by the horizon."""
        missing = buffer.missing_between(buffer.local_aru, self._request_horizon)
        self.requests_issued += len(missing)
        return missing

    def merge_requests(
        self, remaining: List[int], mine: List[int]
    ) -> Tuple[int, ...]:
        """The outgoing token's rtr: unanswered requests plus our gaps.

        The loss-free common case (nothing unanswered, no gaps of our
        own) returns the shared empty tuple without any set/sort churn.
        """
        if not remaining and not mine:
            return ()
        return tuple(sorted(set(remaining) | set(mine)))

    def advance_horizon(self, received_token_seq: int) -> None:
        """Slide the horizon AFTER computing this round's requests."""
        if received_token_seq > self._request_horizon:
            self._request_horizon = received_token_seq
