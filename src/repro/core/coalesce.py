"""Jumbo-datagram coalescing: several protocol packets, one datagram.

The packing layer (:mod:`repro.core.packing`) amortizes *protocol*
overhead by carrying several small application messages inside one
MTU-bounded protocol packet.  This module layers the same idea one
level down: on the post-token flush, several MTU-bounded protocol
packets are coalesced into one *jumbo datagram*, amortizing the
per-datagram costs that packing cannot touch — the frame header, the
CRC, and above all the per-datagram send/receive syscall (Ring Paxos
and HT-Ring Paxos identify exactly this batching as the lever that gets
ring-based atomic broadcast to NIC saturation).

Coalescing never delays traffic: like packing, it is greedy over the
packets of a *single* flush — whatever one token handling emits gets
grouped, a lone packet still departs alone and immediately.  Sequence
numbers, flow control, retransmission and delivery all still operate on
the inner protocol packets; a jumbo datagram is pure transport framing.

The default cap of 8850 bytes matches the paper's large-payload profile
(fig. 4/6): a datagram that IP-fragments across six Ethernet frames.
Coalescing is **off by default** (``ProtocolConfig.jumbo_datagram_bytes
= None``) so default-configuration runs — including the golden
fingerprint gates — are byte-for-byte unchanged.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

#: Default jumbo-datagram cap: the paper's fig4/fig6 large-payload size.
DEFAULT_JUMBO_BYTES = 8850

#: Per-coalesced-packet framing inside a jumbo datagram: u8 inner frame
#: type + u32 inner body length (the inner packets share the outer
#: datagram's header and CRC — that is the amortization).
JUMBO_ENTRY_BYTES = 5

#: Count prefix of a jumbo datagram body (u32 number of inner packets).
JUMBO_COUNT_BYTES = 4


class JumboDatagram:
    """N protocol packets coalesced into one datagram.

    A plain ``__slots__`` value object, like :class:`repro.net.Frame`:
    one is built per flushed batch on the simulated send path.
    ``payload_size`` is the summed payload bytes of the inner packets —
    the quantity per-byte CPU costs apply to — mirroring the attribute
    of the same name on :class:`DataMessage` so cost accounting reads
    one shape for both.
    """

    __slots__ = ("messages", "payload_size")

    def __init__(self, messages: Tuple[Any, ...]) -> None:
        self.messages = messages
        self.payload_size = sum(m.payload_size for m in messages)

    def __len__(self) -> int:
        return len(self.messages)

    def __eq__(self, other: Any) -> bool:
        return (
            type(other) is JumboDatagram and other.messages == self.messages
        )

    def __hash__(self) -> int:
        return hash(self.messages)

    def __repr__(self) -> str:
        return "JumboDatagram(%d packets, %dB payload)" % (
            len(self.messages), self.payload_size,
        )


def coalesce(
    packets,  # Iterable[Tuple[Any, int]]: (packet, datagram-body bytes)
    cap_bytes: int,
    header_bytes: int,
    entry_bytes: int = JUMBO_ENTRY_BYTES,
    count_bytes: int = JUMBO_COUNT_BYTES,
) -> List[Tuple[List[Any], int]]:
    """Greedily group packets into jumbo datagrams bounded by ``cap_bytes``.

    ``packets`` yields ``(packet, size)`` pairs where ``size`` is the
    bytes the packet would contribute to a datagram body (payload for
    the sim's size model, encoded frame body for the wire).  Returns
    ``(group, datagram_size)`` pairs in order; a group of one is meant
    to travel as a plain (non-jumbo) datagram and its reported size says
    so.  A packet larger than the cap by itself still forms its own
    group — fragmentation is the layer below's concern, exactly as in
    :func:`repro.core.packing.pack_next`.
    """
    groups: List[Tuple[List[Any], int]] = []
    batch: List[Any] = []
    base = header_bytes + count_bytes
    used = base
    singleton_base = header_bytes
    for packet, size in packets:
        addition = entry_bytes + size
        if batch and used + addition > cap_bytes:
            groups.append(_finish(batch, used, singleton_base, entry_bytes,
                                  count_bytes))
            batch = []
            used = base
        batch.append(packet)
        used += addition
    if batch:
        groups.append(_finish(batch, used, singleton_base, entry_bytes,
                              count_bytes))
    return groups


def _finish(batch, used, singleton_base, entry_bytes, count_bytes):
    if len(batch) == 1:
        # A plain datagram: no count prefix, no entry framing.
        return batch, used - entry_bytes - count_bytes
    return batch, used


def datagram_size(
    payload_sizes,  # Iterable[int]
    header_bytes: int,
) -> int:
    """Size of one jumbo datagram carrying packets of the given sizes."""
    total = header_bytes + JUMBO_COUNT_BYTES
    for size in payload_sizes:
        total += JUMBO_ENTRY_BYTES + size
    return total


def header_bytes_saved(packet_count: int, header_bytes: int) -> int:
    """Datagram-header bytes a jumbo of ``packet_count`` packets saves.

    Versus sending each packet as its own datagram: ``count`` headers
    collapse to one, paid for with the count prefix and one entry per
    packet.  Negative for a count of one — which is why singletons are
    sent plain.
    """
    return (
        packet_count * header_bytes
        - header_bytes
        - JUMBO_COUNT_BYTES
        - packet_count * JUMBO_ENTRY_BYTES
    )
