"""Logical ring topology: ordered participants with successor links."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from .errors import RingError


@dataclass(frozen=True, slots=True)
class Ring:
    """An established ring: an ordered tuple of participant ids.

    The token travels ``members[i] -> members[i + 1]`` (wrapping).  The
    membership algorithm produces rings; during static operation the ring
    never changes.
    """

    members: Tuple[int, ...]
    ring_id: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            raise RingError("a ring needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise RingError("duplicate participant ids in ring: %r" % (self.members,))

    @classmethod
    def of(cls, members: Sequence[int], ring_id: int = 0) -> "Ring":
        return cls(tuple(members), ring_id)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[int]:
        return iter(self.members)

    def __contains__(self, pid: int) -> bool:
        return pid in self.members

    def index_of(self, pid: int) -> int:
        try:
            return self.members.index(pid)
        except ValueError:
            raise RingError("participant %r is not on ring %r" % (pid, self.members))

    def successor(self, pid: int) -> int:
        """Next participant after ``pid`` in token order."""
        return self.members[(self.index_of(pid) + 1) % len(self.members)]

    def predecessor(self, pid: int) -> int:
        """Participant whose token handling immediately precedes ``pid``'s."""
        return self.members[(self.index_of(pid) - 1) % len(self.members)]

    @property
    def leader(self) -> int:
        """The representative that injects the first token (lowest index)."""
        return self.members[0]
