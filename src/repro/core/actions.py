"""Action algebra: what a participant asks its driver to do.

The protocol core is sans-IO: handling a message returns an *ordered* list
of actions, and the driver (simulator, real-socket emulation, or an
in-process harness) executes them in order, attributing time/cost as it
sees fit.  Actions are value objects: field-based equality and hashing
(``unsafe_hash``) with a plain-store ``__init__`` — frozen dataclasses
pay ~3x the construction cost via ``object.__setattr__``, and actions
are built on the per-delivery hot path.  Nothing may mutate an action
after construction.  The ordering is semantically load-bearing — in particular the
position of :class:`SendToken` between the pre-token and post-token
:class:`SendData` actions is the entire point of the Accelerated Ring
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from .config import Service
from .messages import DataMessage, Token


@dataclass(slots=True, unsafe_hash=True)
class SendData:
    """Multicast a data message to the ring."""

    message: DataMessage
    #: True when answering a retransmission request (always pre-token).
    retransmission: bool = False


@dataclass(slots=True, unsafe_hash=True)
class SendToken:
    """Unicast the updated token to the ring successor."""

    token: Token
    dst: int


@dataclass(slots=True, unsafe_hash=True)
class Deliver:
    """Hand a message to the application, in total order."""

    message: DataMessage

    @property
    def service(self) -> Service:
        return self.message.service


@dataclass(slots=True, unsafe_hash=True)
class Discard:
    """All messages with seq <= ``upto`` are stable and were released."""

    upto: int


Action = Union[SendData, SendToken, Deliver, Discard]


def deliveries(actions: List[Action]) -> List[DataMessage]:
    """The messages delivered by an action list, in order."""
    return [a.message for a in actions if isinstance(a, Deliver)]


def sends(actions: List[Action]) -> List[DataMessage]:
    """The data messages multicast by an action list, in order."""
    return [a.message for a in actions if isinstance(a, SendData)]


def token_of(actions: List[Action]) -> Token:
    """The (single) token sent by a token handling; raises if absent."""
    tokens = [a.token for a in actions if isinstance(a, SendToken)]
    if len(tokens) != 1:
        raise ValueError("expected exactly one SendToken, found %d" % len(tokens))
    return tokens[0]
