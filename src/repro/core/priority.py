"""Token/data priority switching (Section III-C).

A participant that has both a pending token and pending data messages
must decide which to process first.  Data messages always get high
priority immediately after a token handling; the question is when to
raise the token's priority again:

* **Method 1 (aggressive)** — as soon as we process any data message our
  ring predecessor sent in the next token round.  The token is processed
  at the earliest moment it cannot be "too early" by a full round.
* **Method 2 (conservative)** — only when we process a data message the
  predecessor sent *after* passing the token (its post-token phase).
  The token is then processed at its exact position in the message
  stream.  With ``accelerated_window == 0`` the predecessor never sends
  after the token, so the token is processed only when no data is
  pending — the original Ring protocol.

Priority only matters when both kinds of input are pending: a token is
always processed when no data message is available, so neither method
can deadlock.
"""

from __future__ import annotations

from .config import PriorityMethod
from .messages import DataMessage


class PriorityTracker:
    """Decides whether a pending token outranks pending data messages."""

    __slots__ = ("_method", "_ring_size", "_predecessor", "_ring_index",
                 "_last_handled_hop", "_token_high")

    def __init__(
        self,
        method: PriorityMethod,
        ring_size: int,
        predecessor: int,
        ring_index: int = 0,
    ) -> None:
        self._method = method
        self._ring_size = ring_size
        self._predecessor = predecessor
        self._ring_index = ring_index
        # Our first token handling will be hop (ring_index + 1), so the
        # predecessor handling that precedes it is hop ring_index; seed
        # the "last handled hop" so the trigger arithmetic
        # (last + ring_size - 1 == ring_index) holds for round one too.
        self._last_handled_hop = ring_index + 1 - ring_size
        #: Data starts with high priority: anything multicast before the
        #: first token must be processed before it, exactly as in
        #: steady state.
        self._token_high = False

    @property
    def token_has_priority(self) -> bool:
        return self._token_high

    @property
    def method(self) -> PriorityMethod:
        return self._method

    def note_token_handled(self, hop: int) -> None:
        """Called after we handle the token for hop ``hop``.

        Data regains high priority until the method's trigger fires.
        """
        self._last_handled_hop = hop
        self._token_high = False

    def note_data_processed(self, message: DataMessage) -> None:
        """Called after each data message is processed."""
        if self._token_high:
            return
        if message.pid != self._predecessor:
            return
        # The predecessor's handling that immediately precedes our next
        # one is hop (ours + ring_size - 1).
        trigger_hop = self._last_handled_hop + self._ring_size - 1
        if message.round < trigger_hop:
            return
        if self._method is PriorityMethod.AGGRESSIVE or message.sent_after_token:
            self._token_high = True

    def reset(self, ring_size: int, predecessor: int, ring_index: int = 0) -> None:
        """After a membership change: back to the round-one state.

        The new ring's geometry must be supplied: reusing the pre-change
        ``ring_size``/``predecessor``/``ring_index`` would key the trigger
        arithmetic on the *old* predecessor and hop spacing, so the token
        priority could be raised by the wrong participant's messages (or
        never raised at all) after a reconfiguration.
        """
        self._ring_size = ring_size
        self._predecessor = predecessor
        self._ring_index = ring_index
        self._last_handled_hop = ring_index + 1 - ring_size
        self._token_high = False
