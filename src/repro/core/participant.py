"""The Accelerated Ring participant: the paper's core contribution.

A :class:`Participant` is a sans-IO state machine.  Drivers feed it the
token (:meth:`Participant.on_token`) and data messages
(:meth:`Participant.on_data`); each call returns an **ordered** list of
:mod:`actions <repro.core.actions>` for the driver to execute.

Token handling follows Section III-A of the paper exactly:

1. **Pre-token multicasting** — answer every answerable retransmission
   request, then initiate new messages under flow control, *enqueuing*
   them and multicasting only the overflow beyond the
   ``Accelerated_window`` (so at most ``Accelerated_window`` messages
   remain to send after the token).
2. **Updating and sending the token** — ``seq`` reflects every message of
   the round (sent or not); ``aru`` follows the lower/raise/track rules;
   ``fcc`` swaps our last-round contribution for this round's; ``rtr``
   drops answered requests and adds our gaps, bounded by the seq of the
   token received in the *previous* round.
3. **Post-token multicasting** — flush the queue.
4. **Delivering and discarding** — Agreed messages up to the frontier,
   Safe messages up to min(aru sent this round, aru sent last round),
   then stable garbage collection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from . import events as ev
from .actions import Action, Deliver, Discard, SendData, SendToken
from .buffer import ReceiveBuffer
from .config import ProtocolConfig, Service
from .delivery import DeliveryEngine
from .errors import TokenError
from .events import EventHub
from .flow_control import new_message_budget, updated_fcc
from .messages import DataMessage, Token
from .packing import pack_next
from .priority import PriorityTracker
from .retransmit import RetransmitTracker
from .ring import Ring


@dataclass(slots=True)
class _PendingMessage:
    """An application message waiting for the token."""

    payload: Any
    service: Service
    payload_size: int
    submitted_at: Optional[float]


@dataclass(slots=True)
class ParticipantStats:
    """Counters exposed for tests and benchmarks."""

    tokens_handled: int = 0
    duplicate_tokens: int = 0
    messages_initiated: int = 0
    messages_sent_pre_token: int = 0
    messages_sent_post_token: int = 0
    retransmissions_sent: int = 0
    retransmissions_requested: int = 0
    data_received: int = 0
    data_duplicates: int = 0
    delivered: int = 0
    discarded: int = 0


class Participant:
    """One member of an established ring running the ordering protocol."""

    __slots__ = (
        "pid", "ring", "config", "hub", "stats",
        "_buffer", "_delivery", "_retransmit", "_priority", "_pending",
        "_accelerated_window", "_last_received_hop", "_sent_last_round",
        "_last_token_sent", "_max_round_seen",
        "_trace_sent", "_trace_received", "_trace_token",
    )

    def __init__(
        self,
        pid: int,
        ring: Ring,
        config: Optional[ProtocolConfig] = None,
        hub: Optional[EventHub] = None,
    ) -> None:
        if pid not in ring:
            raise TokenError("participant %r not on ring %r" % (pid, ring.members))
        self.pid = pid
        self.ring = ring
        self.config = config or ProtocolConfig()
        self.hub = hub or EventHub()
        self.stats = ParticipantStats()

        self._buffer = ReceiveBuffer()
        self._delivery = DeliveryEngine()
        self._retransmit = RetransmitTracker()
        self._priority = PriorityTracker(
            self.config.priority_method,
            len(ring),
            ring.predecessor(pid),
            ring_index=ring.index_of(pid),
        )
        self._pending: Deque[_PendingMessage] = deque()
        self._accelerated_window = self.config.accelerated_window
        self._last_received_hop = -1
        self._sent_last_round = 0
        self._last_token_sent: Optional[Token] = None
        self._max_round_seen = 0
        # Direct trace callbacks (repro.obs.lifecycle).  These bypass
        # the event hub for the per-message stages a lifecycle tracer
        # stamps: with only a tracer attached ``hub.active`` stays
        # False, so every other gated emit keeps its counter-only fast
        # path.  None when no tracer is attached — the three call sites
        # pay one ``is not None`` test each.
        self._trace_sent: Optional[Callable] = None
        self._trace_received: Optional[Callable] = None
        self._trace_token: Optional[Callable] = None

    def set_trace_callbacks(
        self,
        sent: Optional[Callable] = None,
        received: Optional[Callable] = None,
        token: Optional[Callable] = None,
    ) -> None:
        """Install lifecycle-trace callbacks (see repro.obs.lifecycle).

        ``sent(message)`` fires once per initiated message,
        ``received(message)`` once per NEW data message accepted into
        the buffer (duplicates are skipped), ``token(token_out,
        allowed_new)`` once per regular-token handling.
        """
        self._trace_sent = sent
        self._trace_received = received
        self._trace_token = token

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------

    def submit(
        self,
        payload: Any,
        service: Service = Service.AGREED,
        payload_size: int = 0,
        submitted_at: Optional[float] = None,
    ) -> int:
        """Queue an application message; returns the backlog length."""
        self._pending.append(
            _PendingMessage(payload, service, payload_size, submitted_at)
        )
        return len(self._pending)

    @property
    def backlog(self) -> int:
        """Application messages waiting for the token."""
        return len(self._pending)

    def drain_pending(self) -> List[Tuple[Any, Service, int, Optional[float]]]:
        """Remove and return the queued application messages.

        Used by the membership layer to carry un-sent messages across a
        configuration change into the participant of the new ring.
        """
        drained = [
            (p.payload, p.service, p.payload_size, p.submitted_at)
            for p in self._pending
        ]
        self._pending.clear()
        return drained

    def rebind_ring(self, ring: Ring) -> None:
        """Install a new ring after a membership change.

        Resets every piece of per-ring protocol state (receive buffer,
        delivery frontier, retransmission horizon, priority trigger, hop
        counters) exactly as a fresh participant would start, while
        keeping what survives a configuration change: the application
        backlog (un-sent messages carry over), cumulative stats, and the
        event hub.  The priority tracker is re-seeded with the NEW ring's
        geometry — size, predecessor, and our index all change with the
        membership, and the trigger arithmetic must follow.
        """
        if self.pid not in ring:
            raise TokenError(
                "participant %r not on new ring %r" % (self.pid, ring.members)
            )
        self.ring = ring
        self._buffer = ReceiveBuffer()
        self._delivery = DeliveryEngine()
        self._retransmit = RetransmitTracker()
        self._priority.reset(
            len(ring),
            ring.predecessor(self.pid),
            ring_index=ring.index_of(self.pid),
        )
        self._accelerated_window = self.config.accelerated_window
        self._last_received_hop = -1
        self._sent_last_round = 0
        self._last_token_sent = None
        self._max_round_seen = 0

    # ------------------------------------------------------------------
    # Observable protocol state
    # ------------------------------------------------------------------

    @property
    def accelerated_window(self) -> int:
        """The live accelerated window (adjustable at runtime)."""
        return self._accelerated_window

    def set_accelerated_window(self, window: int) -> None:
        """Adjust the accelerated window on the fly.

        Used by :class:`repro.core.autotune.AcceleratedWindowTuner`; the
        protocol is correct for any non-negative value at any time
        (window 0 degenerates to the original protocol's sending
        pattern), so runtime changes are safe.
        """
        self._accelerated_window = max(0, int(window))

    @property
    def local_aru(self) -> int:
        return self._buffer.local_aru

    @property
    def delivered_upto(self) -> int:
        return self._delivery.delivered_upto

    @property
    def safe_bound(self) -> int:
        return self._delivery.safe_bound

    @property
    def buffer(self) -> ReceiveBuffer:
        return self._buffer

    @property
    def token_has_priority(self) -> bool:
        return self._priority.token_has_priority

    @property
    def successor(self) -> int:
        return self.ring.successor(self.pid)

    @property
    def last_received_hop(self) -> int:
        return self._last_received_hop

    @property
    def max_round_seen(self) -> int:
        """Highest data-message round observed (token-loss detection)."""
        return self._max_round_seen

    @property
    def last_token_sent(self) -> Optional[Token]:
        """The exact token we last sent — retransmitted on timeout."""
        return self._last_token_sent

    def progress_since_token_send(self) -> bool:
        """Has the ring demonstrably advanced past our last token send?

        Used by drivers to decide whether a token-retransmission timer
        should fire: seeing data from a later round, or a newer token,
        proves the token was not lost.
        """
        if self._last_token_sent is None:
            return False
        sent_hop = self._last_token_sent.hop
        return (
            self._last_received_hop >= sent_hop
            or self._max_round_seen > sent_hop
        )

    # ------------------------------------------------------------------
    # Token handling (Section III-A)
    # ------------------------------------------------------------------

    def on_token(self, token: Token) -> List[Action]:
        """Handle a received regular token; returns the ordered actions."""
        if token.ring_id != self.ring.ring_id:
            raise TokenError(
                "token for ring %d handed to participant on ring %d"
                % (token.ring_id, self.ring.ring_id)
            )
        if token.hop <= self._last_received_hop:
            # A retransmitted token we already handled.
            self.stats.duplicate_tokens += 1
            self.hub.emit(ev.DUPLICATE_TOKEN, self.pid, token)
            return []
        self._last_received_hop = token.hop
        my_hop = token.hop + 1
        actions: List[Action] = []

        # -- 1. pre-token phase: retransmissions first ------------------
        answered, remaining_requests = self._retransmit.answer_requests(
            token, self._buffer
        )
        for message in answered:
            actions.append(SendData(message, retransmission=True))
            self.stats.retransmissions_sent += 1
            self.hub.emit(ev.RETRANSMISSION_SENT, self.pid, message)
        num_retrans = len(answered)

        # -- flow control: how many new messages this round -------------
        decision = new_message_budget(
            self.config, token, len(self._pending), num_retrans
        )
        pre_messages, post_messages = self._initiate_messages(
            decision.allowed_new, token.seq, my_hop
        )
        created = len(pre_messages) + len(post_messages)
        for message in pre_messages:
            actions.append(SendData(message))
            self.stats.messages_sent_pre_token += 1
        new_seq = token.seq + created

        # -- our own retransmission requests ------------------------------
        # The horizon advances before gap computation only when every
        # message covered by the received token is known to be already
        # sent (the original protocol); under acceleration it advances
        # after, restricting requests to the previous round's seq.
        if self.config.request_current_round:
            self._retransmit.advance_horizon(token.seq)
            my_requests = self._my_retransmission_requests()
        else:
            my_requests = self._my_retransmission_requests()
            self._retransmit.advance_horizon(token.seq)
        rtr_out = self._retransmit.merge_requests(remaining_requests, my_requests)

        # -- 2. update and send the token --------------------------------
        new_aru, new_aru_id = self._updated_aru(token, new_seq)
        fcc_out = updated_fcc(token, self._sent_last_round, num_retrans + created)
        self._sent_last_round = num_retrans + created

        token_out = token.evolve(
            hop=my_hop,
            seq=new_seq,
            aru=new_aru,
            aru_id=new_aru_id,
            fcc=fcc_out,
            rtr=rtr_out,
        )
        actions.append(SendToken(token_out, self.successor))
        self._last_token_sent = token_out

        # -- 3. post-token phase: flush the accelerated queue ------------
        for message in post_messages:
            actions.append(SendData(message))
            self.stats.messages_sent_post_token += 1

        # -- 4. deliver and discard --------------------------------------
        self._delivery.note_token_sent(new_aru)
        actions.extend(self._deliver_and_discard())

        self._priority.note_token_handled(my_hop)
        self.stats.tokens_handled += 1
        if self._trace_token is not None:
            self._trace_token(token_out, decision.allowed_new)
        hub = self.hub
        if hub.active:
            hub.emit(
                ev.TOKEN_HANDLED, self.pid, token, token_out,
                decision.allowed_new, num_retrans,
            )
        else:
            hub.counts[ev.TOKEN_HANDLED] += 1
        return actions

    # ------------------------------------------------------------------
    # Data handling (Section III-B)
    # ------------------------------------------------------------------

    def on_data(self, message: DataMessage) -> List[Action]:
        """Handle a received data message; returns delivery actions."""
        if message.round > self._max_round_seen:
            self._max_round_seen = message.round
        is_new = self._buffer.insert(message)
        # Inlined precheck of PriorityTracker.note_data_processed's two
        # early exits: only the predecessor's messages (1/(n-1) of
        # traffic) can raise token priority, and never while it is
        # already high.
        priority = self._priority
        if not priority._token_high and message.pid == priority._predecessor:
            priority.note_data_processed(message)
        stats = self.stats
        hub = self.hub
        active = hub.active
        counts = hub.counts
        if not is_new:
            stats.data_duplicates += 1
            if active:
                hub.emit(ev.DATA_RECEIVED, self.pid, message, False)
            else:
                counts[ev.DATA_RECEIVED] += 1
            return []
        stats.data_received += 1
        if self._trace_received is not None:
            self._trace_received(message)
        if active:
            hub.emit(ev.DATA_RECEIVED, self.pid, message, True)
        else:
            counts[ev.DATA_RECEIVED] += 1
        deliverable = self._delivery.collect_deliverable(self._buffer)
        if not deliverable:
            return []
        stats.delivered += len(deliverable)
        if active:
            for delivered in deliverable:
                hub.emit(ev.MESSAGE_DELIVERED, self.pid, delivered)
        else:
            counts[ev.MESSAGE_DELIVERED] += len(deliverable)
        return [Deliver(delivered) for delivered in deliverable]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _initiate_messages(
        self, allowed: int, base_seq: int, my_hop: int
    ) -> Tuple[List[DataMessage], List[DataMessage]]:
        """Create this round's new messages, split into pre/post-token.

        Mirrors the paper's queue construction: messages are prepared in
        submission order; once the queue holds more than
        ``Accelerated_window`` messages the overflow is multicast
        immediately (pre-token), and whatever remains in the queue (at
        most the accelerated window) is sent post-token.

        With ``pack_messages`` enabled, each protocol packet greedily
        packs queued small messages up to the MTU budget (Spread's
        built-in packing); flow control counts packets.
        """
        messages: List[DataMessage] = []
        for _offset in range(allowed):
            if not self._pending:
                break
            if self.config.pack_messages:
                payload, service, size, submitted_at = pack_next(
                    self._pending, self.config.max_packet_payload
                )
            else:
                pending = self._pending.popleft()
                payload = pending.payload
                service = pending.service
                size = pending.payload_size
                submitted_at = pending.submitted_at
            messages.append(
                DataMessage(
                    seq=base_seq + len(messages) + 1,
                    pid=self.pid,
                    round=my_hop,
                    service=service,
                    payload=payload,
                    payload_size=size,
                    submitted_at=submitted_at,
                )
            )
        post_count = min(len(messages), self._accelerated_window)
        split = len(messages) - post_count
        pre = messages[:split]
        post = [m.as_post_token() for m in messages[split:]]
        hub = self.hub
        active = hub.active
        trace_sent = self._trace_sent
        for message in pre + post:
            # Our own messages are in our buffer from the moment they are
            # prepared (the loopback copy, if any, is a duplicate).
            self._buffer.insert(message)
            self.stats.messages_initiated += 1
            if trace_sent is not None:
                trace_sent(message)
            if active:
                hub.emit(ev.MESSAGE_SENT, self.pid, message)
            else:
                hub.counts[ev.MESSAGE_SENT] += 1
        return pre, post

    def _my_retransmission_requests(self) -> List[int]:
        missing = self._retransmit.my_new_requests(self._buffer)
        if missing:
            self.stats.retransmissions_requested += len(missing)
            self.hub.emit(
                ev.RETRANSMISSION_REQUESTED, self.pid, tuple(missing)
            )
        return missing

    def _updated_aru(self, token: Token, new_seq: int) -> Tuple[int, Optional[int]]:
        """The aru lower/raise/track rules (Section III-A-2).

        Called after our own messages are in the buffer, so
        ``local_aru`` already covers them when we were fully caught up.
        """
        local = self._buffer.local_aru
        if local < token.aru:
            # Rule 1: lower to our local aru and take ownership.
            return local, self.pid
        if token.aru_id == self.pid:
            # Rule 2: we lowered it before and nobody lowered it since
            # (they would have taken ownership) — raise to our local aru,
            # releasing ownership once we are fully caught up.
            return local, (self.pid if local < new_seq else None)
        if token.aru_id is None and token.aru == token.seq:
            # Rule 3: everyone had received everything through the
            # received token's seq; the aru tracks seq across our new
            # messages (all of which we trivially hold).
            return local, None
        return token.aru, token.aru_id

    def _deliver_and_discard(self) -> List[Action]:
        actions: List[Action] = []
        hub = self.hub
        active = hub.active
        for delivered in self._delivery.collect_deliverable(self._buffer):
            actions.append(Deliver(delivered))
            self.stats.delivered += 1
            if active:
                hub.emit(ev.MESSAGE_DELIVERED, self.pid, delivered)
            else:
                hub.counts[ev.MESSAGE_DELIVERED] += 1
        discard_to = self._delivery.discardable_upto()
        released = self._buffer.discard_upto(discard_to)
        if released:
            actions.append(Discard(discard_to))
            self.stats.discarded += released
            self.hub.emit(ev.MESSAGES_DISCARDED, self.pid, discard_to)
        return actions

    def __repr__(self) -> str:
        return "Participant(pid=%d, aru=%d, delivered=%d, backlog=%d)" % (
            self.pid, self.local_aru, self.delivered_upto, self.backlog,
        )
