"""Adaptive accelerated-window control (an extension beyond the paper).

The paper tunes ``Accelerated_window`` by hand per deployment ("the
accelerated window that resulted in the highest throughput", Section
IV-A) and warns that excessive overlap exhausts switch buffers (Section
I/III-C).  This module automates that tuning with an AIMD controller
driven by the protocol's own feedback signal: when one of OUR post-token
messages shows up as a retransmission request — i.e. a message we sent
after releasing the token was lost — we overlapped too much, so the
window shrinks multiplicatively; otherwise it creeps up additively each
epoch until it reaches the personal window (beyond which more overlap
cannot help).

With ``Accelerated_window = 0`` being exactly the original protocol,
the controller also functions as a safety valve: under pathological
loss it converges to original-ring behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import events as ev
from .participant import Participant


@dataclass(slots=True)
class TunerConfig:
    """AIMD parameters."""

    #: Handlings per adjustment epoch.
    epoch_rounds: int = 8
    #: Additive increase per clean epoch.
    increase_step: int = 1
    #: Multiplicative decrease on post-token loss.
    decrease_factor: float = 0.5
    #: Own post-token retransmissions tolerated per epoch before backing off.
    loss_tolerance: int = 0
    min_window: int = 0
    max_window: int = 0  # 0 means "use the personal window"


class AcceleratedWindowTuner:
    """Wires AIMD control of one participant's accelerated window.

    Subscribes to the participant's event hub; no protocol changes are
    required, and the tuner can be attached or detached at any time.
    """

    __slots__ = ("participant", "config", "_max_window",
                 "_rounds_in_epoch", "_own_post_token_losses",
                 "epochs", "increases", "decreases")

    def __init__(self, participant: Participant,
                 config: TunerConfig = TunerConfig()) -> None:
        self.participant = participant
        self.config = config
        self._max_window = config.max_window or participant.config.personal_window
        self._rounds_in_epoch = 0
        self._own_post_token_losses = 0
        self.epochs = 0
        self.increases = 0
        self.decreases = 0
        participant.hub.subscribe(ev.TOKEN_HANDLED, self._on_token_handled)
        participant.hub.subscribe(ev.RETRANSMISSION_SENT, self._on_retransmission)

    @property
    def window(self) -> int:
        return self.participant.accelerated_window

    # -- event handlers ----------------------------------------------------

    def _on_retransmission(self, pid: int, message) -> None:
        if pid != self.participant.pid:
            return
        # Somebody requested one of our messages again.  Only post-token
        # messages implicate the overlap; pre-token losses happen to the
        # original protocol too and must not shrink the window.
        if message.pid == self.participant.pid and message.sent_after_token:
            self._own_post_token_losses += 1

    def _on_token_handled(self, pid: int, *_args) -> None:
        if pid != self.participant.pid:
            return
        self._rounds_in_epoch += 1
        if self._rounds_in_epoch < self.config.epoch_rounds:
            return
        self._close_epoch()

    # -- AIMD ---------------------------------------------------------------

    def _close_epoch(self) -> None:
        self.epochs += 1
        window = self.participant.accelerated_window
        if self._own_post_token_losses > self.config.loss_tolerance:
            shrunk = int(window * self.config.decrease_factor)
            new_window = max(self.config.min_window, shrunk)
            if new_window < window:
                self.decreases += 1
        else:
            new_window = min(self._max_window,
                             window + self.config.increase_step)
            if new_window > window:
                self.increases += 1
        self.participant.set_accelerated_window(new_window)
        self._rounds_in_epoch = 0
        self._own_post_token_losses = 0
