"""Small-message packing (Spread's built-in packing, Section IV-A-3).

Spread packs multiple small application messages into a single protocol
packet bounded by the 1500-byte MTU; sequence numbers, flow control and
retransmission operate on packets.  The protocol core packs greedily at
initiation time: whatever is queued when the token arrives gets packed,
so no artificial batching delay is introduced — an idle sender's single
message still goes out alone, immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .config import Service

#: Per-item framing inside a packed packet (length + type + timestamp).
ITEM_HEADER_BYTES = 16


@dataclass(frozen=True, slots=True)
class PackedItem:
    """One application message inside a packed protocol packet."""

    payload: Any
    payload_size: int
    submitted_at: Optional[float]


@dataclass(frozen=True, slots=True)
class PackedPayload:
    """The payload of a protocol packet carrying several app messages."""

    items: Tuple[PackedItem, ...]
    #: Sum of item sizes plus per-item framing, computed once at
    #: construction (it is read per packet on the hot path; items never
    #: change afterwards).  Not part of the wire schema — receivers
    #: recompute it from the decoded items.
    total_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "total_size",
            sum(item.payload_size + ITEM_HEADER_BYTES for item in self.items),
        )

    def __len__(self) -> int:
        return len(self.items)


def pack_next(
    pending,  # Deque[_PendingMessage]
    max_packet_payload: int,
) -> Tuple[PackedPayload, Service, int, Optional[float]]:
    """Pop and pack the next protocol packet from the pending queue.

    Greedy: keep adding queued messages while they fit and share the
    packet's service level (a Safe item must not ride in an Agreed
    packet — it would lose its stability guarantee; an Agreed item in a
    Safe packet would pay latency it did not ask for).  An oversized
    first item travels alone (fragmentation is the driver's concern).

    Returns (packed payload, service, packet payload size, earliest
    submit timestamp).  The caller guarantees ``pending`` is non-empty.
    The packet size and earliest timestamp are accumulated during the
    single packing pass — no second walk over the items.
    """
    first = pending.popleft()
    items: List[PackedItem] = [
        PackedItem(first.payload, first.payload_size, first.submitted_at)
    ]
    service = first.service
    used = first.payload_size + ITEM_HEADER_BYTES
    earliest = first.submitted_at
    while pending:
        nxt = pending[0]
        addition = nxt.payload_size + ITEM_HEADER_BYTES
        if nxt.service is not service or used + addition > max_packet_payload:
            break
        pending.popleft()
        items.append(PackedItem(nxt.payload, nxt.payload_size, nxt.submitted_at))
        used += addition
        submitted_at = nxt.submitted_at
        if submitted_at is not None and (earliest is None or submitted_at < earliest):
            earliest = submitted_at
    return PackedPayload(tuple(items)), service, used, earliest
