"""Receive buffer: seq-indexed message store with aru tracking.

Every participant keeps all messages it has received (including its own)
until they become stable (Safe-delivered by everyone), because any of
them may be requested for retransmission.  The buffer tracks the local
aru — the highest seq such that the participant has *all* messages with
lower-or-equal seq — which feeds the token aru rules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .errors import DeliveryInvariantError
from .messages import DataMessage


class ReceiveBuffer:
    """Messages received but not yet discarded, indexed by seq."""

    __slots__ = ("_messages", "_local_aru", "_discarded_upto",
                 "_highest_seq_seen")

    def __init__(self) -> None:
        self._messages: Dict[int, DataMessage] = {}
        self._local_aru = 0
        self._discarded_upto = 0
        self._highest_seq_seen = 0

    # -- insertion -----------------------------------------------------------

    def insert(self, message: DataMessage) -> bool:
        """Store a message; returns True if it was new.

        Duplicates (retransmissions already received, multicast loopback
        of own messages) and messages already discarded as stable are
        ignored.
        """
        seq = message.seq
        if seq > self._highest_seq_seen:
            self._highest_seq_seen = seq
        if seq <= self._discarded_upto or seq in self._messages:
            return False
        self._messages[seq] = message
        if seq == self._local_aru + 1:
            self._advance_aru()
        return True

    def _advance_aru(self) -> None:
        aru = self._local_aru
        messages = self._messages
        while aru + 1 in messages:
            aru += 1
        self._local_aru = aru

    # -- queries --------------------------------------------------------------

    @property
    def local_aru(self) -> int:
        """Highest seq with no gaps below it."""
        return self._local_aru

    @property
    def discarded_upto(self) -> int:
        return self._discarded_upto

    @property
    def highest_seq_seen(self) -> int:
        """Highest seq ever inserted (including since-discarded ones)."""
        return self._highest_seq_seen

    def get(self, seq: int) -> Optional[DataMessage]:
        return self._messages.get(seq)

    def has(self, seq: int) -> bool:
        """True if the message is present (or already stable-discarded)."""
        return seq <= self._discarded_upto or seq in self._messages

    def missing_between(self, lo: int, hi: int) -> List[int]:
        """Seqs in ``(lo, hi]`` that are not present — retransmission gaps."""
        messages = self._messages
        start = max(lo, self._discarded_upto)
        return [s for s in range(start + 1, hi + 1) if s not in messages]

    def __len__(self) -> int:
        return len(self._messages)

    def held_seqs(self) -> Iterator[int]:
        return iter(sorted(self._messages))

    # -- garbage collection -----------------------------------------------------

    def discard_upto(self, seq: int) -> int:
        """Release all messages with seq <= ``seq``; returns count released.

        Only stable messages may be discarded; discarding past the local
        aru would mean forgetting messages we never had, which is a
        protocol bug, not a recoverable condition.
        """
        if seq <= self._discarded_upto:
            return 0
        if seq > self._local_aru:
            raise DeliveryInvariantError(
                "discard_upto(%d) beyond local aru %d" % (seq, self._local_aru)
            )
        released = 0
        for s in range(self._discarded_upto + 1, seq + 1):
            if self._messages.pop(s, None) is not None:
                released += 1
        self._discarded_upto = seq
        return released
