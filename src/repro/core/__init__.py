"""The Accelerated Ring ordering protocol (sans-IO core).

This package implements the paper's contribution as a pure state machine:
drivers feed tokens and data messages in, and get ordered action lists
out.  See :class:`repro.core.Participant` for the entry point.

Typical use::

    from repro.core import Participant, ProtocolConfig, Ring, Service
    from repro.core import initial_token

    ring = Ring.of([1, 2, 3])
    config = ProtocolConfig.accelerated(accelerated_window=20)
    participants = {pid: Participant(pid, ring, config) for pid in ring}
    participants[1].submit(b"hello", Service.AGREED, payload_size=5)
    actions = participants[1].on_token(initial_token())
"""

from .autotune import AcceleratedWindowTuner, TunerConfig
from .actions import (
    Action,
    Deliver,
    Discard,
    SendData,
    SendToken,
    deliveries,
    sends,
    token_of,
)
from .buffer import ReceiveBuffer
from .config import PriorityMethod, ProtocolConfig, Service
from .delivery import DeliveryEngine
from .errors import (
    ConfigurationError,
    DeliveryInvariantError,
    ProtocolError,
    RingError,
    TokenError,
)
from .coalesce import (
    DEFAULT_JUMBO_BYTES,
    JUMBO_ENTRY_BYTES,
    JumboDatagram,
    coalesce,
)
from .events import EventHub
from .flow_control import FlowControlDecision, new_message_budget, updated_fcc
from .messages import DataMessage, Token, initial_token
from .packing import ITEM_HEADER_BYTES, PackedItem, PackedPayload, pack_next
from .participant import Participant, ParticipantStats
from .priority import PriorityTracker
from .retransmit import RetransmitTracker
from .ring import Ring

__all__ = [
    "Participant", "ParticipantStats",
    "ProtocolConfig", "PriorityMethod", "Service",
    "Ring", "Token", "DataMessage", "initial_token",
    "Action", "SendData", "SendToken", "Deliver", "Discard",
    "deliveries", "sends", "token_of",
    "ReceiveBuffer", "DeliveryEngine", "PriorityTracker", "RetransmitTracker",
    "EventHub", "FlowControlDecision", "new_message_budget", "updated_fcc",
    "AcceleratedWindowTuner", "TunerConfig",
    "PackedPayload", "PackedItem", "pack_next", "ITEM_HEADER_BYTES",
    "JumboDatagram", "coalesce", "DEFAULT_JUMBO_BYTES", "JUMBO_ENTRY_BYTES",
    "ProtocolError", "ConfigurationError", "RingError", "TokenError",
    "DeliveryInvariantError",
]
