"""Delivery engine: Agreed and Safe delivery rules (Sections III-A-4, III-B).

Messages are delivered strictly in seq order.  An Agreed message is
deliverable once every lower seq has been delivered.  A Safe message
additionally waits until the stability bound covers it: the minimum of
the aru values on the last two tokens this participant sent — by then
every participant had a chance to lower the aru during a full rotation,
so everyone is known to hold the message.

An undelivered Safe message blocks every higher-seq message (of any
service) to preserve the single total order.
"""

from __future__ import annotations

from typing import List, Optional

from .buffer import ReceiveBuffer
from .config import Service
from .errors import DeliveryInvariantError
from .messages import DataMessage

_SAFE = Service.SAFE


class DeliveryEngine:
    """Tracks the delivery frontier and the Safe stability bound."""

    __slots__ = ("_delivered_upto", "_safe_bound", "_aru_sent_this_round",
                 "_aru_sent_last_round", "total_delivered")

    def __init__(self) -> None:
        self._delivered_upto = 0
        self._safe_bound = 0
        #: aru values on the last two tokens sent by this participant.
        self._aru_sent_this_round: Optional[int] = None
        self._aru_sent_last_round: Optional[int] = None
        self.total_delivered = 0

    # -- state ----------------------------------------------------------------

    @property
    def delivered_upto(self) -> int:
        """Every message with seq <= this value has been delivered."""
        return self._delivered_upto

    @property
    def safe_bound(self) -> int:
        """Messages with seq <= this value are stable everywhere."""
        return self._safe_bound

    # -- token bookkeeping -------------------------------------------------------

    def note_token_sent(self, aru_on_sent_token: int) -> int:
        """Record the aru on a token we just sent; returns the new bound.

        The stability bound is min(aru this round, aru last round)
        (paper, Section III-A-4); it is monotone because each participant
        only learns *more* over time.
        """
        self._aru_sent_last_round = self._aru_sent_this_round
        self._aru_sent_this_round = aru_on_sent_token
        if self._aru_sent_last_round is None:
            return self._safe_bound
        bound = min(self._aru_sent_this_round, self._aru_sent_last_round)
        if bound > self._safe_bound:
            self._safe_bound = bound
        return self._safe_bound

    # -- delivery ------------------------------------------------------------------

    def collect_deliverable(self, buffer: ReceiveBuffer) -> List[DataMessage]:
        """Advance the frontier as far as the rules allow; returns messages.

        Stops at the first gap (message not yet received) or at the first
        Safe message beyond the stability bound.
        """
        out: List[DataMessage] = []
        # Direct read of the buffer's seq index: ``buffer.get`` is a
        # one-line wrapper around this dict, and this loop runs twice per
        # received message (the hit and the gap that stops it).
        get = buffer._messages.get
        safe_bound = self._safe_bound
        next_seq = self._delivered_upto + 1
        while True:
            message = get(next_seq)
            if message is None:
                break
            # ``service is SAFE`` == Service.requires_stability, minus the
            # per-message property call on this per-delivery hot path.
            if message.service is _SAFE and next_seq > safe_bound:
                break
            if message.seq != next_seq:
                raise DeliveryInvariantError(
                    "buffer returned seq %d for slot %d" % (message.seq, next_seq)
                )
            out.append(message)
            next_seq += 1
        if out:
            self._delivered_upto = next_seq - 1
            self.total_delivered += len(out)
        return out

    def discardable_upto(self) -> int:
        """Messages at or below this seq may be garbage-collected.

        Everything covered by the stability bound has been received by
        all participants, so it can never be requested for retransmission
        again; it must also already be delivered locally (the bound never
        exceeds the local aru).
        """
        return min(self._safe_bound, self._delivered_upto)
