"""Protocol configuration: flow-control windows and acceleration knobs.

The four windows come straight from Section III-A of the paper:

* ``personal_window`` — max new messages one participant may initiate in a
  single token round.
* ``global_window`` — max messages (new + retransmissions) all
  participants combined may send in a single round, enforced through the
  token's ``fcc`` field.
* ``accelerated_window`` — max messages a participant may send *after*
  passing the token.  Zero disables acceleration; combined with the
  conservative priority method this is exactly the original Ring protocol.
* ``max_seq_gap`` — bound on how far ``seq`` may lead the global aru.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from .errors import ConfigurationError


class PriorityMethod(enum.Enum):
    """When to raise token priority over pending data (Section III-C)."""

    #: Method 1: raise token priority upon processing ANY data message the
    #: ring predecessor sent in the next token round.  Fastest rotation.
    AGGRESSIVE = 1
    #: Method 2: raise token priority only upon processing a data message
    #: the predecessor sent AFTER passing the token (post-token phase).
    #: With accelerated_window == 0 this is the original Ring protocol.
    CONSERVATIVE = 2


class Service(enum.Enum):
    """Delivery service requested for a message (Section II)."""

    #: Reliable, per-sender FIFO.  Latency profile matches AGREED.
    FIFO = "fifo"
    #: Causal order.  Latency profile matches AGREED.
    CAUSAL = "causal"
    #: Total order, respecting causality, delivered as soon as contiguous.
    AGREED = "agreed"
    #: Total order + stability: delivered only once every participant in
    #: the configuration is known to have received the message.
    SAFE = "safe"

    @property
    def requires_stability(self) -> bool:
        return self is Service.SAFE


@dataclass(frozen=True, slots=True)
class ProtocolConfig:
    """Tunable parameters of one ring.  Immutable; use :meth:`evolve`."""

    personal_window: int = 40
    global_window: int = 240
    accelerated_window: int = 20
    max_seq_gap: int = 10_000
    priority_method: PriorityMethod = PriorityMethod.CONSERVATIVE

    #: In the original Ring protocol every message reflected in a received
    #: token has already been multicast, so gaps may be requested up
    #: through the received token's seq.  Under acceleration that would
    #: request messages still in flight, so requests are bounded by the
    #: seq of the token received in the PREVIOUS round (Section III-A-2).
    request_current_round: bool = False

    #: Pack queued small messages into MTU-bounded protocol packets at
    #: initiation time (Spread's built-in packing, Section IV-A-3).
    pack_messages: bool = False
    #: Payload budget of one packed protocol packet (1500-byte MTU
    #: minus protocol headers).
    max_packet_payload: int = 1350

    #: Coalesce the protocol packets of one flush into jumbo datagrams
    #: up to this many bytes (:mod:`repro.core.coalesce`), amortizing
    #: per-datagram header, CRC and syscall costs.  ``None`` (the
    #: default) disables coalescing; drivers then send one datagram per
    #: protocol packet, byte-for-byte as before.
    jumbo_datagram_bytes: "int | None" = None

    #: Token retransmission timeout (drivers convert to their clock).
    token_retransmit_timeout_s: float = 0.005
    #: How many token retransmissions before the driver declares token
    #: loss to the membership layer.
    token_retransmit_limit: int = 8

    def __post_init__(self) -> None:
        if self.personal_window < 0:
            raise ConfigurationError("personal_window must be >= 0")
        if self.global_window < 1:
            raise ConfigurationError("global_window must be >= 1")
        if self.accelerated_window < 0:
            raise ConfigurationError("accelerated_window must be >= 0")
        if self.max_seq_gap < 1:
            raise ConfigurationError("max_seq_gap must be >= 1")
        if self.token_retransmit_timeout_s <= 0:
            raise ConfigurationError("token_retransmit_timeout_s must be > 0")
        if self.jumbo_datagram_bytes is not None and self.jumbo_datagram_bytes < 1:
            raise ConfigurationError(
                "jumbo_datagram_bytes must be >= 1 (or None to disable)"
            )

    @property
    def is_accelerated(self) -> bool:
        return self.accelerated_window > 0

    def evolve(self, **overrides) -> "ProtocolConfig":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def original_ring(cls, **overrides) -> "ProtocolConfig":
        """The original Totem Ring protocol configuration.

        Accelerated window zero plus the conservative priority method is
        message-for-message identical to the original protocol (paper,
        Section III-D).
        """
        params = dict(accelerated_window=0,
                      priority_method=PriorityMethod.CONSERVATIVE,
                      request_current_round=True)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def accelerated(cls, **overrides) -> "ProtocolConfig":
        """Default Accelerated Ring configuration (production method 2)."""
        return cls(**overrides)
