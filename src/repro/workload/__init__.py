"""Workload generation for tests, examples, and benchmarks."""

from .generator import (
    Submission,
    bursty_plan,
    group_activity_plan,
    mixed_service_plan,
    sized_payload,
    skewed_senders_plan,
    uniform_plan,
)

__all__ = [
    "Submission", "sized_payload",
    "uniform_plan", "mixed_service_plan", "bursty_plan",
    "skewed_senders_plan", "group_activity_plan",
]
