"""Workload generation: payloads and submission plans.

Everything is seeded and deterministic so any failing run can be
replayed exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator, List, Sequence, Tuple

from ..core import Service


def sized_payload(size: int, tag: int = 0) -> bytes:
    """A payload of exactly ``size`` bytes with a recognizable prefix."""
    prefix = ("msg-%d-" % tag).encode()
    if size <= len(prefix):
        return prefix[:size]
    return prefix + b"x" * (size - len(prefix))


@dataclass(frozen=True)
class Submission:
    """One planned application submit."""

    pid: int
    payload: Any
    service: Service
    payload_size: int = 0


def uniform_plan(
    pids: Sequence[int],
    per_pid: int,
    service: Service = Service.AGREED,
    payload_size: int = 0,
) -> List[Submission]:
    """Every sender submits the same count, round-robin interleaved."""
    plan: List[Submission] = []
    for index in range(per_pid):
        for pid in pids:
            plan.append(
                Submission(pid, ("u", pid, index), service, payload_size)
            )
    return plan


def mixed_service_plan(
    pids: Sequence[int],
    per_pid: int,
    safe_fraction: float,
    seed: int = 0,
    payload_size: int = 0,
) -> List[Submission]:
    """Random AGREED/SAFE mix, reproducible by seed."""
    rng = random.Random(seed)
    plan: List[Submission] = []
    for pid in pids:
        for index in range(per_pid):
            service = Service.SAFE if rng.random() < safe_fraction else Service.AGREED
            plan.append(
                Submission(pid, ("m", pid, index), service, payload_size)
            )
    rng.shuffle(plan)
    return plan


def bursty_plan(
    pids: Sequence[int],
    bursts: int,
    burst_size: int,
    seed: int = 0,
    service: Service = Service.AGREED,
) -> List[Submission]:
    """One sender at a time emits a burst — the worst case for
    token-based flow control fairness."""
    rng = random.Random(seed)
    plan: List[Submission] = []
    for burst in range(bursts):
        pid = rng.choice(list(pids))
        for index in range(burst_size):
            plan.append(Submission(pid, ("b", pid, burst, index), service))
    return plan


def skewed_senders_plan(
    pids: Sequence[int],
    total: int,
    hot_fraction: float = 0.8,
    seed: int = 0,
) -> List[Submission]:
    """One hot sender produces ``hot_fraction`` of all traffic."""
    rng = random.Random(seed)
    hot = pids[0]
    plan: List[Submission] = []
    for index in range(total):
        if rng.random() < hot_fraction:
            pid = hot
        else:
            pid = rng.choice(list(pids[1:])) if len(pids) > 1 else hot
        plan.append(Submission(pid, ("s", pid, index), Service.AGREED))
    return plan


def group_activity_plan(
    clients: Sequence[str],
    groups: Sequence[str],
    operations: int,
    seed: int = 0,
) -> Iterator[Tuple[str, str, str, Any]]:
    """A stream of spread-layer ops: (op, client, group, payload).

    op is one of join / leave / cast; weights make casts dominate.
    Useful for exercising the Spread-like layer in tests and examples.
    """
    rng = random.Random(seed)
    joined = {client: set() for client in clients}
    for index in range(operations):
        client = rng.choice(list(clients))
        roll = rng.random()
        if roll < 0.15 or not joined[client]:
            group = rng.choice(list(groups))
            joined[client].add(group)
            yield ("join", client, group, None)
        elif roll < 0.25 and joined[client]:
            group = rng.choice(sorted(joined[client]))
            joined[client].discard(group)
            yield ("leave", client, group, None)
        else:
            group = rng.choice(sorted(joined[client]))
            yield ("cast", client, group, ("payload", index))
