"""Benchmark regression guard: fresh run vs committed baseline.

CI regenerates the guarded records (``kernel.json``, ``codec.json``,
``churn_convergence.json``, ``obs_overhead.json``,
``multiring_scaling.json``) into a scratch directory and then runs::

    python -m repro.bench.guard --baseline bench_results --fresh <dir>

Each guarded metric is higher-is-better; a fresh value more than
``--tolerance`` (default 20%) below the committed baseline fails the
run and lists every regressed metric.  The wide tolerance is
deliberate: these are absolute rates measured on whatever machine CI
hands us, so the guard is meant to catch real structural regressions
(an accidentally de-inlined hot path, a quadratic slip) rather than
box-to-box noise — relative claims (decode >= encode, wire >= pickle)
are asserted inside the benchmarks themselves.

Improvements are reported, never required: committing a faster
baseline is how the bar ratchets upward.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

#: Guarded metrics per record file, as dotted paths into the JSON.
#: Every metric is a rate (higher is better).
GUARDED_METRICS: Dict[str, Tuple[str, ...]] = {
    "kernel.json": (
        "events_per_sec_best",
        "sim_events_per_sec_best",
    ),
    "codec.json": (
        "msgs_per_sec.wire_encode",
        "msgs_per_sec.wire_decode",
        "msgs_per_sec.wire_encode_token",
        "msgs_per_sec.wire_decode_token",
    ),
    # Simulated-time rates (machine-independent): view-change
    # convergence speed and the inverse of the gossip detector's
    # steady-state control traffic at the largest swept cluster size.
    "churn_convergence.json": (
        "metrics.crash_convergence_rate_hz",
        "metrics.rejoin_convergence_rate_hz",
        "metrics.ctrl_traffic_headroom",
    ),
    # Observability cost: the sim-mix with tracing off must track the
    # kernel envelope, and the on/off ratio (a machine-independent
    # fraction) guards the "tracing stays cheap" promise.
    "obs_overhead.json": (
        "sim_events_per_sec_off_best",
        "sim_events_per_sec_on_best",
        "tracing_throughput_ratio",
    ),
    # Multi-ring scale-out (simulated-time, machine-independent): the
    # M=4 aggregate delivered rate, the M=4/M=1 scaling factor, and the
    # M=1-vs-M=4 latency-flatness ratio min(p50)/max(p50).
    "multiring_scaling.json": (
        "metrics.aggregate_msgs_per_s_m4",
        "metrics.scaling_x_m4",
        "metrics.latency_flatness_m4",
    ),
}

DEFAULT_TOLERANCE = 0.20


class GuardError(Exception):
    """A guarded record or metric is missing or malformed."""


def _lookup(record: dict, path: str, origin: str) -> float:
    node = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise GuardError("%s: metric %r not found" % (origin, path))
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise GuardError("%s: metric %r is not a number" % (origin, path))
    return float(node)


def _load(directory: str, name: str) -> dict:
    path = os.path.join(directory, name)
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise GuardError("missing record %s" % path)
    except ValueError as exc:
        raise GuardError("unreadable record %s: %s" % (path, exc))


def compare(
    baseline_dir: str,
    fresh_dir: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], Iterator[str]]:
    """Compare fresh records against the baseline.

    Returns ``(regressions, report_lines)``: ``regressions`` is a list
    of human-readable failure strings (empty means the guard passes)
    and ``report_lines`` covers every guarded metric.
    """
    regressions: List[str] = []
    lines: List[str] = []
    for name, metrics in sorted(GUARDED_METRICS.items()):
        baseline = _load(baseline_dir, name)
        fresh = _load(fresh_dir, name)
        for path in metrics:
            base_value = _lookup(baseline, path, "baseline %s" % name)
            fresh_value = _lookup(fresh, path, "fresh %s" % name)
            if base_value <= 0:
                raise GuardError(
                    "baseline %s: metric %r is %r, nothing to guard"
                    % (name, path, base_value)
                )
            ratio = fresh_value / base_value
            verdict = "ok"
            if ratio < 1.0 - tolerance:
                verdict = "REGRESSION"
                regressions.append(
                    "%s %s: %.0f vs baseline %.0f (%.0f%%, tolerance %.0f%%)"
                    % (name, path, fresh_value, base_value,
                       100.0 * (ratio - 1.0), 100.0 * tolerance)
                )
            elif ratio > 1.0 + tolerance:
                verdict = "improved"
            lines.append(
                "%-12s %-32s %12.0f -> %12.0f  %+6.1f%%  %s"
                % (name, path, base_value, fresh_value,
                   100.0 * (ratio - 1.0), verdict)
            )
    return regressions, iter(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.guard",
        description="Fail when fresh benchmark records regress "
        "past tolerance vs the committed baselines.",
    )
    parser.add_argument("--baseline", default="bench_results",
                        help="directory holding committed records "
                        "(default: bench_results)")
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly generated records")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown "
                        "(default: %.2f)" % DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")
    try:
        regressions, lines = compare(args.baseline, args.fresh, args.tolerance)
    except GuardError as exc:
        print("bench-guard error: %s" % exc, file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    if regressions:
        print("\nbench-guard FAILED: %d regressed metric(s)" % len(regressions),
              file=sys.stderr)
        for failure in regressions:
            print("  " + failure, file=sys.stderr)
        return 1
    print("\nbench-guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
