"""Experiment definitions: one spec per paper figure.

The paper's methodology (Section IV-A): 8 servers, one daemon + one
sending client + one receiving client each; run at fixed throughput
levels from 100 Mbps to the maximum; measure mean delivery latency for
Agreed and Safe service; 1350-byte payloads on 1G/10G plus 8850-byte
payloads on 10G.  Windows are tuned per protocol/link as the paper
tunes them ("the smallest personal window that allowed the system to
reach its maximum throughput, and the accelerated window that resulted
in the highest throughput").

``quick`` mode (the default) uses shorter simulations and fewer sweep
points so the whole benchmark suite runs in minutes; set
``REPRO_BENCH_FULL=1`` for denser, longer sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core import ProtocolConfig, Service
from ..net import GIGABIT, TEN_GIGABIT, LinkSpec
from ..sim import DAEMON, LIBRARY, SPREAD, CostProfile


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


# -- tuned protocol configurations -------------------------------------------

def tuned_configs(spec: LinkSpec) -> Dict[str, ProtocolConfig]:
    """Windows tuned per link speed, as the paper tunes per testbed."""
    if spec.rate_bps >= 5e9:
        return {
            "original": ProtocolConfig.original_ring(
                personal_window=40, global_window=400),
            "accelerated": ProtocolConfig.accelerated(
                personal_window=40, accelerated_window=30, global_window=400),
        }
    return {
        "original": ProtocolConfig.original_ring(
            personal_window=20, global_window=200),
        "accelerated": ProtocolConfig.accelerated(
            personal_window=20, accelerated_window=15, global_window=200),
    }


@dataclass(frozen=True)
class SweepSpec:
    """One figure: a grid of (profile, protocol, offered load)."""

    figure_id: str
    title: str
    link: LinkSpec
    service: Service
    payload_size: int
    profiles: Tuple[CostProfile, ...]
    protocols: Tuple[str, ...]
    offered_mbps: Tuple[float, ...]
    n_nodes: int = 8
    duration_s: float = 0.15
    warmup_s: float = 0.05


def _points(quick: Sequence[float], full: Sequence[float]) -> Tuple[float, ...]:
    return tuple(full if full_mode() else quick)


def _durations(link: LinkSpec) -> Tuple[float, float]:
    if full_mode():
        return (0.30, 0.10)
    if link.rate_bps >= 5e9:
        return (0.10, 0.035)
    return (0.15, 0.05)


def make_fig1() -> SweepSpec:
    duration, warmup = _durations(GIGABIT)
    return SweepSpec(
        figure_id="fig1",
        title="Agreed delivery latency vs throughput, 1-gigabit network",
        link=GIGABIT, service=Service.AGREED, payload_size=1350,
        profiles=(LIBRARY, DAEMON, SPREAD),
        protocols=("original", "accelerated"),
        offered_mbps=_points(
            (100, 300, 500, 700, 800, 900),
            (100, 200, 300, 400, 500, 600, 700, 800, 850, 900, 940),
        ),
        duration_s=duration, warmup_s=warmup,
    )


def make_fig2() -> SweepSpec:
    base = make_fig1()
    return SweepSpec(
        figure_id="fig2",
        title="Safe delivery latency vs throughput, 1-gigabit network",
        link=base.link, service=Service.SAFE, payload_size=1350,
        profiles=base.profiles, protocols=base.protocols,
        offered_mbps=base.offered_mbps,
        duration_s=base.duration_s, warmup_s=base.warmup_s,
    )


def make_fig3() -> SweepSpec:
    duration, warmup = _durations(TEN_GIGABIT)
    return SweepSpec(
        figure_id="fig3",
        title="Agreed delivery latency vs throughput, 10-gigabit network",
        link=TEN_GIGABIT, service=Service.AGREED, payload_size=1350,
        profiles=(LIBRARY, DAEMON, SPREAD),
        protocols=("original", "accelerated"),
        offered_mbps=_points(
            (500, 1000, 2000, 3000, 4000, 4700),
            (250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4400, 4700),
        ),
        duration_s=duration, warmup_s=warmup,
    )


def make_fig5() -> SweepSpec:
    base = make_fig3()
    return SweepSpec(
        figure_id="fig5",
        title="Safe delivery latency vs throughput, 10-gigabit network",
        link=base.link, service=Service.SAFE, payload_size=1350,
        profiles=base.profiles, protocols=base.protocols,
        offered_mbps=base.offered_mbps,
        duration_s=base.duration_s, warmup_s=base.warmup_s,
    )


def make_fig4() -> Tuple[SweepSpec, SweepSpec]:
    """Fig 4: accelerated protocol, 1350 vs 8850 byte payloads (Agreed)."""
    duration, warmup = _durations(TEN_GIGABIT)
    small = SweepSpec(
        figure_id="fig4-1350",
        title="Accelerated, 1350-byte payloads, 10G (Agreed)",
        link=TEN_GIGABIT, service=Service.AGREED, payload_size=1350,
        profiles=(LIBRARY, DAEMON, SPREAD),
        protocols=("accelerated",),
        offered_mbps=_points(
            (1000, 2000, 3000, 4000, 4700),
            (500, 1000, 2000, 3000, 4000, 4400, 4700),
        ),
        duration_s=duration, warmup_s=warmup,
    )
    large = SweepSpec(
        figure_id="fig4-8850",
        title="Accelerated, 8850-byte payloads, 10G (Agreed)",
        link=TEN_GIGABIT, service=Service.AGREED, payload_size=8850,
        profiles=(LIBRARY, DAEMON, SPREAD),
        protocols=("accelerated",),
        offered_mbps=_points(
            (2000, 4000, 5500, 7000, 7600),
            (1000, 2000, 3000, 4000, 5000, 6000, 7000, 7600),
        ),
        duration_s=duration, warmup_s=warmup,
    )
    return small, large


def make_fig6() -> Tuple[SweepSpec, SweepSpec]:
    small, large = make_fig4()
    return (
        SweepSpec(
            figure_id="fig6-1350",
            title="Accelerated, 1350-byte payloads, 10G (Safe)",
            link=small.link, service=Service.SAFE, payload_size=1350,
            profiles=small.profiles, protocols=small.protocols,
            offered_mbps=small.offered_mbps,
            duration_s=small.duration_s, warmup_s=small.warmup_s,
        ),
        SweepSpec(
            figure_id="fig6-8850",
            title="Accelerated, 8850-byte payloads, 10G (Safe)",
            link=large.link, service=Service.SAFE, payload_size=8850,
            profiles=large.profiles, protocols=large.protocols,
            offered_mbps=large.offered_mbps,
            duration_s=large.duration_s, warmup_s=large.warmup_s,
        ),
    )


def make_fig7() -> SweepSpec:
    duration, warmup = _durations(TEN_GIGABIT)
    return SweepSpec(
        figure_id="fig7",
        title="Safe delivery latency at low throughputs, 10-gigabit network",
        link=TEN_GIGABIT, service=Service.SAFE, payload_size=1350,
        profiles=(SPREAD, DAEMON),
        protocols=("original", "accelerated"),
        offered_mbps=_points(
            (100, 200, 300, 400, 500, 800),
            (100, 150, 200, 250, 300, 400, 500, 600, 800, 1000),
        ),
        duration_s=max(duration, 0.12), warmup_s=warmup,
    )


ALL_FIGURES = {
    "fig1": make_fig1,
    "fig2": make_fig2,
    "fig3": make_fig3,
    "fig5": make_fig5,
    "fig7": make_fig7,
}
