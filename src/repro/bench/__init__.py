"""Benchmark harness: regenerates every figure of the paper's evaluation."""

from .experiments import (
    ALL_FIGURES,
    SweepSpec,
    full_mode,
    make_fig1,
    make_fig2,
    make_fig3,
    make_fig4,
    make_fig5,
    make_fig6,
    make_fig7,
    tuned_configs,
)
from .report import (
    HEADLINES,
    REGISTRY,
    headline,
    register,
    render_all,
    reset,
    simultaneous_improvement,
    throughput_gain_at_latency,
)
from .runner import persist_figure, run_sweep, series_label, sweep_points
from .sweep import SweepPoint, SweepRunner, default_processes, run_sweep_point

__all__ = [
    "SweepSpec", "tuned_configs", "full_mode", "ALL_FIGURES",
    "make_fig1", "make_fig2", "make_fig3", "make_fig4", "make_fig5",
    "make_fig6", "make_fig7",
    "run_sweep", "persist_figure", "series_label", "sweep_points",
    "SweepPoint", "SweepRunner", "default_processes", "run_sweep_point",
    "register", "headline", "render_all", "reset", "REGISTRY", "HEADLINES",
    "simultaneous_improvement", "throughput_gain_at_latency",
]
