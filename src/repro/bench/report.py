"""Paper-vs-measured reporting.

Every benchmark registers its reproduced figure here; the benchmarks'
conftest prints the accumulated report in the pytest terminal summary,
and `persist_figure` keeps markdown/CSV copies under bench_results/.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats import Figure, Series

#: Global registry filled by benchmark runs (figure_id -> Figure).
REGISTRY: Dict[str, Figure] = {}

#: Free-form headline lines registered by benchmarks (shown in summary).
HEADLINES: List[str] = []


def register(figure: Figure) -> Figure:
    REGISTRY[figure.figure_id] = figure
    return figure


def headline(line: str) -> None:
    HEADLINES.append(line)


def render_all() -> str:
    blocks: List[str] = []
    for figure_id in sorted(REGISTRY):
        blocks.append(REGISTRY[figure_id].to_markdown())
    if HEADLINES:
        blocks.append("## Headline comparisons (paper vs measured)")
        blocks.extend(HEADLINES)
    return "\n\n".join(blocks)


def reset() -> None:
    REGISTRY.clear()
    HEADLINES.clear()


# -- comparison helpers used by the benchmark assertions -----------------------

def simultaneous_improvement(
    original: Series,
    accelerated: Series,
    at_offered_mbps: float,
) -> Optional[Tuple[float, float]]:
    """(latency improvement, achieved ratio) at one offered load.

    Returns None when either series lacks a stable point there.
    Latency improvement is positive when the accelerated protocol is
    faster (the paper's "reduce latency by 45%" form).
    """
    orig = next(
        (p for p in original.points
         if abs(p.offered_mbps - at_offered_mbps) < 1e-6), None)
    accel = next(
        (p for p in accelerated.points
         if abs(p.offered_mbps - at_offered_mbps) < 1e-6), None)
    if orig is None or accel is None or orig.saturated or accel.saturated:
        return None
    latency_gain = (orig.latency_us - accel.latency_us) / orig.latency_us
    achieved_ratio = accel.achieved_mbps / max(orig.achieved_mbps, 1e-9)
    return latency_gain, achieved_ratio


def throughput_gain_at_latency(
    original: Series,
    accelerated: Series,
    latency_bound_us: float,
) -> float:
    """How much more throughput acceleration sustains under a latency cap."""
    orig = original.max_throughput_under_latency(latency_bound_us)
    accel = accelerated.max_throughput_under_latency(latency_bound_us)
    if orig <= 0:
        return float("inf") if accel > 0 else 0.0
    return accel / orig
