"""Parallel sweep execution: fan independent measurements across processes.

Every sweep in the benchmark suite is an embarrassingly parallel grid of
:func:`repro.sim.run_point` calls — each point builds its own simulator,
so points share no state and can run in separate worker processes.  The
:class:`SweepRunner` owns that fan-out:

* **Determinism** — each point carries its own seed (the sweep default is
  ``run_point``'s seed, so results are bit-identical to a serial sweep),
  and results are returned in point order no matter which worker finishes
  first.  ``processes=1`` and ``processes=N`` therefore produce the same
  figures, byte for byte; ``tests/test_parallel_sweep.py`` locks this in.
* **Graceful fallback** — ``processes=1`` (the default) never imports
  multiprocessing; a pool that cannot start (restricted environments)
  falls back to the serial path instead of failing the sweep.

The worker count defaults to the ``REPRO_BENCH_PROCESSES`` environment
variable, so ``REPRO_BENCH_PROCESSES=4 make figures`` parallelizes every
figure without touching call sites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import ProtocolConfig, Service
from ..net import LinkSpec
from ..sim import CostProfile, SimResult, run_point

ProgressHook = Callable[[str], None]


def default_processes() -> int:
    """Worker count from ``REPRO_BENCH_PROCESSES`` (default: serial)."""
    raw = os.environ.get("REPRO_BENCH_PROCESSES", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class SweepPoint:
    """One independent measurement of a sweep grid.

    Carries everything a worker process needs to run the point, plus the
    ``series`` label and ``index`` used to reassemble results in a
    deterministic order.
    """

    index: int
    series: str
    config: ProtocolConfig
    profile: CostProfile
    link: LinkSpec
    offered_mbps: float
    n_nodes: int
    payload_size: int
    service: Service
    duration_s: float
    warmup_s: float
    #: Per-point seed, forwarded to :func:`run_point`.  The default is
    #: ``run_point``'s own default so parallel sweeps reproduce the
    #: committed serial results exactly.
    seed: int = 0


def run_sweep_point(point: SweepPoint) -> Tuple[int, SimResult]:
    """Execute one point; module-level so worker processes can pickle it."""
    result = run_point(
        point.config,
        point.profile,
        point.link,
        point.offered_mbps * 1e6,
        n_nodes=point.n_nodes,
        payload_size=point.payload_size,
        service=point.service,
        duration_s=point.duration_s,
        warmup_s=point.warmup_s,
        seed=point.seed,
    )
    return point.index, result


class SweepRunner:
    """Runs a list of :class:`SweepPoint` serially or across a pool."""

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = default_processes() if processes is None else max(1, processes)

    def run(
        self,
        points: Sequence[SweepPoint],
        progress: Optional[ProgressHook] = None,
    ) -> List[Tuple[SweepPoint, SimResult]]:
        """Run every point; results come back in point order."""
        if self.processes > 1 and len(points) > 1:
            results = self._run_parallel(points, progress)
            if results is not None:
                return results
        return self._run_serial(points, progress)

    # -- serial ----------------------------------------------------------

    def _run_serial(
        self,
        points: Sequence[SweepPoint],
        progress: Optional[ProgressHook],
    ) -> List[Tuple[SweepPoint, SimResult]]:
        out: List[Tuple[SweepPoint, SimResult]] = []
        for point in points:
            _index, result = run_sweep_point(point)
            out.append((point, result))
            if progress is not None:
                progress(_progress_line(point, result))
        return out

    # -- parallel --------------------------------------------------------

    def _run_parallel(
        self,
        points: Sequence[SweepPoint],
        progress: Optional[ProgressHook],
    ) -> Optional[List[Tuple[SweepPoint, SimResult]]]:
        try:
            import multiprocessing
            pool = multiprocessing.Pool(min(self.processes, len(points)))
        except (ImportError, OSError):
            return None  # restricted environment: fall back to serial
        position = {point.index: i for i, point in enumerate(points)}
        slots: List[Optional[SimResult]] = [None] * len(points)
        try:
            # Unordered completion for wall-clock; the index carried by
            # each result puts it back in its deterministic slot.
            for index, result in pool.imap_unordered(run_sweep_point, points):
                slot = position[index]
                slots[slot] = result
                if progress is not None:
                    progress(_progress_line(points[slot], result))
        finally:
            pool.close()
            pool.join()
        return [(point, slots[i]) for i, point in enumerate(points)]


def _progress_line(point: SweepPoint, result: SimResult) -> str:
    return "%s @%.0f Mbps -> %.0f Mbps, %.0f us%s" % (
        point.series,
        point.offered_mbps,
        result.achieved_mbps,
        result.latency_us,
        " SAT" if result.saturated else "",
    )
