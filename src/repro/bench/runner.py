"""Sweep runner: executes a SweepSpec into a Figure of series.

The grid of a figure is flattened into independent
:class:`~repro.bench.sweep.SweepPoint` measurements and handed to a
:class:`~repro.bench.sweep.SweepRunner`, which runs them serially or
across a process pool (``processes`` argument, or the
``REPRO_BENCH_PROCESSES`` environment variable).  Point order — and
therefore every figure table and CSV — is identical either way.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from ..stats import Figure, SeriesPoint
from .experiments import SweepSpec, tuned_configs
from .sweep import SweepPoint, SweepRunner

#: Directory where figures are persisted as markdown + CSV.
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")

ProgressHook = Callable[[str], None]


def series_label(profile_name: str, protocol_name: str) -> str:
    return "%s/%s" % (profile_name, protocol_name)


def sweep_points(spec: SweepSpec) -> List[SweepPoint]:
    """Flatten a figure's (profile, protocol, load) grid, in figure order."""
    configs = tuned_configs(spec.link)
    points: List[SweepPoint] = []
    for profile in spec.profiles:
        for protocol_name in spec.protocols:
            config = configs[protocol_name]
            label = series_label(profile.name, protocol_name)
            for offered_mbps in spec.offered_mbps:
                points.append(
                    SweepPoint(
                        index=len(points),
                        series=label,
                        config=config,
                        profile=profile,
                        link=spec.link,
                        offered_mbps=offered_mbps,
                        n_nodes=spec.n_nodes,
                        payload_size=spec.payload_size,
                        service=spec.service,
                        duration_s=spec.duration_s,
                        warmup_s=spec.warmup_s,
                    )
                )
    return points


def run_sweep(
    spec: SweepSpec,
    progress: Optional[ProgressHook] = None,
    processes: Optional[int] = None,
) -> Figure:
    """Run every (profile, protocol, load) point of a figure."""
    figure = Figure(spec.figure_id, spec.title)
    runner = SweepRunner(processes)
    hook = None
    if progress is not None:
        hook = lambda line: progress("%s %s" % (spec.figure_id, line))
    for point, result in runner.run(sweep_points(spec), progress=hook):
        figure.series_for(point.series).add(
            SeriesPoint(
                offered_mbps=point.offered_mbps,
                achieved_mbps=result.achieved_mbps,
                latency_us=result.latency_us,
                saturated=result.saturated,
                extra={
                    "rounds_per_s": result.rounds_per_s,
                    "switch_drops": float(result.switch_drops),
                    "retransmissions": float(result.retransmissions),
                },
            )
        )
    return figure


def persist_figure(figure: Figure, directory: str = RESULTS_DIR) -> str:
    """Write markdown + CSV for a figure; returns the markdown path."""
    os.makedirs(directory, exist_ok=True)
    md_path = os.path.join(directory, "%s.md" % figure.figure_id)
    with open(md_path, "w") as handle:
        handle.write(figure.to_markdown() + "\n")
    with open(os.path.join(directory, "%s.csv" % figure.figure_id), "w") as handle:
        handle.write(figure.to_csv() + "\n")
    return md_path
