"""Sweep runner: executes a SweepSpec into a Figure of series."""

from __future__ import annotations

import os
from typing import Callable, Optional

from ..sim import run_point
from ..stats import Figure, SeriesPoint
from .experiments import SweepSpec, tuned_configs

#: Directory where figures are persisted as markdown + CSV.
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")

ProgressHook = Callable[[str], None]


def series_label(profile_name: str, protocol_name: str) -> str:
    return "%s/%s" % (profile_name, protocol_name)


def run_sweep(
    spec: SweepSpec,
    progress: Optional[ProgressHook] = None,
) -> Figure:
    """Run every (profile, protocol, load) point of a figure."""
    figure = Figure(spec.figure_id, spec.title)
    configs = tuned_configs(spec.link)
    for profile in spec.profiles:
        for protocol_name in spec.protocols:
            config = configs[protocol_name]
            label = series_label(profile.name, protocol_name)
            series = figure.series_for(label)
            for offered_mbps in spec.offered_mbps:
                result = run_point(
                    config,
                    profile,
                    spec.link,
                    offered_mbps * 1e6,
                    n_nodes=spec.n_nodes,
                    payload_size=spec.payload_size,
                    service=spec.service,
                    duration_s=spec.duration_s,
                    warmup_s=spec.warmup_s,
                )
                series.add(
                    SeriesPoint(
                        offered_mbps=offered_mbps,
                        achieved_mbps=result.achieved_mbps,
                        latency_us=result.latency_us,
                        saturated=result.saturated,
                        extra={
                            "rounds_per_s": result.rounds_per_s,
                            "switch_drops": float(result.switch_drops),
                            "retransmissions": float(result.retransmissions),
                        },
                    )
                )
                if progress is not None:
                    progress(
                        "%s %s @%.0f Mbps -> %.0f Mbps, %.0f us%s"
                        % (spec.figure_id, label, offered_mbps,
                           result.achieved_mbps, result.latency_us,
                           " SAT" if result.saturated else "")
                    )
    return figure


def persist_figure(figure: Figure, directory: str = RESULTS_DIR) -> str:
    """Write markdown + CSV for a figure; returns the markdown path."""
    os.makedirs(directory, exist_ok=True)
    md_path = os.path.join(directory, "%s.md" % figure.figure_id)
    with open(md_path, "w") as handle:
        handle.write(figure.to_markdown() + "\n")
    with open(os.path.join(directory, "%s.csv" % figure.figure_id), "w") as handle:
        handle.write(figure.to_csv() + "\n")
    return md_path
