"""Deterministic network driver for membership/EVS testing.

Connectivity is explicit: the network is partitioned into groups, and
messages only flow within a group.  Crashes remove a process outright.
Each global step lets every live process handle one pending message
(control messages outrank protocol messages) and then advances its
logical clock by one tick, so timeouts — token loss, gather, commit —
fire deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Set

from ..core import ProtocolConfig, Service
from ..evs import EVSChecker
from ..membership import EVSProcess, MembershipTimeouts, Outgoing, State


class EVSNetwork:
    """N membership-running processes over a partitionable network."""

    def __init__(
        self,
        pids: Sequence[int],
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
    ) -> None:
        self.pids = list(pids)
        self._config = config
        self._timeouts = timeouts
        self.processes: Dict[int, EVSProcess] = {
            pid: EVSProcess(pid, config, timeouts) for pid in self.pids
        }
        self._groups: List[Set[int]] = [set(self.pids)]
        self.crashed: Set[int] = set()
        #: Earlier incarnations of restarted pids, oldest first.  Their
        #: delivered prefixes still matter for EVS checking.
        self.archived: Dict[int, List[EVSProcess]] = {}
        self._ctrl: Dict[int, Deque] = {p: deque() for p in self.pids}
        self._token: Dict[int, Deque] = {p: deque() for p in self.pids}
        self._data: Dict[int, Deque] = {p: deque() for p in self.pids}
        self.steps = 0
        for pid in self.pids:
            self._route(pid, self.processes[pid].bootstrap())

    # -- topology control ---------------------------------------------------

    def set_partition(self, *groups: Iterable[int]) -> None:
        """Split the network; every live pid must appear in exactly one group."""
        sets = [set(g) for g in groups]
        listed = set().union(*sets) if sets else set()
        live = set(self.pids) - self.crashed
        missing = live - listed
        for pid in missing:
            sets.append({pid})  # unlisted processes end up isolated
        self._groups = sets
        # In-flight messages across the new boundary are lost.
        self._drop_cross_partition_traffic()

    def heal(self) -> None:
        """Merge all partitions back into one network."""
        self._groups = [set(self.pids) - self.crashed]

    def spawn(self, pid: int,
              config: Optional[ProtocolConfig] = None,
              timeouts: Optional[MembershipTimeouts] = None) -> EVSProcess:
        """Start a brand-new process mid-run (late join).

        It boots as a singleton, floods a join, and the membership
        algorithm merges it into whichever partition group it lands in.
        """
        if pid in self.processes:
            raise ValueError("pid %r already exists" % pid)
        process = EVSProcess(pid, config, timeouts)
        self.pids.append(pid)
        self.processes[pid] = process
        self._ctrl[pid] = deque()
        self._token[pid] = deque()
        self._data[pid] = deque()
        # The newcomer lands in the largest current group (the healed
        # network in the common case); use set_partition for control.
        target = max(self._groups, key=len) if self._groups else set()
        target.add(pid)
        self._route(pid, process.bootstrap())
        return process

    def restart(self, pid: int) -> EVSProcess:
        """Reboot a crashed process as a fresh, amnesiac incarnation.

        The old incarnation's log is archived (its delivered prefix
        still has to be consistent with the survivors'); the new
        process bootstraps as a singleton and rejoins via the normal
        membership path, landing in the largest current group.
        """
        if pid not in self.crashed:
            raise ValueError("pid %r is not crashed" % pid)
        self.crashed.discard(pid)
        old = self.processes[pid]
        self.archived.setdefault(pid, []).append(old)
        # Volatile state is gone, but the ring epoch survives on
        # "disk" (Totem's stable-storage ring sequence number) so the
        # new incarnation can never re-mint an old ring id.
        process = EVSProcess(pid, self._config, self._timeouts,
                             stable_ring_seq=old.stable_ring_seq)
        self.processes[pid] = process
        if self._groups:
            max(self._groups, key=len).add(pid)
        else:
            self._groups = [{pid}]
        self._route(pid, process.bootstrap())
        return process

    def crash(self, pid: int) -> None:
        """Process failure: no more steps, inboxes dropped."""
        self.crashed.add(pid)
        self._ctrl[pid].clear()
        self._token[pid].clear()
        self._data[pid].clear()
        for group in self._groups:
            group.discard(pid)

    def connected(self, a: int, b: int) -> bool:
        if a in self.crashed or b in self.crashed:
            return False
        if a == b:
            return True
        return any(a in group and b in group for group in self._groups)

    def group_of(self, pid: int) -> Set[int]:
        for group in self._groups:
            if pid in group:
                return set(group)
        return {pid}

    def _drop_cross_partition_traffic(self) -> None:
        # Queued messages carry their source; drop those no longer
        # reachable.  (Entries are (src, payload) pairs.)
        for pid in self.pids:
            for queue in (self._ctrl[pid], self._token[pid], self._data[pid]):
                kept = [(src, m) for (src, m) in queue if self.connected(src, pid)]
                queue.clear()
                queue.extend(kept)

    # -- workload ---------------------------------------------------------------

    def submit(self, pid: int, payload: Any, service: Service = Service.AGREED) -> None:
        self.processes[pid].submit(payload, service)

    # -- execution ----------------------------------------------------------------

    def step(self) -> bool:
        progressed = False
        for pid in self.pids:
            if pid in self.crashed:
                continue
            if self._step_one(pid):
                progressed = True
        for pid in self.pids:
            if pid in self.crashed:
                continue
            self._route(pid, self.processes[pid].tick())
        self.steps += 1
        return progressed

    def _step_one(self, pid: int) -> bool:
        process = self.processes[pid]
        ctrl, token_q, data_q = self._ctrl[pid], self._token[pid], self._data[pid]
        if ctrl:
            src, message = ctrl.popleft()
            self._route(pid, process.handle_ctrl(message, src))
            return True
        token_pending, data_pending = bool(token_q), bool(data_q)
        if not token_pending and not data_pending:
            return False
        take_token = token_pending and (
            process.token_has_priority or not data_pending
        )
        if take_token:
            src, (ring_id, token) = token_q.popleft()
            self._route(pid, process.handle_token(ring_id, token, src))
        else:
            src, (ring_id, message) = data_q.popleft()
            self._route(pid, process.handle_data(ring_id, message, src))
        return True

    def _route(self, src: int, outgoing: List[Outgoing]) -> None:
        for out in outgoing:
            queue_name = out.kind
            if out.dst is not None:
                targets = [out.dst] if self.connected(src, out.dst) else []
            else:
                targets = [
                    pid for pid in self.group_of(src)
                    if pid != src and pid not in self.crashed
                ]
            for dst in targets:
                queue = {"ctrl": self._ctrl, "token": self._token,
                         "data": self._data}[queue_name]
                queue[dst].append((src, out.payload))

    # -- invariant checking -------------------------------------------------------

    def logs(self) -> Dict:
        """Every incarnation's app_log (crashed included — their
        delivered prefix must still be consistent with the survivors').

        Keys are bare pids until the first :meth:`restart`; after one,
        keys become ``(pid, incarnation)`` so each amnesiac reboot is
        checked as its own EVS process (the checker accepts both).
        """
        if not self.archived:
            return {
                pid: process.app_log
                for pid, process in self.processes.items()
            }
        collected: Dict = {}
        for pid, process in self.processes.items():
            earlier = self.archived.get(pid, [])
            for incarnation, old in enumerate(earlier):
                collected[(pid, incarnation)] = old.app_log
            collected[(pid, len(earlier))] = process.app_log
        return collected

    def check_invariants(self) -> None:
        """Assert every EVS axiom over all processes' logs."""
        checker = EVSChecker()
        checker.check_logs(self.logs())
        checker.assert_ok()

    # -- convergence helpers ------------------------------------------------------

    def _group_converged(self, group: Set[int]) -> bool:
        live = sorted(group - self.crashed)
        if not live:
            return True
        for pid in live:
            process = self.processes[pid]
            if process.state is not State.OPERATIONAL:
                return False
            if tuple(process.ring.members) != tuple(live):
                return False
            if self._ctrl[pid] or self._data[pid]:
                return False
        ring_ids = {self.processes[pid].ring.ring_id for pid in live}
        return len(ring_ids) == 1

    def converged(self) -> bool:
        return all(self._group_converged(set(g)) for g in self._groups)

    def run_until_converged(self, max_steps: int = 20_000) -> int:
        for _i in range(max_steps):
            self.step()
            if self.converged():
                return self.steps
        states = {
            pid: (p.state, p.ring.members)
            for pid, p in self.processes.items()
            if pid not in self.crashed
        }
        raise RuntimeError(
            "membership did not converge in %d steps: %r" % (max_steps, states)
        )

    def run_quiet(self, extra_steps: int) -> None:
        """Run a fixed number of steps (e.g. to drain deliveries)."""
        for _i in range(extra_steps):
            self.step()

    def run_until_delivered(self, count: int, max_steps: int = 50_000) -> None:
        """Run until every live process has delivered ``count`` messages."""
        for _i in range(max_steps):
            self.step()
            if all(
                len(self.processes[pid].delivered_messages()) >= count
                for pid in self.pids
                if pid not in self.crashed
            ):
                return
        raise RuntimeError("not all processes delivered %d messages" % count)
