"""Deterministic in-process ring driver for correctness testing.

Runs a set of :class:`~repro.core.Participant` state machines over an
instantaneous, per-link-FIFO "network" with optional message dropping.
There is no notion of time — participants take turns round-robin,
processing one pending input per turn according to the protocol's
token/data priority rules — so every run is exactly reproducible and
suitable for unit, property-based and differential tests.

Performance questions (latency, throughput) are answered by the
discrete-event substrate in :mod:`repro.sim`, not here.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from ..core import (
    DataMessage,
    Deliver,
    Discard,
    EventHub,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
    initial_token,
)

#: Optional drop predicates: return True to lose the message on that link.
DataDropRule = Callable[[DataMessage, int], bool]
TokenDropRule = Callable[[Token, int], bool]


class StabilityViolation(AssertionError):
    """A Safe message was delivered before everyone had it."""


class LoopbackRing:
    """An N-participant ring with an instantaneous loss-injectable network."""

    def __init__(
        self,
        pids: Sequence[int],
        config: Optional[ProtocolConfig] = None,
        drop_data: Optional[DataDropRule] = None,
        drop_token: Optional[TokenDropRule] = None,
        check_stability: bool = True,
        hub: Optional[EventHub] = None,
        on_deliver: Optional[Callable[[int, DataMessage], None]] = None,
    ) -> None:
        self.ring = Ring.of(pids)
        self.config = config or ProtocolConfig()
        self.hub = hub or EventHub()
        self.participants: Dict[int, Participant] = {
            pid: Participant(pid, self.ring, self.config, self.hub) for pid in self.ring
        }
        self._token_inbox: Dict[int, Deque[Token]] = {p: deque() for p in self.ring}
        self._data_inbox: Dict[int, Deque[DataMessage]] = {p: deque() for p in self.ring}
        self._drop_data = drop_data
        self._drop_token = drop_token
        self._check_stability = check_stability
        self._on_deliver = on_deliver
        #: Per-participant delivery logs: list of DataMessage in order.
        self.delivered: Dict[int, List[DataMessage]] = {p: [] for p in self.ring}
        #: Per-participant discard high watermark.
        self.discarded_upto: Dict[int, int] = {p: 0 for p in self.ring}
        self.steps_taken = 0
        self.data_drops = 0
        self.token_drops = 0
        self._started = False

    # -- workload --------------------------------------------------------

    def submit(
        self,
        pid: int,
        payload: Any,
        service: Service = Service.AGREED,
        payload_size: int = 0,
    ) -> None:
        self.participants[pid].submit(payload, service, payload_size)

    def submit_many(
        self, pid: int, payloads: Sequence[Any], service: Service = Service.AGREED
    ) -> None:
        for payload in payloads:
            self.submit(pid, payload, service)

    # -- execution ---------------------------------------------------------

    def start(self) -> None:
        """Inject the first regular token at the ring leader."""
        if self._started:
            raise RuntimeError("ring already started")
        self._started = True
        self._token_inbox[self.ring.leader].append(
            initial_token(self.ring.ring_id)
        )

    def step(self) -> bool:
        """Let each participant process at most one input; False if idle."""
        progressed = False
        for pid in self.ring:
            if self._step_one(pid):
                progressed = True
        if progressed:
            self.steps_taken += 1
        return progressed

    def run(self, max_steps: int = 100_000) -> int:
        """Step until quiescent (all inboxes empty); returns steps taken.

        A ring with a live token never quiesces on its own, so the run
        stops once the token is parked: every inbox empty except a token
        waiting at a participant with no data pending anywhere — covered
        by running until only token handling with no sends would repeat.
        In practice: we stop when a full sweep makes no progress OR when
        all application backlogs and data inboxes are empty and the token
        has completed two further cleanup rounds (to raise aru and
        deliver Safe messages).
        """
        if not self._started:
            self.start()
        idle_token_rounds = 0
        hops_per_round = len(self.ring)
        last_hop_seen = -1
        last_delivered = self._total_delivered()
        for step in range(max_steps):
            if not self.step():
                return step
            # A round only counts as idle if nothing was DELIVERED in it
            # either: after a retransmission recovers a lagging
            # participant, the token aru jumps and Safe messages need up
            # to two further rotations (the two-rotation stability rule)
            # before everyone's safe bound catches up.  Counting those
            # rotations as idle parks the token with deliverable
            # messages still pending.
            delivered = self._total_delivered()
            if delivered != last_delivered:
                last_delivered = delivered
                idle_token_rounds = 0
            if self._all_data_done():
                current_hop = max(
                    p.last_received_hop for p in self.participants.values()
                )
                if current_hop >= last_hop_seen + hops_per_round:
                    idle_token_rounds += 1
                    last_hop_seen = current_hop
                if idle_token_rounds >= 3:
                    return step
            else:
                idle_token_rounds = 0
                last_hop_seen = max(
                    p.last_received_hop for p in self.participants.values()
                )
        raise RuntimeError("run() did not settle within %d steps" % max_steps)

    def run_rounds(self, rounds: int, max_steps: int = 1_000_000) -> None:
        """Run until the leader has handled ``rounds`` more tokens."""
        if not self._started:
            self.start()
        leader = self.participants[self.ring.leader]
        target = leader.stats.tokens_handled + rounds
        for _step in range(max_steps):
            if leader.stats.tokens_handled >= target:
                return
            if not self.step():
                raise RuntimeError(
                    "ring went idle before completing %d rounds" % rounds
                )
        raise RuntimeError("run_rounds() exceeded %d steps" % max_steps)

    def retransmit_token(self, pid: int) -> None:
        """Simulate the token-retransmission timer firing at ``pid``."""
        participant = self.participants[pid]
        token = participant.last_token_sent
        if token is None:
            return
        self._route_token(token, participant.successor, allow_drop=False)

    # -- inspection ----------------------------------------------------------

    def delivered_seqs(self, pid: int) -> List[int]:
        return [m.seq for m in self.delivered[pid]]

    def delivered_payloads(self, pid: int) -> List[Any]:
        return [m.payload for m in self.delivered[pid]]

    def all_quiet(self) -> bool:
        return all(not q for q in self._data_inbox.values()) and all(
            not q for q in self._token_inbox.values()
        )

    def _total_delivered(self) -> int:
        return sum(len(log) for log in self.delivered.values())

    def _all_data_done(self) -> bool:
        return (
            all(not q for q in self._data_inbox.values())
            and all(p.backlog == 0 for p in self.participants.values())
        )

    # -- internals --------------------------------------------------------------

    def _step_one(self, pid: int) -> bool:
        participant = self.participants[pid]
        token_q = self._token_inbox[pid]
        data_q = self._data_inbox[pid]
        if not token_q and not data_q:
            return False
        take_token = bool(token_q) and (participant.token_has_priority or not data_q)
        if take_token:
            actions = participant.on_token(token_q.popleft())
        else:
            actions = participant.on_data(data_q.popleft())
        self._execute(pid, actions)
        return True

    def _execute(self, pid: int, actions) -> None:
        for action in actions:
            if isinstance(action, SendData):
                self._route_data(action.message, source=pid)
            elif isinstance(action, SendToken):
                self._route_token(action.token, action.dst, allow_drop=True)
            elif isinstance(action, Deliver):
                self._record_delivery(pid, action.message)
            elif isinstance(action, Discard):
                self.discarded_upto[pid] = max(
                    self.discarded_upto[pid], action.upto
                )

    def _route_data(self, message: DataMessage, source: int) -> None:
        for pid in self.ring:
            if pid == source:
                continue
            if self._drop_data is not None and self._drop_data(message, pid):
                self.data_drops += 1
                continue
            self._data_inbox[pid].append(message)

    def _route_token(self, token: Token, dst: int, allow_drop: bool) -> None:
        if (
            allow_drop
            and self._drop_token is not None
            and self._drop_token(token, dst)
        ):
            self.token_drops += 1
            return
        self._token_inbox[dst].append(token)

    def _record_delivery(self, pid: int, message: DataMessage) -> None:
        self.delivered[pid].append(message)
        if self._on_deliver is not None:
            self._on_deliver(pid, message)
        if self._check_stability and message.service.requires_stability:
            for other_pid, other in self.participants.items():
                if not other.buffer.has(message.seq):
                    raise StabilityViolation(
                        "pid %d delivered Safe seq %d before pid %d received it"
                        % (pid, message.seq, other_pid)
                    )
