"""In-process drivers for correctness testing and examples."""

from .loopback import LoopbackRing, StabilityViolation

__all__ = ["LoopbackRing", "StabilityViolation"]
