"""Real-socket transport: UDP on localhost.

The paper's implementations use IP-multicast for data and UDP unicast
for the token, on separate ports/sockets (Section III-D).  This
emulation keeps the two-socket structure but builds logical multicast
from unicast fan-out so it runs anywhere (the paper notes Spread offers
the same fallback where IP-multicast is unavailable).

Objects are pickled; this is a localhost research harness, not a wire
format.
"""

from __future__ import annotations

import pickle
import select
import socket
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Loss hook for tests: (kind, obj, dst_pid) -> True to drop the send.
SendLossRule = Callable[[str, Any, int], bool]

#: Generous datagram budget for pickled protocol objects on loopback.
MAX_DATAGRAM = 60_000


class PortPair:
    """The two receive ports of one node (data, token)."""

    def __init__(self, data_port: int, token_port: int) -> None:
        self.data_port = data_port
        self.token_port = token_port


class UdpTransport:
    """Two bound UDP sockets plus fan-out addressing of all peers."""

    def __init__(self, pid: int, host: str = "127.0.0.1") -> None:
        self.pid = pid
        self.host = host
        self._data_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._token_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for sock in (self._data_sock, self._token_sock):
            sock.bind((host, 0))
            sock.setblocking(False)
        self.ports = PortPair(
            self._data_sock.getsockname()[1],
            self._token_sock.getsockname()[1],
        )
        self._peers: Dict[int, PortPair] = {}
        self._loss: Optional[SendLossRule] = None
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def set_peers(self, peers: Dict[int, PortPair]) -> None:
        self._peers = dict(peers)

    def set_loss_rule(self, rule: Optional[SendLossRule]) -> None:
        self._loss = rule

    # -- sending ----------------------------------------------------------

    def send_data(self, obj: Any) -> None:
        """Logical multicast: unicast the datagram to every peer."""
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) > MAX_DATAGRAM:
            raise ValueError("datagram too large: %d bytes" % len(blob))
        for pid, ports in self._peers.items():
            if pid == self.pid:
                continue
            if self._loss is not None and self._loss("data", obj, pid):
                continue
            self._data_sock.sendto(blob, (self.host, ports.data_port))
            self.datagrams_sent += 1

    def send_token(self, obj: Any, dst: int) -> None:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if self._loss is not None and self._loss("token", obj, dst):
            return
        ports = self._peers[dst]
        self._token_sock.sendto(blob, (self.host, ports.token_port))
        self.datagrams_sent += 1

    # -- receiving ---------------------------------------------------------

    def _drain(self, sock: socket.socket) -> List[Any]:
        received = []
        while True:
            try:
                blob, _addr = sock.recvfrom(MAX_DATAGRAM + 1024)
            except BlockingIOError:
                break
            received.append(pickle.loads(blob))
            self.datagrams_received += 1
        return received

    def poll(self, timeout_s: float) -> Tuple[List[Any], List[Any]]:
        """Wait up to ``timeout_s``; returns (data_objs, token_objs)."""
        readable, _w, _x = select.select(
            [self._data_sock, self._token_sock], [], [], timeout_s
        )
        data: List[Any] = []
        tokens: List[Any] = []
        if self._data_sock in readable:
            data = self._drain(self._data_sock)
        if self._token_sock in readable:
            tokens = self._drain(self._token_sock)
        return data, tokens

    def close(self) -> None:
        self._data_sock.close()
        self._token_sock.close()
