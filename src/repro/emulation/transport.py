"""Real-socket transport: UDP on localhost.

The paper's implementations use IP-multicast for data and UDP unicast
for the token, on separate ports/sockets (Section III-D).  This
emulation keeps the two-socket structure but builds logical multicast
from unicast fan-out so it runs anywhere (the paper notes Spread offers
the same fallback where IP-multicast is unavailable).

Datagrams carry the real wire format (:mod:`repro.wire.codec`): a
versioned, CRC-protected binary encoding, not pickle.  Receiving is
strict — a malformed, truncated or oversized datagram is counted and
dropped, never parsed optimistically and never allowed to crash the
node thread.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.coalesce import JumboDatagram, coalesce
from ..core.messages import DataMessage, Token
from ..wire.capture import TRAFFIC_DATA, TRAFFIC_TOKEN, CaptureWriter
from ..wire.codec import (
    HEADER_SIZE,
    DecodeError,
    EncodeError,
    decode_detail,
    encode,
)

#: Loss hook for tests: (kind, obj, dst_pid) -> True to drop the send.
SendLossRule = Callable[[str, Any, int], bool]

#: Largest datagram this transport will put on the wire.  Generous for
#: loopback; a deployment would tune this to the path MTU and lean on
#: the packing layer instead.
MAX_DATAGRAM = 60_000

#: Receive buffer: the largest payload a UDP datagram can carry at all,
#: so the kernel can never silently truncate what we read — anything
#: over :data:`MAX_DATAGRAM` is *our* protocol violation and is counted
#: as an oversize drop instead.
_RECV_BUFSIZE = 65_535


class OversizedDatagramError(ValueError):
    """A send-side message encoded past :data:`MAX_DATAGRAM`."""

    def __init__(self, message: Any, encoded_size: int) -> None:
        self.wire_message = message
        self.encoded_size = encoded_size
        super().__init__(
            "%s encodes to %d bytes, over the %d-byte datagram limit; "
            "shrink the payload or let the packing layer split it"
            % (type(message).__name__, encoded_size, MAX_DATAGRAM)
        )


class PortPair:
    """The two receive ports of one node (data, token)."""

    def __init__(self, data_port: int, token_port: int) -> None:
        self.data_port = data_port
        self.token_port = token_port


class UdpTransport:
    """Two bound UDP sockets plus fan-out addressing of all peers."""

    def __init__(self, pid: int, host: str = "127.0.0.1") -> None:
        self.pid = pid
        self.host = host
        self._data_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._token_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for sock in (self._data_sock, self._token_sock):
            sock.bind((host, 0))
            sock.setblocking(False)
        self.ports = PortPair(
            self._data_sock.getsockname()[1],
            self._token_sock.getsockname()[1],
        )
        self._peers: Dict[int, PortPair] = {}
        self._loss: Optional[SendLossRule] = None
        #: Configuration id stamped on outgoing data datagrams.
        self.ring_id = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0
        #: Datagrams rejected by strict decoding (bad magic/version/CRC/
        #: layout, or a message type the socket does not accept).
        self.drops_malformed = 0
        #: Datagrams larger than :data:`MAX_DATAGRAM` (foreign senders;
        #: our own send side refuses to create them).
        self.drops_oversize = 0
        #: Last decode failure, for diagnostics (never raised).
        self.last_decode_error: Optional[str] = None
        self._capture: Optional[CaptureWriter] = None
        self._capture_t0 = 0.0

    def set_peers(self, peers: Dict[int, PortPair]) -> None:
        self._peers = dict(peers)

    def set_loss_rule(self, rule: Optional[SendLossRule]) -> None:
        self._loss = rule

    def set_capture(self, writer: Optional[CaptureWriter],
                    t0: Optional[float] = None) -> None:
        """Record every send into ``writer`` (shared across nodes is fine).

        Send-side capture mirrors the simulator's switch-ingress tap:
        one record per logical multicast, not per fan-out copy.
        """
        self._capture = writer
        self._capture_t0 = time.monotonic() if t0 is None else t0

    @property
    def datagrams_dropped(self) -> int:
        """Everything received but refused: malformed plus oversized."""
        return self.drops_malformed + self.drops_oversize

    def register_metrics(self, registry, node: Optional[int] = None) -> None:
        """Expose the transport counters through a MetricsRegistry.

        Bound views over the attributes the socket loops already
        increment; ``node`` scopes them to this transport's pid.
        """
        pid = self.pid if node is None else node
        registry.bind("emulation.transport.datagrams_sent", self,
                      "datagrams_sent", node=pid)
        registry.bind("emulation.transport.datagrams_received", self,
                      "datagrams_received", node=pid)
        registry.bind("emulation.transport.drops_malformed", self,
                      "drops_malformed", node=pid)
        registry.bind("emulation.transport.drops_oversize", self,
                      "drops_oversize", node=pid)

    # -- sending ----------------------------------------------------------

    def _encode_checked(self, obj: Any) -> bytes:
        blob = encode(obj, ring_id=self.ring_id)
        if len(blob) > MAX_DATAGRAM:
            raise OversizedDatagramError(obj, len(blob))
        return blob

    def send_data(self, obj: Any) -> None:
        """Logical multicast: unicast the datagram to every peer."""
        self._multicast_data(self._encode_checked(obj), obj)

    def send_data_batch(self, objs, jumbo_cap: int) -> None:
        """Multicast a burst of data messages, coalescing into jumbos.

        Greedily groups the burst's datagrams under ``jumbo_cap`` (bounded
        by :data:`MAX_DATAGRAM`); each group of two or more travels as one
        jumbo datagram sharing a single header and CRC, while a group of
        one is sent byte-for-byte as :meth:`send_data` would.
        """
        objs = list(objs)
        if len(objs) == 1:
            self.send_data(objs[0])
            return
        cap = min(jumbo_cap, MAX_DATAGRAM)
        sized = []
        for obj in objs:
            blob = self._encode_checked(obj)
            sized.append(((obj, blob), len(blob) - HEADER_SIZE))
        for group, _size in coalesce(sized, cap, HEADER_SIZE):
            if len(group) == 1:
                obj, blob = group[0]
                self._multicast_data(blob, obj)
            else:
                datagram = JumboDatagram(tuple(obj for obj, _ in group))
                self._multicast_data(self._encode_checked(datagram), datagram)

    def _multicast_data(self, blob: bytes, obj: Any) -> None:
        if self._capture is not None:
            self._capture.write(
                time.monotonic() - self._capture_t0,
                self.pid, None, TRAFFIC_DATA, blob,
            )
        for pid, ports in self._peers.items():
            if pid == self.pid:
                continue
            if self._loss is not None and self._loss("data", obj, pid):
                continue
            self._data_sock.sendto(blob, (self.host, ports.data_port))
            self.datagrams_sent += 1

    def send_token(self, obj: Any, dst: int) -> None:
        blob = self._encode_checked(obj)
        if self._capture is not None:
            self._capture.write(
                time.monotonic() - self._capture_t0,
                self.pid, dst, TRAFFIC_TOKEN, blob,
            )
        if self._loss is not None and self._loss("token", obj, dst):
            return
        ports = self._peers[dst]
        self._token_sock.sendto(blob, (self.host, ports.token_port))
        self.datagrams_sent += 1

    # -- receiving ---------------------------------------------------------

    def _drain(self, sock: socket.socket, want_token: bool) -> List[Any]:
        """Read everything pending; strict decode, count-and-drop errors.

        The token socket accepts only tokens and the data socket only
        data messages — a well-formed frame of any other type (which a
        confused or hostile sender could aim at either port) is just as
        much a protocol violation as a CRC mismatch, and is counted and
        dropped rather than handed to the participant.
        """
        received = []
        expected = Token if want_token else DataMessage
        while True:
            try:
                blob, _addr = sock.recvfrom(_RECV_BUFSIZE)
            except BlockingIOError:
                break
            if len(blob) > MAX_DATAGRAM:
                self.drops_oversize += 1
                continue
            try:
                decoded = decode_detail(blob)
            except DecodeError as exc:
                self.drops_malformed += 1
                self.last_decode_error = str(exc)
                continue
            message = decoded.message
            if not want_token and type(message) is JumboDatagram:
                # The codec guarantees every inner packet is a data
                # message, so a jumbo is acceptable wherever one is.
                received.extend(message.messages)
                self.datagrams_received += 1
                continue
            if type(message) is not expected:
                self.drops_malformed += 1
                self.last_decode_error = (
                    "%s frame on the %s socket"
                    % (decoded.kind, "token" if want_token else "data")
                )
                continue
            received.append(message)
            self.datagrams_received += 1
        return received

    def poll(self, timeout_s: float) -> Tuple[List[Any], List[Any]]:
        """Wait up to ``timeout_s``; returns (data_objs, token_objs)."""
        readable, _w, _x = select.select(
            [self._data_sock, self._token_sock], [], [], timeout_s
        )
        data: List[Any] = []
        tokens: List[Any] = []
        if self._data_sock in readable:
            data = self._drain(self._data_sock, want_token=False)
        if self._token_sock in readable:
            tokens = self._drain(self._token_sock, want_token=True)
        return data, tokens

    def close(self) -> None:
        self._data_sock.close()
        self._token_sock.close()


# Re-exported for callers that treat the transport as the wire boundary.
__all__ = [
    "MAX_DATAGRAM",
    "OversizedDatagramError",
    "PortPair",
    "SendLossRule",
    "UdpTransport",
    "DataMessage",
    "EncodeError",
]
