"""The protocol over real UDP sockets (laptop-scale, threads).

The library-based prototype of the paper, in miniature: real datagrams,
real kernel buffers, real token acceleration — on 127.0.0.1.
"""

from .cluster import EmulatedRing
from .node import EmulatedNode
from .transport import OversizedDatagramError, PortPair, UdpTransport

__all__ = [
    "EmulatedRing",
    "EmulatedNode",
    "UdpTransport",
    "PortPair",
    "OversizedDatagramError",
]
