"""Spawn and drive an emulated ring of real-socket nodes."""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..core import DataMessage, ProtocolConfig, Ring, Service
from ..obs.registry import MetricsRegistry
from ..wire.capture import CaptureWriter
from .node import EmulatedNode
from .transport import SendLossRule, UdpTransport


class EmulatedRing:
    """N threaded nodes on localhost UDP; context-manager friendly."""

    def __init__(
        self,
        n_nodes: int = 4,
        config: Optional[ProtocolConfig] = None,
        loss_rule: Optional[SendLossRule] = None,
        capture: Optional[CaptureWriter] = None,
    ) -> None:
        config = config or ProtocolConfig()
        pids = list(range(n_nodes))
        self.ring = Ring.of(pids)
        transports = {pid: UdpTransport(pid) for pid in pids}
        port_map = {pid: t.ports for pid, t in transports.items()}
        capture_t0 = time.monotonic()
        for transport in transports.values():
            transport.set_peers(port_map)
            if loss_rule is not None:
                transport.set_loss_rule(loss_rule)
            if capture is not None:
                # One shared writer, one shared epoch: records from all
                # nodes interleave on a common send-side clock.
                transport.set_capture(capture, capture_t0)
        self.nodes: Dict[int, EmulatedNode] = {
            pid: EmulatedNode(pid, self.ring, config, transports[pid])
            for pid in pids
        }
        #: Shared monotonic epoch for captures and traces.
        self.t0 = capture_t0
        self.metrics = MetricsRegistry()
        self._register_metrics()
        #: Lifecycle tracer, if attached (see :meth:`attach_tracer`).
        self.tracer = None
        self._started = False

    def _register_metrics(self) -> None:
        """Bind every node's live counters into the unified registry."""
        metrics = self.metrics
        for pid, node in self.nodes.items():
            node.transport.register_metrics(metrics, node=pid)
            metrics.bind("emulation.node.tokens_resent", node,
                         "tokens_resent", node=pid)
            stats = node.participant.stats
            for name in (
                "tokens_handled", "messages_initiated", "data_received",
                "delivered", "retransmissions_sent",
            ):
                metrics.bind("core.participant." + name, stats, name,
                             node=pid)

    def attach_tracer(self, label: str = ""):
        """Attach a lifecycle tracer (wall clock); call before start().

        Timestamps share the capture epoch, so a trace lines up with an
        ``.rcap`` capture of the same run.  Node threads stamp records
        concurrently; each stamp is one GIL-atomic bytearray extend, so
        the stream is safe — just not globally time-sorted across nodes.
        """
        from ..obs.lifecycle import emulation_tracer

        if self.tracer is not None:
            raise RuntimeError("tracer already attached")
        if self._started:
            raise RuntimeError("attach the tracer before start()")
        self.tracer = emulation_tracer(self, self.t0, label=label)
        return self.tracer

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "EmulatedRing":
        if self._started:
            raise RuntimeError("ring already started")
        self._started = True
        self.nodes[self.ring.leader].inject_first_token()
        for node in self.nodes.values():
            node.start()
        return self

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()
        for node in self.nodes.values():
            node.join(timeout=2.0)

    def __enter__(self) -> "EmulatedRing":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- workload --------------------------------------------------------------

    def submit(self, pid: int, payload: Any,
               service: Service = Service.AGREED) -> None:
        self.nodes[pid].submit(payload, service)

    def collect_deliveries(
        self,
        expected_per_node: int,
        timeout_s: float = 10.0,
    ) -> Dict[int, List[DataMessage]]:
        """Wait until every node delivered ``expected_per_node`` messages."""
        collected: Dict[int, List[DataMessage]] = {
            pid: [] for pid in self.nodes
        }
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            progress = False
            for pid, node in self.nodes.items():
                fresh = node.drain_delivered()
                if fresh:
                    collected[pid].extend(fresh)
                    progress = True
            if all(len(v) >= expected_per_node for v in collected.values()):
                return collected
            if not progress:
                time.sleep(0.002)
        counts = {pid: len(v) for pid, v in collected.items()}
        raise TimeoutError(
            "nodes did not deliver %d messages in %.1fs: %r"
            % (expected_per_node, timeout_s, counts)
        )

    # -- diagnostics -----------------------------------------------------------

    def drop_report(self) -> Dict[int, Dict[str, int]]:
        """Per-node receive-side drop counters from the wire boundary."""
        return {
            pid: {
                "malformed": node.transport.drops_malformed,
                "oversize": node.transport.drops_oversize,
                "received": node.transport.datagrams_received,
            }
            for pid, node in self.nodes.items()
        }
