"""A threaded node running the sans-IO participant over real sockets.

One thread per node, mirroring the paper's single-threaded daemon: the
loop reads the two sockets with the protocol's token/data priority
rules, executes the participant's actions in order (including sending
the token *before* the post-token multicasts — real acceleration over a
real network stack), and retransmits the token on a wall-clock timer.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, List, Optional

from ..core import (
    DataMessage,
    Deliver,
    Discard,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
    initial_token,
)
from .transport import UdpTransport


class EmulatedNode(threading.Thread):
    """One participant on real UDP sockets, in its own thread."""

    #: Socket poll granularity; bounds timer latency, not throughput.
    POLL_INTERVAL_S = 0.001

    def __init__(
        self,
        pid: int,
        ring: Ring,
        config: ProtocolConfig,
        transport: UdpTransport,
    ) -> None:
        super().__init__(name="emu-node-%d" % pid, daemon=True)
        self.pid = pid
        self.ring = ring
        self.config = config
        self.transport = transport
        # Outgoing data datagrams carry the configuration id on the wire.
        transport.ring_id = ring.ring_id
        self.participant = Participant(pid, ring, config)
        #: Thread-safe application queues.
        self._submissions: "queue.Queue[Tuple[Any, Service]]" = queue.Queue()
        self.delivered: "queue.Queue[DataMessage]" = queue.Queue()
        self._stop_event = threading.Event()
        self._pending_tokens: List[Token] = []
        self._pending_data: List[DataMessage] = []
        self._token_sent_at: Optional[float] = None
        self._token_resends = 0
        self.tokens_resent = 0
        # Lifecycle-trace hooks (repro.obs.lifecycle), None when no
        # tracer is attached — same contract as SimNode.
        self._trace_send = None
        self._trace_delivery = None
        self._trace_coalesce = None

    def set_trace_hooks(self, send=None, delivery=None,
                        coalesce=None) -> None:
        """Install lifecycle-trace driver hooks (attach before start()).

        Same contract as ``SimNode.set_trace_hooks``; ``delivery``
        receives raw ``time.monotonic()`` readings (the tracer holds
        the epoch).
        """
        self._trace_send = send
        self._trace_delivery = delivery
        self._trace_coalesce = coalesce

    # -- application API (any thread) -------------------------------------

    def submit(self, payload: Any, service: Service = Service.AGREED) -> None:
        self._submissions.put((payload, service))

    def stop(self) -> None:
        self._stop_event.set()

    def drain_delivered(self) -> List[DataMessage]:
        out = []
        while True:
            try:
                out.append(self.delivered.get_nowait())
            except queue.Empty:
                return out

    def inject_first_token(self) -> None:
        """Leader only: start the ring."""
        self._pending_tokens.append(initial_token(self.ring.ring_id))

    # -- the node loop -------------------------------------------------------

    def run(self) -> None:
        try:
            while not self._stop_event.is_set():
                self._drain_submissions()
                self._poll_network()
                self._process_one()
                self._maybe_retransmit_token()
        finally:
            self.transport.close()

    def _drain_submissions(self) -> None:
        while True:
            try:
                payload, service = self._submissions.get_nowait()
            except queue.Empty:
                return
            self.participant.submit(payload, service)

    def _poll_network(self) -> None:
        # Block briefly only when there is nothing at all to do.
        idle = not self._pending_tokens and not self._pending_data
        timeout = self.POLL_INTERVAL_S if idle else 0.0
        data, tokens = self.transport.poll(timeout)
        self._pending_data.extend(data)
        self._pending_tokens.extend(tokens)

    def _process_one(self) -> None:
        participant = self.participant
        token_pending = bool(self._pending_tokens)
        data_pending = bool(self._pending_data)
        if not token_pending and not data_pending:
            return
        take_token = token_pending and (
            participant.token_has_priority or not data_pending
        )
        if take_token:
            token = self._pending_tokens.pop(0)
            self._execute(participant.on_token(token))
        else:
            message = self._pending_data.pop(0)
            self._execute(participant.on_data(message))

    def _execute(self, actions) -> None:
        # With coalescing configured, consecutive SendData actions are
        # batched and flushed as jumbo datagrams; the batch also flushes
        # before any other action so the token keeps its place after the
        # pre-token sends (that ordering IS the acceleration).
        jumbo_cap = self.config.jumbo_datagram_bytes
        trace_send = self._trace_send
        trace_delivery = self._trace_delivery
        if trace_delivery is not None:
            # The participant returned this batch at the current
            # instant: every Deliver in it was ordered (released) now.
            t_ordered = time.monotonic()
        batch: List[DataMessage] = []
        for action in actions:
            if isinstance(action, SendData):
                if jumbo_cap is None:
                    self.transport.send_data(action.message)
                    if trace_send is not None:
                        trace_send(action.message, action.retransmission,
                                   False)
                else:
                    batch.append(action.message)
                continue
            if batch:
                self._flush_batch(batch, jumbo_cap)
                batch = []
            if isinstance(action, SendToken):
                if action.dst == self.pid:
                    self._pending_tokens.append(action.token)
                else:
                    self.transport.send_token(action.token, action.dst)
                self._token_sent_at = time.monotonic()
                self._token_resends = 0
            elif isinstance(action, Deliver):
                self.delivered.put(action.message)
                if trace_delivery is not None:
                    trace_delivery(action.message, t_ordered, time.monotonic())
            elif isinstance(action, Discard):
                pass
        if batch:
            self._flush_batch(batch, jumbo_cap)

    def _flush_batch(self, batch: List[DataMessage], jumbo_cap: int) -> None:
        self.transport.send_data_batch(batch, jumbo_cap)
        trace_send = self._trace_send
        if trace_send is not None:
            coalesced = len(batch) > 1
            if coalesced and self._trace_coalesce is not None:
                self._trace_coalesce(batch)
            for message in batch:
                trace_send(message, False, coalesced)

    def _maybe_retransmit_token(self) -> None:
        participant = self.participant
        if self._token_sent_at is None or participant.last_token_sent is None:
            return
        if participant.progress_since_token_send():
            self._token_sent_at = None
            return
        timeout = self.config.token_retransmit_timeout_s
        if time.monotonic() - self._token_sent_at < timeout:
            return
        if self._token_resends >= self.config.token_retransmit_limit:
            return
        token = participant.last_token_sent
        dst = self.ring.successor(self.pid)
        if dst == self.pid:
            self._pending_tokens.append(token)
        else:
            self.transport.send_token(token, dst)
        self._token_sent_at = time.monotonic()
        self._token_resends += 1
        self.tokens_resent += 1
