"""EVSChecker: validate whole-run invariants across fault campaigns.

Wraps the per-axiom checkers of :mod:`repro.evs.semantics` into one
object that takes every process incarnation's app_log (a crashed node
that restarts contributes one log per incarnation — a restarted daemon
has total amnesia, so each incarnation is its own EVS process) and
returns *all* violations instead of stopping at the first.  This is
what the fault-injection campaign runner asserts after every scenario:

* agreed-order prefix consistency and the EVS equality guarantee
  (virtual synchrony) across continuing members,
* gap-free, duplicate-free delivery within regular configurations,
* transitional-configuration sandwich ordering,
* self-delivery: every message a continuously-live node submitted is
  eventually delivered back to it.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from .configuration import AppMessage
from .semantics import (
    Event,
    EVSViolation,
    check_agreed_gap_free,
    check_messages_within_configuration,
    check_no_duplicates,
    check_self_inclusion,
    check_seq_order_within_configuration,
    check_transitional_placement,
    check_transitional_sandwich,
    check_virtual_synchrony,
)

#: Logs are keyed by pid or by (pid, incarnation).
LogKey = Hashable

_PER_LOG_CHECKS = (
    check_messages_within_configuration,
    check_seq_order_within_configuration,
    check_transitional_placement,
    check_agreed_gap_free,
    check_transitional_sandwich,
    check_no_duplicates,
)


def _pid_of(key: LogKey) -> int:
    if isinstance(key, tuple):
        return key[0]
    return key  # type: ignore[return-value]


class EVSChecker:
    """Collects every EVS violation across a set of incarnation logs."""

    def __init__(self) -> None:
        self.violations: List[str] = []

    def _run(self, label: str, check, *args) -> None:
        try:
            check(*args)
        except EVSViolation as violation:
            self.violations.append("%s: %s" % (label, violation))

    def check_logs(
        self,
        logs: Dict[LogKey, Sequence[Event]],
        submitted: Optional[Dict[LogKey, Sequence[Any]]] = None,
    ) -> List[str]:
        """Validate all axioms; returns the accumulated violation list.

        ``submitted`` maps a log key to the payloads that incarnation
        submitted AND is required to have delivered to itself — pass it
        only for nodes that stayed up (and after the run has drained):
        EVS does not promise delivery to a process that crashed.
        """
        for key, log in logs.items():
            label = "log %r" % (key,)
            self._run(label, check_self_inclusion, log, _pid_of(key))
            for check in _PER_LOG_CHECKS:
                self._run(label, check, log)
        self._run("cross-log", check_virtual_synchrony, logs)
        if submitted:
            for key, payloads in submitted.items():
                self._run(
                    "log %r" % (key,),
                    self._check_self_delivery,
                    logs.get(key, ()),
                    payloads,
                )
        return self.violations

    @staticmethod
    def _check_self_delivery(
        log: Sequence[Event], payloads: Sequence[Any]
    ) -> None:
        delivered = {
            event.payload for event in log if isinstance(event, AppMessage)
        }
        missing = [p for p in payloads if p not in delivered]
        if missing:
            raise EVSViolation(
                "self-delivery violated: %d submitted message(s) never "
                "delivered back to the submitter, first: %r"
                % (len(missing), missing[0])
            )

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise EVSViolation(
                "%d EVS violation(s):\n%s"
                % (len(self.violations), "\n".join(self.violations))
            )
