"""Extended Virtual Synchrony layer: configurations and app-level events."""

from .configuration import (
    AppMessage,
    ConfigChange,
    Configuration,
    ConfigurationKind,
)
from .checker import EVSChecker
from .semantics import EVSViolation, check_all, check_virtual_synchrony

__all__ = [
    "Configuration", "ConfigurationKind", "ConfigChange", "AppMessage",
    "EVSViolation", "EVSChecker", "check_all", "check_virtual_synchrony",
]
