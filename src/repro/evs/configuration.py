"""Extended Virtual Synchrony configurations (Section II).

EVS defines delivery guarantees relative to a series of
*configurations*: sets of connected participants with unique
identifiers.  A **regular** configuration is an established ring; a
**transitional** configuration is the bridge EVS inserts during a
membership change — the subset of the old configuration's members that
continue together into the new one, in which messages that cannot get
the old configuration's full guarantees are delivered with weakened
(transitional) guarantees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class ConfigurationKind(enum.Enum):
    REGULAR = "regular"
    TRANSITIONAL = "transitional"


@dataclass(frozen=True)
class Configuration:
    """One configuration in the EVS sense."""

    kind: ConfigurationKind
    ring_id: int
    members: Tuple[int, ...]

    @classmethod
    def regular(cls, ring_id: int, members) -> "Configuration":
        return cls(ConfigurationKind.REGULAR, ring_id, tuple(sorted(members)))

    @classmethod
    def transitional(cls, ring_id: int, members) -> "Configuration":
        return cls(ConfigurationKind.TRANSITIONAL, ring_id, tuple(sorted(members)))

    @property
    def is_regular(self) -> bool:
        return self.kind is ConfigurationKind.REGULAR

    def __contains__(self, pid: int) -> bool:
        return pid in self.members

    def __repr__(self) -> str:
        return "Configuration(%s, ring=%d, members=%s)" % (
            self.kind.value, self.ring_id, list(self.members),
        )


@dataclass(frozen=True)
class ConfigChange:
    """Delivered to the application when the configuration changes."""

    configuration: Configuration


@dataclass(frozen=True)
class AppMessage:
    """An ordered message as the application sees it."""

    ring_id: int
    seq: int
    sender: int
    payload: object
    safe: bool
    #: True when delivered in a transitional configuration (weakened
    #: guarantees per EVS).
    transitional: bool = False
