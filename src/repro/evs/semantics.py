"""Executable EVS semantics: validate application event logs.

Tests hand each process's ``app_log`` (AppMessage / ConfigChange
sequence) to these checkers, which assert the Extended Virtual
Synchrony axioms the service model of Section II promises.  Keeping the
axioms in one place makes every membership test check ALL of them, not
just the one it was written for.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple, Union

from .configuration import AppMessage, ConfigChange, Configuration


class EVSViolation(AssertionError):
    """An EVS axiom does not hold for the supplied logs."""


Event = Union[AppMessage, ConfigChange]


def _segments(log: Sequence[Event]) -> List[Tuple[Configuration, List[AppMessage]]]:
    """Split a log into (configuration, messages delivered in it)."""
    segments: List[Tuple[Configuration, List[AppMessage]]] = []
    current: List[AppMessage] = []
    config: Configuration = None
    for event in log:
        if isinstance(event, ConfigChange):
            if config is not None:
                segments.append((config, current))
            config = event.configuration
            current = []
        else:
            if config is None:
                raise EVSViolation("message delivered before any configuration")
            current.append(event)
    if config is not None:
        segments.append((config, current))
    return segments


def check_self_inclusion(log: Sequence[Event], pid: int) -> None:
    """Every delivered configuration includes the process itself."""
    for config, _messages in _segments(log):
        if pid not in config:
            raise EVSViolation(
                "process %d delivered configuration %r it is not part of"
                % (pid, config)
            )


def check_messages_within_configuration(log: Sequence[Event]) -> None:
    """Messages are attributed to the configuration they belong to.

    A message delivered while configuration C is installed must carry
    C's ring id (recovered old-ring messages are delivered before the
    next regular configuration, under the old ring id).
    """
    for config, messages in _segments(log):
        for message in messages:
            if message.ring_id != config.ring_id:
                raise EVSViolation(
                    "message %r delivered under configuration %r"
                    % (message, config)
                )


def check_seq_order_within_configuration(log: Sequence[Event]) -> None:
    """Within one configuration, delivery follows increasing seq."""
    for config, messages in _segments(log):
        seqs = [m.seq for m in messages]
        if seqs != sorted(seqs):
            raise EVSViolation(
                "out-of-seq delivery in configuration %r: %r" % (config, seqs)
            )


def check_transitional_placement(log: Sequence[Event]) -> None:
    """Transitional messages only appear in transitional configurations."""
    for config, messages in _segments(log):
        for message in messages:
            if message.transitional and config.is_regular:
                raise EVSViolation(
                    "transitional-flagged message %r in regular config %r"
                    % (message, config)
                )


def check_virtual_synchrony(
    logs: Dict[int, Sequence[Event]],
) -> None:
    """Processes that share a configuration deliver the same messages
    in it, in the same order (the heart of virtual synchrony).

    A configuration a process has already LEFT (a closed segment) must
    match other processes' closed segments exactly; the configuration a
    process is still in (its final, open segment) only needs to be
    prefix-consistent — the run may have been snapshotted mid-flight.
    """
    # Per configuration: every process's view of it, its open/closed
    # status, and the configuration it moved to NEXT (None while open).
    views: Dict[Tuple, Dict[int, Tuple[List[Tuple[int, object]], Tuple]]] = defaultdict(dict)
    for pid, log in logs.items():
        segments = _segments(log)
        for index, (config, messages) in enumerate(segments):
            key = (config.kind, config.ring_id, config.members)
            view = [(m.seq, m.payload) for m in messages]
            if index == len(segments) - 1:
                next_key = None  # still open
            else:
                next_config = segments[index + 1][0]
                next_key = (next_config.kind, next_config.ring_id,
                            next_config.members)
            views[key][pid] = (view, next_key)
    for key, per_pid in views.items():
        entries = sorted(per_pid.items())
        # 1. ALL views of one configuration are prefix-related: the
        #    total order is shared even by processes that part ways.
        ordered = sorted((view for view, _next in per_pid.values()), key=len)
        for a, b in zip(ordered, ordered[1:]):
            if b[: len(a)] != a:
                raise EVSViolation(
                    "virtual synchrony violated in configuration %r: "
                    "views are not prefix-related" % (key,)
                )
        # 2. Processes that CONTINUE TOGETHER (same closed segment, same
        #    next configuration) must have delivered exactly the same
        #    messages — the EVS equality guarantee proper.
        by_next: Dict[Tuple, List[List]] = defaultdict(list)
        for _pid, (view, next_key) in entries:
            if next_key is not None:
                by_next[next_key].append(view)
        for next_key, group in by_next.items():
            for view in group[1:]:
                if view != group[0]:
                    raise EVSViolation(
                        "virtual synchrony violated in configuration %r: "
                        "processes moving together to %r delivered "
                        "different sets" % (key, next_key)
                    )


def check_agreed_gap_free(log: Sequence[Event]) -> None:
    """Regular-configuration delivery is a gap-free prefix from seq 1.

    Every ring starts its sequence space at 1, and agreed delivery only
    advances contiguously; recovered old-ring messages that cannot be
    delivered gap-free are demoted to the transitional configuration.
    A hole inside a regular segment therefore means ordered messages
    were silently skipped.
    """
    for config, messages in _segments(log):
        if not config.is_regular or not messages:
            continue
        seqs = [m.seq for m in messages]
        expected = list(range(1, len(seqs) + 1))
        if seqs != expected:
            raise EVSViolation(
                "regular configuration %r delivered non-contiguous seqs %r"
                % (config, seqs)
            )


def check_transitional_sandwich(log: Sequence[Event]) -> None:
    """Transitional configurations sit between the right regulars.

    A transitional configuration must (a) directly follow a regular
    configuration with the SAME ring id whose membership contains the
    transitional members, and (b) be directly followed by a regular
    configuration that also contains them — the EVS sandwich that scopes
    the weakened guarantees.  The first configuration of a log must be
    regular (processes boot into a singleton regular configuration).
    """
    segments = _segments(log)
    if not segments:
        return
    first_config = segments[0][0]
    if not first_config.is_regular:
        raise EVSViolation(
            "log begins with non-regular configuration %r" % (first_config,)
        )
    for index, (config, _messages) in enumerate(segments):
        if config.is_regular:
            continue
        if index == 0:
            raise EVSViolation(
                "transitional configuration %r with no preceding regular"
                % (config,)
            )
        previous = segments[index - 1][0]
        if not previous.is_regular:
            raise EVSViolation(
                "transitional configuration %r follows non-regular %r"
                % (config, previous)
            )
        if previous.ring_id != config.ring_id:
            raise EVSViolation(
                "transitional configuration %r does not share the preceding "
                "regular configuration's ring id (%r)" % (config, previous)
            )
        if not set(config.members) <= set(previous.members):
            raise EVSViolation(
                "transitional members %r not a subset of old regular %r"
                % (config.members, previous.members)
            )
        if index + 1 >= len(segments):
            raise EVSViolation(
                "transitional configuration %r is not followed by a regular "
                "configuration" % (config,)
            )
        following = segments[index + 1][0]
        if not following.is_regular:
            raise EVSViolation(
                "transitional configuration %r followed by non-regular %r"
                % (config, following)
            )
        if not set(config.members) <= set(following.members):
            raise EVSViolation(
                "transitional members %r not a subset of new regular %r"
                % (config.members, following.members)
            )


def check_no_duplicates(log: Sequence[Event]) -> None:
    """No (ring_id, seq) is ever delivered twice."""
    seen = set()
    for event in log:
        if isinstance(event, AppMessage):
            key = (event.ring_id, event.seq)
            if key in seen:
                raise EVSViolation("duplicate delivery of %r" % (key,))
            seen.add(key)


def check_all(logs: Dict[int, Sequence[Event]]) -> None:
    """Run every per-log axiom plus cross-log virtual synchrony."""
    for pid, log in logs.items():
        check_self_inclusion(log, pid)
        check_messages_within_configuration(log)
        check_seq_order_within_configuration(log)
        check_transitional_placement(log)
        check_agreed_gap_free(log)
        check_transitional_sandwich(log)
        check_no_duplicates(log)
    check_virtual_synchrony(logs)
