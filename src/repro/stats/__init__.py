"""Measurement containers and report helpers."""

from .series import Figure, Series, SeriesPoint, improvement

__all__ = ["Figure", "Series", "SeriesPoint", "improvement"]
