"""Throughput-vs-latency series: the data structure behind every figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SeriesPoint:
    """One measured point on a latency/throughput curve."""

    offered_mbps: float
    achieved_mbps: float
    latency_us: float
    saturated: bool = False
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """One labelled curve (e.g. 'Spread / original')."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, point: SeriesPoint) -> None:
        self.points.append(point)

    def stable_points(self) -> List[SeriesPoint]:
        return [p for p in self.points if not p.saturated]

    def max_stable_throughput(self) -> float:
        """Highest achieved throughput among non-saturated points."""
        stable = self.stable_points()
        return max((p.achieved_mbps for p in stable), default=0.0)

    def max_achieved_throughput(self) -> float:
        return max((p.achieved_mbps for p in self.points), default=0.0)

    def max_throughput_under_latency(self, latency_us: float) -> float:
        """The paper's framing: best throughput with latency <= bound."""
        eligible = [
            p.achieved_mbps
            for p in self.points
            if not p.saturated and p.latency_us <= latency_us
        ]
        return max(eligible, default=0.0)

    def latency_at(self, offered_mbps: float) -> Optional[float]:
        for point in self.points:
            if abs(point.offered_mbps - offered_mbps) < 1e-6:
                return point.latency_us
        return None

    def interpolated_latency(self, throughput_mbps: float) -> Optional[float]:
        """Linear interpolation of latency at an achieved throughput."""
        stable = sorted(self.stable_points(), key=lambda p: p.achieved_mbps)
        if not stable:
            return None
        if throughput_mbps <= stable[0].achieved_mbps:
            return stable[0].latency_us
        for lo, hi in zip(stable, stable[1:]):
            if lo.achieved_mbps <= throughput_mbps <= hi.achieved_mbps:
                span = hi.achieved_mbps - lo.achieved_mbps
                if span <= 0:
                    return lo.latency_us
                frac = (throughput_mbps - lo.achieved_mbps) / span
                return lo.latency_us + frac * (hi.latency_us - lo.latency_us)
        return None  # beyond the measured range


class Figure:
    """A set of labelled curves — one reproduced paper figure."""

    def __init__(self, figure_id: str, title: str) -> None:
        self.figure_id = figure_id
        self.title = title
        self.series: Dict[str, Series] = {}

    def series_for(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def labels(self) -> List[str]:
        return sorted(self.series)

    # -- rendering --------------------------------------------------------

    def to_markdown(self) -> str:
        lines = ["## %s — %s" % (self.figure_id, self.title), ""]
        header = "| offered (Mbps) | " + " | ".join(self.labels()) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(self.labels()) + 1))
        offered_values = sorted(
            {p.offered_mbps for s in self.series.values() for p in s.points}
        )
        for offered in offered_values:
            cells = []
            for label in self.labels():
                latency = self.series[label].latency_at(offered)
                point = next(
                    (p for p in self.series[label].points
                     if abs(p.offered_mbps - offered) < 1e-6),
                    None,
                )
                if point is None:
                    cells.append("-")
                elif point.saturated:
                    cells.append("SAT")
                else:
                    cells.append("%.0f us" % point.latency_us)
            lines.append(
                "| %.0f | " % offered + " | ".join(cells) + " |"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        rows = ["label,offered_mbps,achieved_mbps,latency_us,saturated"]
        for label in self.labels():
            for point in self.series[label].points:
                rows.append(
                    "%s,%.1f,%.1f,%.1f,%s"
                    % (label, point.offered_mbps, point.achieved_mbps,
                       point.latency_us, point.saturated)
                )
        return "\n".join(rows)


def improvement(baseline: float, improved: float) -> float:
    """Relative improvement, e.g. 0.45 means 45% better (lower latency
    or higher throughput depending on orientation handled by caller)."""
    if baseline == 0:
        return 0.0
    return (improved - baseline) / baseline
