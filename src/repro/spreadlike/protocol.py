"""Daemon<->client session protocol and ring-level control payloads.

Spread's client-daemon architecture (Section I of the paper) separates
the middleware from applications: clients connect to a local daemon,
join named groups, and multicast to any groups (open-group semantics —
senders need not be members).  Group joins/leaves travel through the
same totally ordered stream as data, so every daemon applies membership
changes at the same point in the order and all clients see mutually
consistent group views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..core import Service

#: Spread limits group names; we keep the same spirit.
MAX_GROUP_NAME = 32


class SpreadError(Exception):
    """Session/group usage errors."""


@dataclass(frozen=True)
class ClientId:
    """A connected client: private name scoped by its daemon."""

    daemon: int
    name: str

    def __str__(self) -> str:
        return "#%s#%d" % (self.name, self.daemon)


# --- ring-level control payloads (ordered with data) -----------------------

@dataclass(frozen=True)
class GroupJoin:
    group: str
    client: ClientId


@dataclass(frozen=True)
class GroupLeave:
    group: str
    client: ClientId


@dataclass(frozen=True)
class ClientDisconnect:
    client: ClientId


@dataclass(frozen=True)
class PrivateCast:
    """A point-to-point message, still totally ordered with everything
    else (Spread routes private messages through the daemons, so they
    respect the same order as group traffic)."""

    dst: "ClientId"
    sender: "ClientId"
    payload: Any


@dataclass(frozen=True)
class GroupCast:
    """A multi-group multicast: one message, ordered once, delivered to
    every member of every listed group exactly once."""

    groups: Tuple[str, ...]
    sender: ClientId
    payload: Any


# --- events the client receives --------------------------------------------

@dataclass(frozen=True)
class GroupMessage:
    """An ordered data message delivered to a group member."""

    groups: Tuple[str, ...]
    sender: ClientId
    payload: Any
    service: Service
    seq: int


@dataclass(frozen=True)
class PrivateMessage:
    """An ordered point-to-point message delivered to one client."""

    sender: ClientId
    payload: Any
    service: Service
    seq: int


@dataclass(frozen=True)
class MembershipNotice:
    """Delivered to group members when the group's membership changes."""

    group: str
    members: Tuple[ClientId, ...]
    joined: Tuple[ClientId, ...] = ()
    left: Tuple[ClientId, ...] = ()
    seq: int = 0


def validate_group_name(group: str) -> None:
    if not group:
        raise SpreadError("empty group name")
    if len(group) > MAX_GROUP_NAME:
        raise SpreadError(
            "group name %r exceeds %d characters" % (group, MAX_GROUP_NAME)
        )
    if any(ch.isspace() for ch in group):
        raise SpreadError("group name %r contains whitespace" % group)
