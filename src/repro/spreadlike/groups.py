"""Replicated group-membership table.

Every daemon applies the ordered stream of GroupJoin/GroupLeave/
ClientDisconnect events to its own copy of this table, so the tables are
identical replicas by construction (state-machine replication over the
total order — the core use case the paper's introduction motivates).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .protocol import ClientId


class GroupTable:
    """group name -> ordered member list (join order, Spread-style)."""

    def __init__(self) -> None:
        self._groups: Dict[str, List[ClientId]] = {}

    def members(self, group: str) -> Tuple[ClientId, ...]:
        return tuple(self._groups.get(group, ()))

    def groups(self) -> Tuple[str, ...]:
        return tuple(sorted(self._groups))

    def groups_of(self, client: ClientId) -> Tuple[str, ...]:
        return tuple(
            sorted(g for g, members in self._groups.items() if client in members)
        )

    def is_member(self, group: str, client: ClientId) -> bool:
        return client in self._groups.get(group, ())

    def join(self, group: str, client: ClientId) -> bool:
        """Apply a join; returns False if already a member (idempotent)."""
        members = self._groups.setdefault(group, [])
        if client in members:
            return False
        members.append(client)
        return True

    def leave(self, group: str, client: ClientId) -> bool:
        """Apply a leave; returns False if not a member."""
        members = self._groups.get(group)
        if members is None or client not in members:
            return False
        members.remove(client)
        if not members:
            del self._groups[group]
        return True

    def disconnect(self, client: ClientId) -> Tuple[str, ...]:
        """Remove the client everywhere; returns the groups it left."""
        left = []
        for group in list(self._groups):
            if self.leave(group, client):
                left.append(group)
        return tuple(sorted(left))

    def snapshot(self) -> Dict[str, Tuple[ClientId, ...]]:
        return {g: tuple(m) for g, m in self._groups.items()}
