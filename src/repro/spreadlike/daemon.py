"""The Spread-like daemon: sessions, group routing, ordered fan-out.

A daemon sits between local clients and the ring.  Client operations
(join, leave, multicast, disconnect) are injected into the totally
ordered stream; on delivery, every daemon applies them to its replicated
group table and fans messages out to the local clients that are members
of the target groups *at that point of the total order* — which is what
makes group views and message sets mutually consistent everywhere.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List

from ..core import DataMessage, Service
from .groups import GroupTable
from .protocol import (
    ClientDisconnect,
    ClientId,
    GroupCast,
    GroupJoin,
    GroupLeave,
    GroupMessage,
    MembershipNotice,
    PrivateCast,
    PrivateMessage,
    SpreadError,
    validate_group_name,
)

#: A daemon submits ring payloads through this callback
#: (payload, service) -> None; the harness wires it to the participant.
RingSubmit = Callable[[Any, Service], None]


class ClientSession:
    """Server-side state of one connected client."""

    def __init__(self, client_id: ClientId) -> None:
        self.client_id = client_id
        self.inbox: Deque[Any] = deque()
        self.connected = True

    def enqueue(self, event: Any) -> None:
        if self.connected:
            self.inbox.append(event)

    def drain(self) -> List[Any]:
        events = list(self.inbox)
        self.inbox.clear()
        return events


class SpreadDaemon:
    """One daemon: local sessions + a replica of the group table."""

    def __init__(self, pid: int, submit: RingSubmit) -> None:
        self.pid = pid
        self._submit = submit
        self.groups = GroupTable()
        self.sessions: Dict[str, ClientSession] = {}
        self.messages_routed = 0
        self.notices_sent = 0

    # -- session management ----------------------------------------------

    def connect(self, name: str) -> ClientSession:
        if name in self.sessions and self.sessions[name].connected:
            raise SpreadError(
                "client name %r already connected to daemon %d" % (name, self.pid)
            )
        session = ClientSession(ClientId(self.pid, name))
        self.sessions[name] = session
        return session

    def disconnect(self, name: str) -> None:
        session = self._session(name)
        session.connected = False
        self._submit(ClientDisconnect(session.client_id), Service.AGREED)

    def _session(self, name: str) -> ClientSession:
        session = self.sessions.get(name)
        if session is None:
            raise SpreadError("no client %r at daemon %d" % (name, self.pid))
        return session

    # -- client operations (injected into the ordered stream) ---------------

    def join(self, name: str, group: str) -> None:
        validate_group_name(group)
        session = self._session(name)
        self._submit(GroupJoin(group, session.client_id), Service.AGREED)

    def leave(self, name: str, group: str) -> None:
        validate_group_name(group)
        session = self._session(name)
        self._submit(GroupLeave(group, session.client_id), Service.AGREED)

    def multicast(
        self,
        name: str,
        groups,
        payload: Any,
        service: Service = Service.AGREED,
    ) -> None:
        """Multi-group multicast: open-group semantics, one ordered send."""
        if isinstance(groups, str):
            groups = (groups,)
        groups = tuple(groups)
        if not groups:
            raise SpreadError("multicast needs at least one target group")
        for group in groups:
            validate_group_name(group)
        session = self._session(name)
        self._submit(GroupCast(groups, session.client_id, payload), service)

    def send_private(
        self,
        name: str,
        dst: ClientId,
        payload: Any,
        service: Service = Service.AGREED,
    ) -> None:
        """Point-to-point message, ordered with all other traffic."""
        session = self._session(name)
        self._submit(PrivateCast(dst, session.client_id, payload), service)

    # -- ordered delivery from the ring ---------------------------------------

    def on_ordered(self, message: DataMessage) -> None:
        """Apply one totally ordered event; called by the ring driver."""
        payload = message.payload
        if isinstance(payload, GroupCast):
            self._route_cast(payload, message)
        elif isinstance(payload, PrivateCast):
            self._route_private(payload, message)
        elif isinstance(payload, GroupJoin):
            if self.groups.join(payload.group, payload.client):
                self._notify_membership(
                    payload.group, joined=(payload.client,), seq=message.seq
                )
        elif isinstance(payload, GroupLeave):
            if self.groups.leave(payload.group, payload.client):
                self._notify_membership(
                    payload.group, left=(payload.client,), seq=message.seq
                )
        elif isinstance(payload, ClientDisconnect):
            for group in self.groups.disconnect(payload.client):
                self._notify_membership(
                    group, left=(payload.client,), seq=message.seq
                )
        else:
            raise SpreadError("unknown ring payload %r" % (payload,))

    def _route_cast(self, cast: GroupCast, message: DataMessage) -> None:
        """Deliver to local members of the target groups, once per client."""
        target_names = []
        seen = set()
        for group in cast.groups:
            for client in self.groups.members(group):
                if client.daemon != self.pid or client in seen:
                    continue
                seen.add(client)
                target_names.append(client.name)
        event = GroupMessage(
            groups=cast.groups,
            sender=cast.sender,
            payload=cast.payload,
            service=message.service,
            seq=message.seq,
        )
        for name in target_names:
            session = self.sessions.get(name)
            if session is not None:
                session.enqueue(event)
                self.messages_routed += 1

    def _route_private(self, cast: PrivateCast, message: DataMessage) -> None:
        if cast.dst.daemon != self.pid:
            return
        session = self.sessions.get(cast.dst.name)
        if session is not None:
            session.enqueue(
                PrivateMessage(
                    sender=cast.sender,
                    payload=cast.payload,
                    service=message.service,
                    seq=message.seq,
                )
            )
            self.messages_routed += 1

    def _notify_membership(self, group: str, joined=(), left=(), seq: int = 0) -> None:
        members = self.groups.members(group)
        notice = MembershipNotice(
            group=group, members=members, joined=tuple(joined),
            left=tuple(left), seq=seq,
        )
        recipients = set(members) | set(left)
        for client in recipients:
            if client.daemon != self.pid:
                continue
            session = self.sessions.get(client.name)
            if session is not None:
                session.enqueue(notice)
                self.notices_sent += 1
