"""A Spread-like group-communication layer on top of the ordering core.

Reproduces the architecture the paper's production implementation lives
in: client-daemon separation, named groups, open-group semantics
(senders need not be members), multi-group multicast with ordering
across groups, and membership notices ordered with data.
"""

from .client import SpreadClient
from .cluster import SpreadCluster
from .daemon import SpreadDaemon
from .dynamic import DynamicSpreadCluster, DynamicSpreadDaemon
from .groups import GroupTable
from .protocol import (
    ClientId,
    GroupCast,
    GroupJoin,
    GroupLeave,
    GroupMessage,
    MembershipNotice,
    PrivateCast,
    PrivateMessage,
    SpreadError,
)

__all__ = [
    "SpreadCluster", "SpreadDaemon", "SpreadClient", "GroupTable",
    "DynamicSpreadCluster", "DynamicSpreadDaemon",
    "ClientId", "GroupMessage", "MembershipNotice", "SpreadError",
    "GroupJoin", "GroupLeave", "GroupCast", "PrivateCast", "PrivateMessage",
]
