"""An in-process Spread-like deployment: N daemons on a ring + clients.

The transport is the deterministic loopback harness; the point of this
module is the daemon/group layer itself (the paper's production system
architecture), not wire-level performance — that is measured by
:mod:`repro.sim` with the ``SPREAD`` cost profile.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import DataMessage, ProtocolConfig, Service
from ..harness import LoopbackRing
from .client import SpreadClient
from .daemon import SpreadDaemon


class SpreadCluster:
    """N daemons on one ring, with client sessions."""

    def __init__(
        self,
        n_daemons: int = 4,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        pids = list(range(n_daemons))
        self.ring = LoopbackRing(pids, config, on_deliver=self._on_deliver)
        self.daemons: Dict[int, SpreadDaemon] = {}
        for pid in pids:
            self.daemons[pid] = SpreadDaemon(pid, self._make_submit(pid))

    def _make_submit(self, pid: int):
        def submit(payload, service: Service) -> None:
            self.ring.submit(pid, payload, service)

        return submit

    def _on_deliver(self, pid: int, message: DataMessage) -> None:
        self.daemons[pid].on_ordered(message)

    def client(self, name: str, daemon: int = 0) -> SpreadClient:
        """Connect a new client to a daemon."""
        return SpreadClient(self.daemons[daemon], name)

    def flush(self, max_steps: int = 1_000_000) -> None:
        """Run the ring until all submitted operations are ordered."""
        self.ring.run(max_steps=max_steps)

    def group_view(self, daemon: int, group: str):
        return self.daemons[daemon].groups.members(group)
