"""Spread daemons over the membership stack: surviving daemon failures.

The static :class:`~repro.spreadlike.cluster.SpreadCluster` runs on a
fixed ring; this variant runs each daemon on an
:class:`~repro.membership.EVSProcess` (via the EVS network harness), so
daemon crashes, partitions and merges flow through Totem membership and
EVS delivery — and the group layer reacts the way Spread does: when a
daemon leaves the configuration, every group sheds that daemon's
clients at the same point of the total order on every surviving daemon,
with membership notices delivered to the remaining members.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import ProtocolConfig, Service
from ..evs import AppMessage, ConfigChange
from ..harness.evsnet import EVSNetwork
from ..membership import MembershipTimeouts
from .client import SpreadClient
from .daemon import SpreadDaemon
from .protocol import ClientId


class DynamicSpreadDaemon(SpreadDaemon):
    """A daemon that also reacts to configuration changes."""

    def __init__(self, pid: int, submit) -> None:
        super().__init__(pid, submit)
        self._current_members: Optional[tuple] = None

    def on_config_change(self, change: ConfigChange) -> None:
        """Apply an EVS configuration event from the ordered stream."""
        config = change.configuration
        if not config.is_regular:
            return  # transitional configs need no group action here
        previous = self._current_members
        self._current_members = config.members
        if previous is None:
            return
        departed_daemons = set(previous) - set(config.members)
        if not departed_daemons:
            return
        # Every surviving daemon sees the same config change at the same
        # point in the order, so these removals are replica-consistent.
        for client in self._clients_of(departed_daemons):
            for group in self.groups.disconnect(client):
                self._notify_membership(group, left=(client,))

    def _clients_of(self, daemons) -> List[ClientId]:
        found = []
        for group, members in self.groups.snapshot().items():
            for client in members:
                if client.daemon in daemons and client not in found:
                    found.append(client)
        return found


class DynamicSpreadCluster:
    """Spread daemons on a partitionable membership-running network."""

    def __init__(
        self,
        n_daemons: int = 4,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
    ) -> None:
        pids = list(range(n_daemons))
        self.net = EVSNetwork(pids, config, timeouts)
        self.daemons: Dict[int, DynamicSpreadDaemon] = {}
        for pid in pids:
            self.daemons[pid] = DynamicSpreadDaemon(pid, self._make_submit(pid))
            self._attach_log_pump(pid)
        self.net.run_until_converged()

    def _make_submit(self, pid: int):
        def submit(payload, service: Service) -> None:
            self.net.submit(pid, payload, service)

        return submit

    def _attach_log_pump(self, pid: int) -> None:
        # Each daemon consumes its process's app log incrementally.
        self._log_positions = getattr(self, "_log_positions", {})
        self._log_positions[pid] = 0

    def _pump_logs(self) -> None:
        for pid, daemon in self.daemons.items():
            if pid in self.net.crashed:
                continue
            log = self.net.processes[pid].app_log
            position = self._log_positions[pid]
            for event in log[position:]:
                if isinstance(event, AppMessage):
                    # Re-wrap into the shape the daemon expects.
                    from ..core.messages import DataMessage

                    daemon.on_ordered(
                        DataMessage(
                            seq=event.seq,
                            pid=event.sender,
                            round=0,
                            service=Service.SAFE if event.safe else Service.AGREED,
                            payload=event.payload,
                        )
                    )
                elif isinstance(event, ConfigChange):
                    daemon.on_config_change(event)
            self._log_positions[pid] = len(log)

    # -- public API ---------------------------------------------------------

    def client(self, name: str, daemon: int = 0) -> SpreadClient:
        return SpreadClient(self.daemons[daemon], name)

    def flush(self, steps: int = 400) -> None:
        """Advance the network and apply ordered events to the daemons."""
        self.net.run_quiet(steps)
        self._pump_logs()

    def crash_daemon(self, pid: int) -> None:
        """Fail a daemon; membership reforms and groups shed its clients."""
        self.net.crash(pid)
        self.net.run_until_converged()
        self._pump_logs()

    def partition(self, *groups) -> None:
        self.net.set_partition(*groups)
        self.net.run_until_converged()
        self._pump_logs()

    def heal(self) -> None:
        self.net.heal()
        self.net.run_until_converged()
        self._pump_logs()

    def group_view(self, daemon: int, group: str):
        return self.daemons[daemon].groups.members(group)
