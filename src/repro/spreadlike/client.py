"""Client-side API: the application's view of the Spread-like service."""

from __future__ import annotations

from typing import Any, List

from ..core import Service
from .daemon import ClientSession, SpreadDaemon
from .protocol import (
    ClientId,
    GroupMessage,
    PrivateMessage,
    SpreadError,
)


class SpreadClient:
    """A connected application handle.

    Mirrors the shape of the Spread C/Java client API: connect to a
    (local) daemon, join/leave groups, multicast to one or more groups,
    and receive an ordered stream of messages and membership notices.
    """

    def __init__(self, daemon: SpreadDaemon, name: str) -> None:
        self._daemon = daemon
        self._name = name
        self._session: ClientSession = daemon.connect(name)

    @property
    def client_id(self) -> ClientId:
        return self._session.client_id

    @property
    def connected(self) -> bool:
        return self._session.connected

    def join(self, group: str) -> None:
        self._require_connected()
        self._daemon.join(self._name, group)

    def leave(self, group: str) -> None:
        self._require_connected()
        self._daemon.leave(self._name, group)

    def multicast(
        self,
        groups,
        payload: Any,
        service: Service = Service.AGREED,
    ) -> None:
        self._require_connected()
        self._daemon.multicast(self._name, groups, payload, service)

    def send_private(
        self,
        dst: ClientId,
        payload: Any,
        service: Service = Service.AGREED,
    ) -> None:
        """Send a point-to-point message, ordered with group traffic."""
        self._require_connected()
        self._daemon.send_private(self._name, dst, payload, service)

    def receive(self) -> List[Any]:
        """Drain pending events (GroupMessage / PrivateMessage /
        MembershipNotice)."""
        return self._session.drain()

    def receive_messages(self) -> List[GroupMessage]:
        return [e for e in self.receive() if isinstance(e, GroupMessage)]

    def receive_private(self) -> List[PrivateMessage]:
        return [e for e in self.receive() if isinstance(e, PrivateMessage)]

    def disconnect(self) -> None:
        if self._session.connected:
            self._daemon.disconnect(self._name)

    def _require_connected(self) -> None:
        if not self._session.connected:
            raise SpreadError("client %s is disconnected" % self.client_id)
