"""Analysis over lifecycle traces and metrics snapshots.

:func:`analyze` turns a flat ``.rtrace`` record stream into the latency
decomposition the paper argues about: where each message spent its time
between origination and delivery, per-stage percentiles, token-round
statistics (computed the same way :class:`repro.sim.trace.RoundTracer`
computes them, so the two cross-check exactly on a shared run), and the
top-N slowest deliveries.  :func:`format_report` and
:func:`format_metrics` are the pretty-printers behind
``python -m repro.cli trace-analyze`` and ``python -m repro.cli report``.

Stage deltas telescope: for a delivery chain
``originated → token_granted → multicast → received → ordered →
delivered`` the per-stage differences sum *exactly* to the end-to-end
latency, so ``reconciliation.error_frac`` is zero up to float rounding
on any complete trace — the acceptance gate checks < 1%.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..wire.tracefmt import LoadedTrace, load_trace
from .lifecycle import (
    AUX_POST_TOKEN,
    STAGE_COALESCED,
    STAGE_DELIVERED_AGREED,
    STAGE_DELIVERED_SAFE,
    STAGE_MULTICAST,
    STAGE_NAMES,
    STAGE_ORDERED,
    STAGE_ORIGINATED,
    STAGE_PACKED,
    STAGE_RECEIVED,
    STAGE_TOKEN_GRANTED,
    STAGE_TOKEN_HANDLED,
)

__all__ = ["analyze", "analyze_path", "format_report", "format_metrics"]

#: Human-readable names for the chain segments (stage-to-stage deltas).
SEGMENT_NAMES = (
    "queue_wait",      # originated -> token_granted (waiting for the token)
    "send_gap",        # token_granted -> multicast (send CPU + NIC queue)
    "propagation",     # multicast -> received (fabric; remote chains only)
    "ordering_wait",   # received -> ordered (buffer until deliverable)
    "self_ordering",   # multicast -> ordered (initiator's own copy)
    "delivery_exec",   # ordered -> delivered (delivery CPU charge)
)


def _summary(values: List[float]) -> Dict[str, Any]:
    if not values:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p90_s": 0.0,
                "p99_s": 0.0, "max_s": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, int(round(q * (n - 1))))]

    return {
        "count": n,
        "mean_s": sum(ordered) / n,
        "p50_s": pct(0.50),
        "p90_s": pct(0.90),
        "p99_s": pct(0.99),
        "max_s": ordered[-1],
    }


def analyze(trace: LoadedTrace, top_n: int = 10) -> Dict[str, Any]:
    """Full latency decomposition of one loaded trace (JSON-ready)."""
    originated: Dict[Tuple[int, int], float] = {}
    granted: Dict[Tuple[int, int], float] = {}
    multicast_first: Dict[Tuple[int, int], float] = {}
    received: Dict[Tuple[int, int, int], float] = {}
    ordered_at: Dict[Tuple[int, int, int], float] = {}
    delivered: Dict[Tuple[int, int, int], Tuple[float, int]] = {}
    token_times: Dict[int, List[float]] = {}
    post_token_sends = 0
    new_messages = 0
    stage_counts: Dict[int, int] = {}

    for t, stage, node, origin, seq, aux in trace.records:
        stage_counts[stage] = stage_counts.get(stage, 0) + 1
        if stage == STAGE_ORIGINATED:
            originated.setdefault((origin, seq), t)
        elif stage == STAGE_TOKEN_GRANTED:
            granted.setdefault((origin, seq), t)
            if aux & AUX_POST_TOKEN:
                post_token_sends += 1
        elif stage == STAGE_MULTICAST:
            multicast_first.setdefault((origin, seq), t)
        elif stage == STAGE_RECEIVED:
            received.setdefault((origin, seq, node), t)
        elif stage == STAGE_ORDERED:
            ordered_at.setdefault((origin, seq, node), t)
        elif stage in (STAGE_DELIVERED_AGREED, STAGE_DELIVERED_SAFE):
            delivered.setdefault((origin, seq, node), (t, stage))
        elif stage == STAGE_TOKEN_HANDLED:
            token_times.setdefault(node, []).append(t)
            new_messages += aux

    # -- delivery chains -----------------------------------------------------
    segments: Dict[str, List[float]] = {name: [] for name in SEGMENT_NAMES}
    e2e_by_service: Dict[str, List[float]] = {"agreed": [], "safe": []}
    chains: List[Dict[str, Any]] = []
    sum_stage = 0.0
    sum_e2e = 0.0
    reconciled = 0

    for (origin, seq, node), (t_del, del_stage) in delivered.items():
        message = (origin, seq)
        t_orig = originated.get(message)
        t_grant = granted.get(message)
        t_mcast = multicast_first.get(message)
        t_recv = received.get((origin, seq, node))
        t_ord = ordered_at.get((origin, seq, node))
        if t_orig is None or t_grant is None or t_mcast is None or t_ord is None:
            continue
        parts: Dict[str, float] = {
            "queue_wait": t_grant - t_orig,
            "send_gap": t_mcast - t_grant,
        }
        if node != origin and t_recv is not None:
            parts["propagation"] = t_recv - t_mcast
            parts["ordering_wait"] = t_ord - t_recv
        else:
            parts["self_ordering"] = t_ord - t_mcast
        parts["delivery_exec"] = t_del - t_ord
        for name, value in parts.items():
            segments[name].append(value)
        e2e = t_del - t_orig
        service = "safe" if del_stage == STAGE_DELIVERED_SAFE else "agreed"
        e2e_by_service[service].append(e2e)
        sum_stage += sum(parts.values())
        sum_e2e += e2e
        reconciled += 1
        chains.append({
            "origin": origin, "seq": seq, "node": node,
            "service": service, "e2e_s": e2e, "segments": parts,
        })

    chains.sort(key=lambda c: (-c["e2e_s"], c["origin"], c["seq"], c["node"]))

    # -- token rounds (RoundTracer-compatible) -------------------------------
    per_node_rounds: Dict[str, Dict[str, Any]] = {}
    node_means: List[float] = []
    for node in sorted(token_times):
        times = token_times[node]
        intervals = [
            b - a for a, b in zip(times[2:], times[3:])
        ]
        if intervals:
            mean = sum(intervals) / len(intervals)
            node_means.append(mean)
            per_node_rounds[str(node)] = {
                "count": len(intervals),
                "mean_round_s": mean,
                "min_round_s": min(intervals),
                "max_round_s": max(intervals),
            }
        else:
            per_node_rounds[str(node)] = {
                "count": 0, "mean_round_s": 0.0,
                "min_round_s": 0.0, "max_round_s": 0.0,
            }

    return {
        "schema": 1,
        "world": trace.world_name,
        "clock": trace.clock_name,
        "label": trace.label,
        "truncated_tail": trace.truncated_tail,
        "records": len(trace.records),
        "stage_counts": {
            STAGE_NAMES.get(stage, "s%d" % stage): count
            for stage, count in sorted(stage_counts.items())
        },
        "messages": len(granted),
        "deliveries": len(delivered),
        "segments": {
            name: _summary(values) for name, values in segments.items()
        },
        "end_to_end": {
            service: _summary(values)
            for service, values in e2e_by_service.items()
        },
        "reconciliation": {
            "chains": reconciled,
            "sum_stage_s": sum_stage,
            "sum_e2e_s": sum_e2e,
            "error_frac": (
                abs(sum_stage - sum_e2e) / sum_e2e if sum_e2e else 0.0
            ),
        },
        "token_rounds": {
            "per_node": per_node_rounds,
            "mean_round_s": (
                sum(node_means) / len(node_means) if node_means else 0.0
            ),
            "handlings": sum(len(v) for v in token_times.values()),
            "post_token_sends": post_token_sends,
            "new_messages": new_messages,
            "overlap_fraction": (
                post_token_sends / new_messages if new_messages else 0.0
            ),
        },
        "slowest": chains[:top_n],
    }


def analyze_path(path: str, top_n: int = 10) -> Dict[str, Any]:
    return analyze(load_trace(path), top_n=top_n)


# -- pretty-printers ---------------------------------------------------------

def _us(seconds: float) -> str:
    return "%10.1f" % (seconds * 1e6)


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of an :func:`analyze` report."""
    lines: List[str] = []
    lines.append(
        "trace: world=%s clock=%s records=%d messages=%d deliveries=%d%s"
        % (
            report["world"], report["clock"], report["records"],
            report["messages"], report["deliveries"],
            "  TRUNCATED-TAIL" if report.get("truncated_tail") else "",
        )
    )
    if report["label"]:
        lines.append("label: %s" % report["label"])
    lines.append("")
    lines.append("per-stage latency (us)")
    lines.append(
        "  %-14s %8s %10s %10s %10s %10s %10s"
        % ("segment", "count", "mean", "p50", "p90", "p99", "max")
    )
    for name in SEGMENT_NAMES:
        summary = report["segments"].get(name)
        if not summary or summary["count"] == 0:
            continue
        lines.append(
            "  %-14s %8d %s %s %s %s %s" % (
                name, summary["count"], _us(summary["mean_s"]),
                _us(summary["p50_s"]), _us(summary["p90_s"]),
                _us(summary["p99_s"]), _us(summary["max_s"]),
            )
        )
    lines.append("")
    lines.append("end-to-end latency (us)")
    for service in ("agreed", "safe"):
        summary = report["end_to_end"][service]
        if summary["count"] == 0:
            continue
        lines.append(
            "  %-14s %8d %s %s %s %s %s" % (
                service, summary["count"], _us(summary["mean_s"]),
                _us(summary["p50_s"]), _us(summary["p90_s"]),
                _us(summary["p99_s"]), _us(summary["max_s"]),
            )
        )
    recon = report["reconciliation"]
    lines.append(
        "  reconciliation: %d chains, stage-sum vs e2e error %.4f%%"
        % (recon["chains"], recon["error_frac"] * 100.0)
    )
    rounds = report["token_rounds"]
    lines.append("")
    lines.append(
        "token rounds: %d handlings, mean round %.1f us, overlap %.3f "
        "(%d post-token sends / %d initiated)"
        % (
            rounds["handlings"], rounds["mean_round_s"] * 1e6,
            rounds["overlap_fraction"], rounds["post_token_sends"],
            rounds["new_messages"],
        )
    )
    slowest = report["slowest"]
    if slowest:
        lines.append("")
        lines.append("slowest deliveries")
        for chain in slowest:
            parts = "  ".join(
                "%s=%.1fus" % (name, value * 1e6)
                for name, value in chain["segments"].items()
            )
            lines.append(
                "  (pid %d, seq %d) -> node %d  %s  e2e %.1fus  [%s]" % (
                    chain["origin"], chain["seq"], chain["node"],
                    chain["service"], chain["e2e_s"] * 1e6, parts,
                )
            )
    return "\n".join(lines)


def format_metrics(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a MetricsRegistry snapshot."""
    lines: List[str] = []
    cluster = snapshot.get("cluster", {})
    nodes = snapshot.get("nodes", {})
    lines.append(
        "metrics: %d cluster aggregates across %d nodes"
        % (len(cluster), len(nodes))
    )
    lines.append("")
    lines.append("  %-44s %16s" % ("metric", "cluster total"))
    for name, value in sorted(cluster.items()):
        if isinstance(value, dict):
            rendered = "hist n=%d sum=%.6g" % (value["count"], value["sum"])
        elif isinstance(value, float):
            rendered = "%.6g" % value
        else:
            rendered = "%d" % value
        lines.append("  %-44s %16s" % (name, rendered))
    return "\n".join(lines)
