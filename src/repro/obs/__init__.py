"""Unified observability: metrics registry + causal lifecycle tracing.

Two instruments, one namespace:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — named
  counters/gauges/histograms with per-node and cluster-aggregated
  views and JSON snapshot/delta export.  The legacy counters
  (FabricMonitor, participant stats, gossip control traffic, transport
  drops) re-register through it as zero-cost bound views.

* :class:`LifecycleTracer` (:mod:`repro.obs.lifecycle`) — stamps each
  message's journey through the paper's pipeline stages into a
  ``.rtrace`` stream (:mod:`repro.wire.tracefmt`), attachable to both
  ``SimCluster`` (sim clock) and ``EmulatedRing`` (wall clock).

Analysis lives in :mod:`repro.obs.report`; the CLI front-ends are
``python -m repro.cli report`` and ``python -m repro.cli
trace-analyze``.  See ``docs/OBSERVABILITY.md``.
"""

from .lifecycle import (
    AUX_COALESCED,
    AUX_POST_TOKEN,
    AUX_RETRANSMISSION,
    AUX_SAFE,
    STAGE_COALESCED,
    STAGE_DELIVERED_AGREED,
    STAGE_DELIVERED_SAFE,
    STAGE_MULTICAST,
    STAGE_NAMES,
    STAGE_ORDERED,
    STAGE_ORIGINATED,
    STAGE_PACKED,
    STAGE_RECEIVED,
    STAGE_TOKEN_GRANTED,
    STAGE_TOKEN_HANDLED,
    LifecycleTracer,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, RegistryError
from .report import analyze, analyze_path, format_metrics, format_report

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RegistryError",
    "LifecycleTracer",
    "STAGE_NAMES",
    "STAGE_ORIGINATED",
    "STAGE_PACKED",
    "STAGE_COALESCED",
    "STAGE_TOKEN_GRANTED",
    "STAGE_MULTICAST",
    "STAGE_RECEIVED",
    "STAGE_ORDERED",
    "STAGE_DELIVERED_AGREED",
    "STAGE_DELIVERED_SAFE",
    "STAGE_TOKEN_HANDLED",
    "AUX_POST_TOKEN",
    "AUX_RETRANSMISSION",
    "AUX_COALESCED",
    "AUX_SAFE",
    "analyze",
    "analyze_path",
    "format_report",
    "format_metrics",
]
