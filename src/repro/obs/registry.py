"""One metrics registry for every layer of the system.

The repo's observability used to live in disconnected fragments: NIC and
switch-port attributes summed by :class:`~repro.net.monitors.FabricMonitor`,
per-participant :class:`~repro.core.participant.ParticipantStats`, the
gossip nodes' control-traffic counters, and the UDP transport's drop
counters.  The :class:`MetricsRegistry` absorbs all of them into one
named, node-scoped namespace with cluster-aggregated views and a
byte-stable JSON snapshot/delta export — without touching any hot path.

Two instrument families make that possible:

* **Owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`): created through the registry, incremented by the
  code that owns them.  The hot-path operations (``inc``, ``set``,
  ``observe``) are attribute arithmetic on ``__slots__`` — no
  allocation, no dict lookup, no branching on "is anyone listening".

* **Bound metrics** (:meth:`MetricsRegistry.bind` /
  :meth:`MetricsRegistry.bind_fn`): a *view* onto a counter that already
  exists as a plain attribute somewhere (``nic.frames_sent``,
  ``transport.drops_malformed``).  The owning code keeps its bare
  ``+= 1`` — literally zero added cost — and the registry reads the
  attribute only at snapshot time.  This is how the legacy counters
  "re-register" through the registry while their existing APIs stay
  intact as thin shims.

Naming scheme (see ``docs/OBSERVABILITY.md``): dotted
``layer.component.metric`` paths, lower_snake_case leaves, e.g.
``net.nic.frames_sent``, ``core.participant.tokens_handled``,
``membership.gossip.ctrl_frames_sent``.  The node scope is the integer
pid; ``node=None`` means a cluster-wide (unscoped) instrument.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryError",
]


class RegistryError(ValueError):
    """Conflicting registration (same name+node, different kind)."""


class Counter:
    """Monotonically increasing count.  ``inc`` is a bare slot add."""

    __slots__ = ("name", "node", "value")
    kind = "counter"

    def __init__(self, name: str, node: Optional[int] = None) -> None:
        self.name = name
        self.node = node
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def get(self) -> int:
        return self.value


class Gauge:
    """Point-in-time level (queue depth, window size, backlog)."""

    __slots__ = ("name", "node", "value")
    kind = "gauge"

    def __init__(self, name: str, node: Optional[int] = None) -> None:
        self.name = name
        self.node = node
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def get(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram; ``observe`` is a C-level bisect + two adds.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.
    The bucket layout is fixed at registration so observation never
    allocates, and two histograms with the same bounds merge exactly
    (cluster aggregation, snapshot deltas).
    """

    __slots__ = ("name", "node", "bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Tuple[float, ...],
        node: Optional[int] = None,
    ) -> None:
        if not bounds:
            raise RegistryError("histogram %r needs at least one bound" % name)
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise RegistryError(
                "histogram %r bounds must be strictly increasing: %r"
                % (name, bounds)
            )
        self.name = name
        self.node = node
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile (0 <= q <= 1).

        Returns the upper bound of the bucket holding the quantile
        sample; the overflow bucket reports the last finite edge.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def get(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class _Bound:
    """A registry view onto somebody else's live attribute."""

    __slots__ = ("name", "node", "kind", "_obj", "_attr")

    def __init__(self, name, node, kind, obj, attr) -> None:
        self.name = name
        self.node = node
        self.kind = kind
        self._obj = obj
        self._attr = attr

    def get(self):
        return getattr(self._obj, self._attr)


class _BoundFn:
    """A registry view computed by a callable at snapshot time."""

    __slots__ = ("name", "node", "kind", "_fn")

    def __init__(self, name, node, kind, fn) -> None:
        self.name = name
        self.node = node
        self.kind = kind
        self._fn = fn

    def get(self):
        return self._fn()


class MetricsRegistry:
    """Named counters/gauges/histograms with per-node and cluster views."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        #: (name, node) -> instrument, in registration order.
        self._metrics: Dict[Tuple[str, Optional[int]], Any] = {}

    # -- registration -------------------------------------------------------

    def _register(self, metric) -> Any:
        key = (metric.name, metric.node)
        existing = self._metrics.get(key)
        if existing is not None:
            if existing.kind != metric.kind:
                raise RegistryError(
                    "metric %r node=%r already registered as %s, not %s"
                    % (metric.name, metric.node, existing.kind, metric.kind)
                )
            return existing
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        """Create (or fetch) an owned counter."""
        return self._register(Counter(name, node))

    def gauge(self, name: str, node: Optional[int] = None) -> Gauge:
        """Create (or fetch) an owned gauge."""
        return self._register(Gauge(name, node))

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...],
        node: Optional[int] = None,
    ) -> Histogram:
        """Create (or fetch) an owned fixed-bucket histogram."""
        existing = self._metrics.get((name, node))
        if existing is not None:
            if existing.kind != "histogram" or existing.bounds != tuple(
                float(b) for b in bounds
            ):
                raise RegistryError(
                    "histogram %r node=%r already registered with "
                    "different layout" % (name, node)
                )
            return existing
        return self._register(Histogram(name, bounds, node))

    def bind(
        self,
        name: str,
        obj: Any,
        attr: str,
        node: Optional[int] = None,
        kind: str = "counter",
    ) -> None:
        """Absorb an existing attribute counter with zero hot-path cost.

        The owning object keeps incrementing its plain attribute; the
        registry reads ``getattr(obj, attr)`` only when a snapshot is
        taken.  Re-binding the same (name, node) replaces the view —
        restarts re-bind their fresh incarnation's counters.
        """
        self._metrics[(name, node)] = _Bound(name, node, kind, obj, attr)

    def bind_fn(
        self,
        name: str,
        fn: Callable[[], Any],
        node: Optional[int] = None,
        kind: str = "gauge",
    ) -> None:
        """Like :meth:`bind` for values that need computing."""
        self._metrics[(name, node)] = _BoundFn(name, node, kind, fn)

    # -- reading ------------------------------------------------------------

    def value(self, name: str, node: Optional[int] = None):
        """The exact value of one instrument (KeyError if absent)."""
        return self._metrics[(name, node)].get()

    def names(self) -> List[str]:
        """Every registered metric name, sorted, node scopes collapsed."""
        return sorted({name for name, _node in self._metrics})

    def nodes(self) -> List[int]:
        """Every node scope that has at least one metric."""
        return sorted({
            node for _name, node in self._metrics if node is not None
        })

    def total(self, name: str):
        """Cluster aggregate: sum across every node scope (and unscoped).

        Counters and gauges sum; histograms merge bucket-wise (layouts
        must match).  KeyError when the name is entirely unknown.
        """
        values = [
            metric.get()
            for (metric_name, _node), metric in self._metrics.items()
            if metric_name == name
        ]
        if not values:
            raise KeyError(name)
        if isinstance(values[0], dict):
            return _merge_histograms(values)
        return sum(values)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view: per-node blocks plus cluster aggregates.

        Shape::

            {"schema": 1,
             "nodes":   {"<pid>": {"<name>": value, ...}, ...},
             "cluster": {"<name>": aggregated-value, ...}}

        Counter/gauge values are numbers; histogram values are
        ``{"bounds", "counts", "count", "sum"}`` dicts.  Keys sort
        deterministically so two snapshots of identical state are
        byte-identical when dumped with ``sort_keys=True``.
        """
        nodes: Dict[str, Dict[str, Any]] = {}
        cluster: Dict[str, Any] = {}
        for (name, node), metric in self._metrics.items():
            value = metric.get()
            if node is not None:
                nodes.setdefault(str(node), {})[name] = value
            previous = cluster.get(name)
            if previous is None:
                cluster[name] = value
            elif isinstance(previous, dict):
                cluster[name] = _merge_histograms([previous, value])
            else:
                cluster[name] = previous + value
        return {
            "schema": 1,
            "nodes": {k: dict(sorted(v.items())) for k, v in sorted(nodes.items())},
            "cluster": dict(sorted(cluster.items())),
        }

    def delta(self, previous: Dict[str, Any]) -> Dict[str, Any]:
        """Snapshot minus ``previous`` (an earlier :meth:`snapshot`).

        Counters and histogram counts subtract; a metric absent from
        ``previous`` reports its full current value (treated as starting
        from zero).  Gauges cannot meaningfully subtract across
        processes restarts, so they subtract too — interpret gauge
        deltas as level changes.
        """
        current = self.snapshot()
        return {
            "schema": 1,
            "nodes": {
                node: _diff_block(
                    block, previous.get("nodes", {}).get(node, {})
                )
                for node, block in current["nodes"].items()
            },
            "cluster": _diff_block(
                current["cluster"], previous.get("cluster", {})
            ),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path


def _merge_histograms(values: List[Dict[str, Any]]) -> Dict[str, Any]:
    first = values[0]
    bounds = first["bounds"]
    counts = list(first["counts"])
    total = first["count"]
    total_sum = first["sum"]
    for value in values[1:]:
        if value["bounds"] != bounds:
            raise RegistryError(
                "cannot merge histograms with different bounds"
            )
        for index, bucket in enumerate(value["counts"]):
            counts[index] += bucket
        total += value["count"]
        total_sum += value["sum"]
    return {"bounds": bounds, "counts": counts, "count": total, "sum": total_sum}


def _diff_block(current: Dict[str, Any], previous: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name, value in current.items():
        before = previous.get(name)
        if isinstance(value, dict):
            if isinstance(before, dict) and before["bounds"] == value["bounds"]:
                out[name] = {
                    "bounds": value["bounds"],
                    "counts": [
                        c - p for c, p in zip(value["counts"], before["counts"])
                    ],
                    "count": value["count"] - before["count"],
                    "sum": value["sum"] - before["sum"],
                }
            else:
                out[name] = value
        elif isinstance(before, (int, float)):
            out[name] = value - before
        else:
            out[name] = value
    return out
