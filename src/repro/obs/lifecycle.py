"""Causal message-lifecycle tracing.

A :class:`LifecycleTracer` stamps each message's journey through named
stages into a flat record stream (:mod:`repro.wire.tracefmt`).  The
same tracer attaches to the discrete-event sim (``SimCluster
.attach_tracer()``, sim-time clock) and the threaded UDP emulation
(``EmulatedRing.attach_tracer()``, wall-clock), so one analyzer —
``python -m repro.cli trace-analyze`` — decomposes latency identically
in both worlds.

Stage taxonomy (the paper's Section III message path)::

    id  stage            stamped at                        by
    0   originated       application submit time           participant cb (retroactive)
    1   packed           protocol packet built from queue  participant cb
    2   coalesced        message entered a jumbo datagram  driver hook
    3   token_granted    initiator's token handling        participant cb
    4   multicast        NIC accepted the datagram         driver hook
    5   received         first arrival at a remote node    participant cb
    6   ordered          delivery engine released it       driver hook
    7   delivered_agreed driver executed Agreed delivery   driver hook
    8   delivered_safe   driver executed Safe delivery     driver hook
    9   token_handled    any node handled the token        participant cb

(``ordered`` and ``delivered_*`` are one combined driver hook for
speed — they are the two highest-volume stages, one pair per delivered
message per node.  The driver captures the participant-return instant
— the same instant the hub's MESSAGE_DELIVERED event fires — and after
the delivery executes makes a single hook call that packs both records
at once, so the pair costs one Python call, one struct pack and one
buffer append instead of two hub dispatches.)

Record fields: ``node`` is the observing pid, ``origin``/``seq``
identify the message ((origin, seq) is unique per run), and for
``token_handled`` records ``seq`` carries the token *hop* (round id)
and ``origin`` is -1.  ``aux`` is a stage-specific flag word:

* ``multicast``: bit 0 = post-token send, bit 1 = retransmission,
  bit 2 = part of a coalesced jumbo datagram.
* ``token_granted``: bit 0 = post-token (the message sits in the
  accelerated window).
* ``ordered``: bit 0 = Safe service.
* ``packed``: the number of application messages in the packet.
* ``token_handled``: the flow-control budget granted this handling
  (``allowed_new``) — trace-analyze's overlap denominator, matching
  :class:`repro.sim.trace.RoundTracer` exactly.

``originated`` is stamped *retroactively*: when the initiator's
MESSAGE_SENT event fires, the stamp reuses ``message.submitted_at``
(the driver clock at application submit).  The submit hot path itself
carries zero tracing cost, and the originated→delivered telescoping sum
equals the latency recorder's end-to-end sample exactly.

Cost model: when no tracer is attached, the drivers' hook attributes
and the participants' trace callbacks are all ``None`` (one ``is not
None`` test each on paths that already branch per action).  Attaching
a tracer does NOT flip ``hub.active``: the per-message stages go
through the participant's direct trace callbacks, so every gated hub
emit keeps its counter-only fast path even while tracing.
"""

from __future__ import annotations

import functools
import struct
from typing import Any, Callable, List, Optional

from ..core import Service
from ..core.packing import PackedPayload
from ..wire import tracefmt
from ..wire.tracefmt import (
    CLOCK_SIM,
    CLOCK_WALL,
    NO_PID,
    RECORD_SIZE,
    RECORD_STRUCT,
    TRACE_WORLD_EMULATION,
    TRACE_WORLD_SIM,
    TraceRecord,
    TraceWriter,
)

__all__ = [
    "LifecycleTracer",
    "STAGE_ORIGINATED",
    "STAGE_PACKED",
    "STAGE_COALESCED",
    "STAGE_TOKEN_GRANTED",
    "STAGE_MULTICAST",
    "STAGE_RECEIVED",
    "STAGE_ORDERED",
    "STAGE_DELIVERED_AGREED",
    "STAGE_DELIVERED_SAFE",
    "STAGE_TOKEN_HANDLED",
    "STAGE_NAMES",
    "AUX_POST_TOKEN",
    "AUX_RETRANSMISSION",
    "AUX_COALESCED",
    "AUX_SAFE",
]

STAGE_ORIGINATED = 0
STAGE_PACKED = 1
STAGE_COALESCED = 2
STAGE_TOKEN_GRANTED = 3
STAGE_MULTICAST = 4
STAGE_RECEIVED = 5
STAGE_ORDERED = 6
STAGE_DELIVERED_AGREED = 7
STAGE_DELIVERED_SAFE = 8
STAGE_TOKEN_HANDLED = 9

STAGE_NAMES = {
    STAGE_ORIGINATED: "originated",
    STAGE_PACKED: "packed",
    STAGE_COALESCED: "coalesced",
    STAGE_TOKEN_GRANTED: "token_granted",
    STAGE_MULTICAST: "multicast",
    STAGE_RECEIVED: "received",
    STAGE_ORDERED: "ordered",
    STAGE_DELIVERED_AGREED: "delivered_agreed",
    STAGE_DELIVERED_SAFE: "delivered_safe",
    STAGE_TOKEN_HANDLED: "token_handled",
}

AUX_POST_TOKEN = 1
AUX_RETRANSMISSION = 2
AUX_COALESCED = 4
#: ``ordered`` aux: the message asked for the Safe service.
AUX_SAFE = 1

#: Two consecutive records packed in one struct call — the
#: ordered/delivered pair every delivery emits.  Kept in lockstep with
#: ``tracefmt.RECORD_STRUCT``; the buffer stays a plain record stream.
_PAIR_STRUCT = struct.Struct("<dBBiiIIdBBiiII")
assert _PAIR_STRUCT.size == 2 * RECORD_SIZE


class LifecycleTracer:
    """Collects lifecycle stamps in memory; write out after the run.

    Build one via ``SimCluster.attach_tracer()`` /
    ``EmulatedRing.attach_tracer()`` rather than by hand — the drivers
    know their own clock and hook points.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        world: int = TRACE_WORLD_SIM,
        clock_kind: int = CLOCK_SIM,
        label: str = "",
        epoch: float = 0.0,
    ) -> None:
        self._clock = clock
        #: Subtracted from driver-passed raw timestamps (the delivery
        #: hook takes the driver's native clock values; the emulation
        #: driver hands over raw ``time.monotonic()`` readings).
        self.epoch = epoch
        self.world = world
        self.clock_kind = clock_kind
        self.label = label
        #: Stamps in event order, packed with ``tracefmt.RECORD_STRUCT``.
        #: A bytearray, not a list of tuples, on purpose: a long traced
        #: run accumulates 10^5..10^6 stamps, and GC-tracked tuples make
        #: every full collection rescan the whole trace — measured at
        #: 3x the entire direct stamping cost on the sim-mix benchmark.
        #: Packed bytes never enter the cyclic GC.  (``bytearray
        #: .extend`` holds the GIL, so emulation threads may stamp
        #: concurrently; the stream is just not globally time-sorted.)
        self._buf = bytearray()

    # -- stamping ------------------------------------------------------------

    def stamp(
        self, stage: int, node: int, origin: int, seq: int, aux: int = 0
    ) -> None:
        self.stamp_at(self._clock(), stage, node, origin, seq, aux)

    def stamp_at(
        self, t: float, stage: int, node: int, origin: int, seq: int,
        aux: int = 0,
    ) -> None:
        self._buf.extend(RECORD_STRUCT.pack(
            t, stage, 0, node, origin,
            seq & 0xFFFFFFFF, aux & 0xFFFFFFFF,
        ))

    # -- participant stages ---------------------------------------------------

    def watch_participant(self, pid: int, participant: Any) -> None:
        """Install the participant-driven stages for one ring member.

        Stamps ``originated`` (retroactive from ``submitted_at``),
        ``packed``, ``token_granted``, ``received`` and
        ``token_handled`` through the participant's direct trace
        callbacks (:meth:`repro.core.participant.Participant
        .set_trace_callbacks`) — NOT the event hub: a pure tracer run
        leaves ``hub.active`` False, so all the hub's gated emits keep
        their counter-only fast path, and each traced stage costs one
        closure call instead of a dispatch through the hub.  The
        driver-side stages (``coalesced``, ``multicast``, ``ordered``,
        ``delivered_*``) come from the hook factories below because
        only the driver knows when the NIC/socket and the delivery
        callback actually run.
        """
        extend = self._buf.extend
        pack = RECORD_STRUCT.pack
        clock = self._clock

        # Hot closures: every non-self binding is a default argument, so
        # each stamp costs one clock call, one C-level pack and one
        # bytearray extend — no GC-tracked allocation survives.

        def on_sent(message, _extend=extend, _pack=pack,
                    _clock=clock, _pid=pid, _packed=PackedPayload) -> None:
            now = _clock()
            payload = message.payload
            if type(payload) is _packed:
                submitted = min(
                    (item.submitted_at for item in payload.items
                     if item.submitted_at is not None),
                    default=None,
                )
                if submitted is not None:
                    _extend(_pack(
                        submitted, STAGE_ORIGINATED, 0,
                        _pid, _pid, message.seq, 0,
                    ))
                _extend(_pack(
                    now, STAGE_PACKED, 0, _pid, _pid, message.seq,
                    len(payload.items),
                ))
            elif message.submitted_at is not None:
                _extend(_pack(
                    message.submitted_at, STAGE_ORIGINATED, 0,
                    _pid, _pid, message.seq, 0,
                ))
            _extend(_pack(
                now, STAGE_TOKEN_GRANTED, 0, _pid, _pid, message.seq,
                AUX_POST_TOKEN if message.sent_after_token else 0,
            ))

        def on_received(message, _extend=extend, _pack=pack, _clock=clock,
                        _pid=pid, _stage=STAGE_RECEIVED) -> None:
            _extend(_pack(
                _clock(), _stage, 0, _pid, message.pid, message.seq, 0,
            ))

        def on_token(token_out, allowed_new, _extend=extend, _pack=pack,
                     _clock=clock, _pid=pid, _stage=STAGE_TOKEN_HANDLED,
                     _no_pid=NO_PID) -> None:
            _extend(_pack(
                _clock(), _stage, 0, _pid, _no_pid, token_out.hop,
                allowed_new,
            ))

        participant.set_trace_callbacks(
            sent=on_sent, received=on_received, token=on_token,
        )

    # -- driver hook factories ----------------------------------------------

    def make_send_hook(self, pid: int):
        """Driver hook: the NIC/socket accepted one data datagram.

        Called as ``hook(message, retransmission, coalesced)``.
        """
        def on_send(message, retransmission: bool, coalesced: bool,
                    _extend=self._buf.extend, _pack=RECORD_STRUCT.pack,
                    _clock=self._clock, _stage=STAGE_MULTICAST,
                    _pid=pid) -> None:
            aux = 0
            if message.sent_after_token:
                aux |= AUX_POST_TOKEN
            if retransmission:
                aux |= AUX_RETRANSMISSION
            if coalesced:
                aux |= AUX_COALESCED
            _extend(_pack(
                _clock(), _stage, 0, _pid, message.pid, message.seq, aux,
            ))

        return on_send

    def make_coalesce_hook(self, pid: int):
        """Driver hook: ``hook(messages)`` when a jumbo batch forms."""

        def on_coalesce(messages, _extend=self._buf.extend,
                        _pack=RECORD_STRUCT.pack, _clock=self._clock,
                        _stage=STAGE_COALESCED, _pid=pid) -> None:
            now = _clock()
            count = len(messages)
            for message in messages:
                _extend(_pack(
                    now, _stage, 0, _pid, message.pid, message.seq, count,
                ))

        return on_coalesce

    def make_delivery_hook(self, pid: int):
        """Driver hook: ``hook(message, t_ordered, t_delivered)``.

        Called once per delivered message, after the delivery executed.
        ``t_ordered`` is the driver-clock instant the participant
        returned the Deliver action (the delivery engine's release
        time, captured before any delivery CPU charge); ``t_delivered``
        the instant delivery completed.  Both are raw driver-clock
        readings — the hook subtracts the tracer epoch — and the pair
        is packed as one ``ordered`` plus one ``delivered_*`` record in
        a single struct call.
        """
        if self.epoch:
            def on_delivery(message, t_ordered: float, t_delivered: float,
                            _extend=self._buf.extend,
                            _pack=_PAIR_STRUCT.pack,
                            _t0=self.epoch, _pid=pid,
                            _ordered=STAGE_ORDERED,
                            _agreed=STAGE_DELIVERED_AGREED,
                            _safe_stage=STAGE_DELIVERED_SAFE,
                            _safe=Service.SAFE) -> None:
                origin = message.pid
                seq = message.seq
                if message.service is _safe:
                    _extend(_pack(
                        t_ordered - _t0, _ordered, 0, _pid, origin, seq,
                        AUX_SAFE,
                        t_delivered - _t0, _safe_stage, 0, _pid, origin,
                        seq, 0,
                    ))
                else:
                    _extend(_pack(
                        t_ordered - _t0, _ordered, 0, _pid, origin, seq, 0,
                        t_delivered - _t0, _agreed, 0, _pid, origin, seq, 0,
                    ))
        else:
            # Epoch-zero specialization (the sim clock): skip the two
            # float subtractions — each allocates — on the densest hook.
            def on_delivery(message, t_ordered: float, t_delivered: float,
                            _extend=self._buf.extend,
                            _pack=_PAIR_STRUCT.pack,
                            _pid=pid, _ordered=STAGE_ORDERED,
                            _agreed=STAGE_DELIVERED_AGREED,
                            _safe_stage=STAGE_DELIVERED_SAFE,
                            _safe=Service.SAFE) -> None:
                origin = message.pid
                seq = message.seq
                if message.service is _safe:
                    _extend(_pack(
                        t_ordered, _ordered, 0, _pid, origin, seq, AUX_SAFE,
                        t_delivered, _safe_stage, 0, _pid, origin, seq, 0,
                    ))
                else:
                    _extend(_pack(
                        t_ordered, _ordered, 0, _pid, origin, seq, 0,
                        t_delivered, _agreed, 0, _pid, origin, seq, 0,
                    ))

        return on_delivery

    # -- output --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf) // RECORD_SIZE

    @property
    def records(self) -> List[TraceRecord]:
        """Decoded stamps in event order (a fresh list per access)."""
        return self.to_records()

    def to_records(self) -> List[TraceRecord]:
        return [
            TraceRecord(t, stage, node, origin, seq, aux)
            for t, stage, _reserved, node, origin, seq, aux
            in RECORD_STRUCT.iter_unpack(bytes(self._buf))
        ]

    def write_binary(self, path: str) -> str:
        """Write the ``.rtrace`` binary flavor; returns the path."""
        with TraceWriter(
            path, self.world, self.clock_kind, self.label
        ) as writer:
            writer.write_packed(bytes(self._buf))
        return path

    def write_jsonl(self, path: str) -> str:
        """Write the JSONL flavor; returns the path."""
        with open(path, "w") as handle:
            tracefmt.write_jsonl(
                handle, self.to_records(),
                self.world, self.clock_kind, self.label,
            )
        return path

    def write(self, path: str) -> str:
        """Write binary unless the path ends in ``.jsonl``."""
        if path.endswith(".jsonl"):
            return self.write_jsonl(path)
        return self.write_binary(path)


def sim_tracer(cluster, label: str = "") -> LifecycleTracer:
    """A tracer on the sim clock, fully wired into a SimCluster.

    Use via :meth:`repro.sim.cluster.SimCluster.attach_tracer`.
    """
    sim = cluster.sim
    tracer = LifecycleTracer(
        # partial(getattr, ...) stays entirely in C — a Python lambda
        # here would add a frame to every participant-stage stamp.
        clock=functools.partial(getattr, sim, "now"),
        world=TRACE_WORLD_SIM,
        clock_kind=CLOCK_SIM,
        label=label,
    )
    for pid, node in cluster.nodes.items():
        tracer.watch_participant(pid, node.participant)
        node.set_trace_hooks(
            send=tracer.make_send_hook(pid),
            delivery=tracer.make_delivery_hook(pid),
            coalesce=tracer.make_coalesce_hook(pid),
        )
    return tracer


def emulation_tracer(
    ring, t0: float, label: str = ""
) -> LifecycleTracer:
    """A tracer on the wall clock, wired into an EmulatedRing.

    ``t0`` anchors timestamps so they are comparable with the ring's
    ``.rcap`` captures (both subtract the same monotonic origin).
    """
    import time

    tracer = LifecycleTracer(
        clock=lambda: time.monotonic() - t0,
        world=TRACE_WORLD_EMULATION,
        clock_kind=CLOCK_WALL,
        label=label,
        epoch=t0,
    )
    for node in ring.nodes.values():
        pid = node.pid
        tracer.watch_participant(pid, node.participant)
        node.set_trace_hooks(
            send=tracer.make_send_hook(pid),
            delivery=tracer.make_delivery_hook(pid),
            coalesce=tracer.make_coalesce_hook(pid),
        )
    return tracer
