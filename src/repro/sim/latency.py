"""Latency and throughput measurement for simulated runs.

A message's latency is submit-to-delivery, measured at every receiver
(the paper reports the average latency to deliver a message).  Samples
before the warmup cutoff are discarded so steady-state numbers are not
polluted by ramp-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import Service


@dataclass
class LatencySummary:
    count: int
    mean_s: float
    p50_s: float
    p90_s: float
    p99_s: float
    max_s: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean_s=0.0, p50_s=0.0, p90_s=0.0, p99_s=0.0, max_s=0.0)


def summarize(samples: List[float]) -> LatencySummary:
    if not samples:
        return LatencySummary.empty()
    ordered = sorted(samples)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    return LatencySummary(
        count=n,
        mean_s=sum(ordered) / n,
        p50_s=pct(0.50),
        p90_s=pct(0.90),
        p99_s=pct(0.99),
        max_s=ordered[-1],
    )


class LatencyRecorder:
    """Collects delivery latency samples and delivered-byte counts."""

    def __init__(self, warmup_until_s: float = 0.0) -> None:
        self.warmup_until_s = warmup_until_s
        self._samples: Dict[Service, List[float]] = {}
        #: Payload bytes delivered per receiving node after warmup.
        self.delivered_bytes: Dict[int, int] = {}
        self.delivered_messages: Dict[int, int] = {}

    def record(
        self,
        node_id: int,
        service: Service,
        submitted_at: Optional[float],
        delivered_at: float,
        payload_size: int,
    ) -> None:
        if delivered_at < self.warmup_until_s:
            return
        delivered_bytes = self.delivered_bytes
        delivered_bytes[node_id] = delivered_bytes.get(node_id, 0) + payload_size
        delivered_messages = self.delivered_messages
        delivered_messages[node_id] = delivered_messages.get(node_id, 0) + 1
        if submitted_at is None or submitted_at < self.warmup_until_s:
            return
        samples = self._samples.get(service)
        if samples is None:
            samples = self._samples[service] = []
        samples.append(delivered_at - submitted_at)

    def summary(self, service: Optional[Service] = None) -> LatencySummary:
        if service is None:
            merged: List[float] = []
            for samples in self._samples.values():
                merged.extend(samples)
            return summarize(merged)
        return summarize(self._samples.get(service, []))

    def throughput_bps(self, node_id: int, window_s: float) -> float:
        """Clean application-data throughput observed at one receiver."""
        if window_s <= 0:
            return 0.0
        return self.delivered_bytes.get(node_id, 0) * 8.0 / window_s

    def min_throughput_bps(self, window_s: float) -> float:
        if not self.delivered_bytes:
            return 0.0
        return min(
            self.throughput_bps(node, window_s) for node in self.delivered_bytes
        )
