"""Membership + ordering on the simulated network.

Runs the full :class:`~repro.membership.EVSProcess` stack (Totem-style
membership with EVS delivery) over the discrete-event substrate, with
real simulated time driving the failure-detection and membership
timeouts.  This is how reconfiguration *latency* — how long a crash or
partition disrupts the ordering service — becomes measurable.

Control messages (joins, commit tokens, recovery floods) travel on the
data port, like Totem's; the regular token keeps its own port.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core import ProtocolConfig, Service
from ..membership import EVSProcess, MembershipTimeouts, Outgoing, State
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from .profiles import CostProfile

#: Wire payload markers (what Frame.payload carries).
_CTRL = "ctrl"
_DATA = "data"
#: Approximate serialized size of a membership control message.
_CTRL_SIZE = 256


class SimEVSNode:
    """One EVSProcess bound to the simulated network."""

    #: How much simulated time one logical membership tick represents.
    TICK_INTERVAL_S = 0.001

    def __init__(
        self,
        sim: Simulator,
        pid: int,
        spec: LinkSpec,
        profile: CostProfile,
        switch: Switch,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        payload_size: int = 1350,
    ) -> None:
        self.sim = sim
        self.pid = pid
        self.spec = spec
        self.profile = profile
        self.payload_size = payload_size
        self._config = config
        self._timeouts = timeouts
        self.process = EVSProcess(pid, config, timeouts)
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._ctrl_queue: Deque[Tuple[Any, int]] = deque()
        self._token_queue: Deque[Tuple[int, Any, int]] = deque()
        self._data_queue: Deque[Tuple[int, Any, int]] = deque()
        self._wakeup = sim.signal("evsnode%d" % pid)
        self.crashed = False
        #: How many times this node has been (re)started.
        self.incarnation = 0
        #: EVSProcess instances of previous incarnations (their app_log
        #: still matters for EVS checking: a crashed process's delivered
        #: prefix must be consistent with the survivors').
        self.archived_processes: List[EVSProcess] = []
        self._cpu = sim.spawn(self._cpu_loop(), "evscpu%d" % pid)
        self._ticker = sim.spawn(self._tick_loop(), "evstick%d" % pid)
        self._route(self.process.bootstrap())

    # -- control -----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: the node stops processing and sending.

        Pending socket queues are dropped (a crashed process loses its
        volatile state); frames already handed to the NIC were sent
        before the crash and still drain onto the wire.
        """
        if self.crashed:
            return
        self.crashed = True
        self._cpu.interrupt()
        self._ticker.interrupt()
        self._ctrl_queue.clear()
        self._token_queue.clear()
        self._data_queue.clear()

    def restart(self) -> None:
        """Boot a fresh incarnation after a crash.

        The new process has total amnesia (no old-ring state, empty
        buffers — exactly what a restarted daemon has) and floods a join
        as a singleton; membership merges it back in.
        """
        if not self.crashed:
            raise RuntimeError("node %d is not crashed" % self.pid)
        self.crashed = False
        self.incarnation += 1
        self.archived_processes.append(self.process)
        self.process = EVSProcess(self.pid, self._config, self._timeouts)
        self._cpu = self.sim.spawn(
            self._cpu_loop(), "evscpu%d.%d" % (self.pid, self.incarnation)
        )
        self._ticker = self.sim.spawn(
            self._tick_loop(), "evstick%d.%d" % (self.pid, self.incarnation)
        )
        self._route(self.process.bootstrap())

    def submit(self, payload: Any, service: Service = Service.AGREED) -> None:
        self.process.submit(payload, service, self.payload_size)

    def delivered_payloads(self) -> List[Any]:
        return [m.payload for m in self.process.delivered_messages()]

    def incarnation_logs(self) -> List[Tuple[int, List[Any]]]:
        """Every incarnation's app_log, oldest first, with its index."""
        logs = [
            (index, process.app_log)
            for index, process in enumerate(self.archived_processes)
        ]
        logs.append((self.incarnation, self.process.app_log))
        return logs

    @property
    def state(self) -> State:
        return self.process.state

    # -- network glue -----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if self.crashed:
            return
        kind = frame.payload[0]
        if frame.traffic is Traffic.TOKEN:
            _kind, ring_id, token = frame.payload
            self._token_queue.append((ring_id, token, frame.src))
        elif kind == _CTRL:
            _kind, message = frame.payload
            self._ctrl_queue.append((message, frame.src))
        else:
            _kind, ring_id, message = frame.payload
            self._data_queue.append((ring_id, message, frame.src))
        self._wakeup.fire()

    def _route(self, outgoing: List[Outgoing]) -> None:
        for out in outgoing:
            if out.kind == "token":
                ring_id, token = out.payload
                if out.dst == self.pid:
                    self._token_queue.append((ring_id, token, self.pid))
                    self._wakeup.fire()
                    continue
                self.nic.send(
                    Frame(self.pid, out.dst, Traffic.TOKEN,
                          token.size, (_DATA, ring_id, token))
                )
            elif out.kind == "data":
                ring_id, message = out.payload
                self.nic.send(
                    Frame(self.pid, None, Traffic.DATA,
                          message.payload_size + self.profile.header_bytes,
                          (_DATA, ring_id, message))
                )
            else:
                frame = Frame(self.pid, out.dst, Traffic.DATA,
                              _CTRL_SIZE, (_CTRL, out.payload))
                if out.dst == self.pid:
                    self._ctrl_queue.append((out.payload, self.pid))
                    self._wakeup.fire()
                else:
                    self.nic.send(frame)

    # -- processes ------------------------------------------------------------------

    def _cpu_loop(self):
        profile = self.profile
        while True:
            if self._ctrl_queue:
                message, src = self._ctrl_queue.popleft()
                yield Timeout(profile.recv_token_cpu_s)
                self._route(self.process.handle_ctrl(message, src))
                continue
            token_pending = bool(self._token_queue)
            data_pending = bool(self._data_queue)
            if not token_pending and not data_pending:
                yield self._wakeup
                continue
            take_token = token_pending and (
                self.process.token_has_priority or not data_pending
            )
            if take_token:
                ring_id, token, src = self._token_queue.popleft()
                yield Timeout(profile.recv_token_cpu_s)
                self._route(self.process.handle_token(ring_id, token, src))
            else:
                ring_id, message, src = self._data_queue.popleft()
                yield Timeout(profile.data_recv_cost(message.payload_size))
                self._route(self.process.handle_data(ring_id, message, src))

    def _tick_loop(self):
        while True:
            yield Timeout(self.TICK_INTERVAL_S)
            self._route(self.process.tick())


class SimEVSCluster:
    """N membership-running nodes on one simulated switch."""

    def __init__(
        self,
        n_nodes: int,
        spec: LinkSpec,
        profile: CostProfile,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
    ) -> None:
        self.sim = Simulator()
        self.switch = Switch(self.sim, spec)
        self.nodes: Dict[int, SimEVSNode] = {
            pid: SimEVSNode(self.sim, pid, spec, profile, self.switch,
                            config, timeouts)
            for pid in range(n_nodes)
        }

    def run_for(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)

    def live_nodes(self) -> List[SimEVSNode]:
        return [n for n in self.nodes.values() if not n.crashed]

    # -- fault controls -----------------------------------------------------

    def crash(self, pid: int) -> None:
        self.nodes[pid].crash()

    def restart(self, pid: int) -> None:
        self.nodes[pid].restart()

    def set_partition(self, *groups) -> None:
        """Partition the switch into port groups (see Switch.set_partition)."""
        self.switch.set_partition(*groups)

    def heal(self) -> None:
        self.switch.heal()

    def logs(self) -> Dict[Tuple[int, int], List[Any]]:
        """Every (pid, incarnation) app_log — checker input."""
        collected: Dict[Tuple[int, int], List[Any]] = {}
        for pid, node in self.nodes.items():
            for incarnation, log in node.incarnation_logs():
                collected[(pid, incarnation)] = log
        return collected

    # -- convergence --------------------------------------------------------

    def converged(self) -> bool:
        live = self.live_nodes()
        if not live:
            return True
        if self.switch.partitioned:
            # Per-component convergence: every connected component of
            # live nodes must share one operational ring of exactly its
            # members.
            groups: Dict[object, List[SimEVSNode]] = {}
            for node in live:
                for key, members in groups.items():
                    if self.switch.connected(members[0].pid, node.pid):
                        members.append(node)
                        break
                else:
                    groups[node.pid] = [node]
            components = list(groups.values())
        else:
            components = [live]
        for component in components:
            expected = tuple(sorted(n.pid for n in component))
            if not all(
                n.state is State.OPERATIONAL
                and tuple(n.process.ring.members) == expected
                for n in component
            ):
                return False
            if len({n.process.ring.ring_id for n in component}) != 1:
                return False
        return True

    def run_until_converged(self, timeout_s: float = 5.0, step_s: float = 0.01) -> float:
        """Run until all live nodes share one operational ring.

        Returns the simulated time at convergence.
        """
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            self.run_for(step_s)
            if self.converged():
                return self.sim.now
        states = {
            n.pid: (n.state, n.process.ring.members) for n in self.live_nodes()
        }
        raise RuntimeError("no convergence by t=%.3f: %r" % (self.sim.now, states))
