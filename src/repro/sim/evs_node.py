"""Membership + ordering on the simulated network.

Runs the full :class:`~repro.membership.EVSProcess` stack (Totem-style
membership with EVS delivery) over the discrete-event substrate, with
real simulated time driving the failure-detection and membership
timeouts.  This is how reconfiguration *latency* — how long a crash or
partition disrupts the ordering service — becomes measurable.

Control messages (joins, commit tokens, recovery floods) travel on the
data port, like Totem's; the regular token keeps its own port.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core import ProtocolConfig, Service
from ..membership import (
    EVSProcess,
    GossipConfig,
    GossipDetector,
    MembershipTimeouts,
    Outgoing,
    PeerAlive,
    PeerConfirm,
    State,
)
from ..membership.gossip import GOSSIP_MESSAGE_TYPES, GossipPingReq
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from ..obs.registry import MetricsRegistry
from ..wire import GOSSIP_BASE_SIZE, GOSSIP_REQ_BASE_SIZE, GOSSIP_UPDATE_SIZE
from .profiles import CostProfile

#: Wire payload markers (what Frame.payload carries).
_CTRL = "ctrl"
_DATA = "data"
#: Approximate serialized size of a membership control message.
_CTRL_SIZE = 256


class SimEVSNode:
    """One EVSProcess bound to the simulated network."""

    #: How much simulated time one logical membership tick represents.
    TICK_INTERVAL_S = 0.001

    def __init__(
        self,
        sim: Simulator,
        pid: int,
        spec: LinkSpec,
        profile: CostProfile,
        switch: Switch,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        payload_size: int = 1350,
    ) -> None:
        self.sim = sim
        self.pid = pid
        self.spec = spec
        self.profile = profile
        self.payload_size = payload_size
        self._config = config
        self._timeouts = timeouts
        self.process = EVSProcess(pid, config, timeouts)
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._ctrl_queue: Deque[Tuple[Any, int]] = deque()
        self._token_queue: Deque[Tuple[int, Any, int]] = deque()
        self._data_queue: Deque[Tuple[int, Any, int]] = deque()
        self._wakeup = sim.signal("evsnode%d" % pid)
        self.crashed = False
        #: Control-plane traffic accounting (membership + failure
        #: detection, excluding ordered data and the rotating token) —
        #: the quantity the gossip detector is meant to keep bounded.
        self.ctrl_frames_sent = 0
        self.ctrl_bytes_sent = 0
        self.ctrl_frames_received = 0
        #: How many times this node has been (re)started.
        self.incarnation = 0
        #: EVSProcess instances of previous incarnations (their app_log
        #: still matters for EVS checking: a crashed process's delivered
        #: prefix must be consistent with the survivors').
        self.archived_processes: List[EVSProcess] = []
        self._cpu = sim.spawn(self._cpu_loop(), "evscpu%d" % pid)
        self._ticker = sim.spawn(self._tick_loop(), "evstick%d" % pid)
        self._route(self.process.bootstrap())

    # -- control -----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: the node stops processing and sending.

        Pending socket queues are dropped (a crashed process loses its
        volatile state); frames already handed to the NIC were sent
        before the crash and still drain onto the wire.
        """
        if self.crashed:
            return
        self.crashed = True
        self._cpu.interrupt()
        self._ticker.interrupt()
        self._ctrl_queue.clear()
        self._token_queue.clear()
        self._data_queue.clear()

    def restart(self) -> None:
        """Boot a fresh incarnation after a crash.

        The new process has amnesia for everything volatile (no
        old-ring state, empty buffers — exactly what a restarted daemon
        has) and floods a join as a singleton; membership merges it
        back in.  Only the stable-storage ring epoch survives, so the
        incarnation can never reuse a ring id (see EVSProcess).
        """
        if not self.crashed:
            raise RuntimeError("node %d is not crashed" % self.pid)
        self.crashed = False
        self.incarnation += 1
        self.archived_processes.append(self.process)
        self.process = EVSProcess(
            self.pid, self._config, self._timeouts,
            stable_ring_seq=self.process.stable_ring_seq,
        )
        self._cpu = self.sim.spawn(
            self._cpu_loop(), "evscpu%d.%d" % (self.pid, self.incarnation)
        )
        self._ticker = self.sim.spawn(
            self._tick_loop(), "evstick%d.%d" % (self.pid, self.incarnation)
        )
        self._route(self.process.bootstrap())

    def submit(self, payload: Any, service: Service = Service.AGREED) -> None:
        self.process.submit(payload, service, self.payload_size)

    def delivered_payloads(self) -> List[Any]:
        return [m.payload for m in self.process.delivered_messages()]

    def incarnation_logs(self) -> List[Tuple[int, List[Any]]]:
        """Every incarnation's app_log, oldest first, with its index."""
        logs = [
            (index, process.app_log)
            for index, process in enumerate(self.archived_processes)
        ]
        logs.append((self.incarnation, self.process.app_log))
        return logs

    @property
    def state(self) -> State:
        return self.process.state

    # -- network glue -----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if self.crashed:
            return
        kind = frame.payload[0]
        if frame.traffic is Traffic.TOKEN:
            _kind, ring_id, token = frame.payload
            self._token_queue.append((ring_id, token, frame.src))
        elif kind == _CTRL:
            _kind, message = frame.payload
            self.ctrl_frames_received += 1
            self._ctrl_queue.append((message, frame.src))
        else:
            _kind, ring_id, message = frame.payload
            self._data_queue.append((ring_id, message, frame.src))
        self._wakeup.fire()

    def _route(self, outgoing: List[Outgoing]) -> None:
        for out in outgoing:
            if out.kind == "token":
                ring_id, token = out.payload
                if out.dst == self.pid:
                    self._token_queue.append((ring_id, token, self.pid))
                    self._wakeup.fire()
                    continue
                self.nic.send(
                    Frame(self.pid, out.dst, Traffic.TOKEN,
                          token.size, (_DATA, ring_id, token))
                )
            elif out.kind == "data":
                ring_id, message = out.payload
                self.nic.send(
                    Frame(self.pid, None, Traffic.DATA,
                          message.payload_size + self.profile.header_bytes,
                          (_DATA, ring_id, message))
                )
            else:
                frame = Frame(self.pid, out.dst, Traffic.DATA,
                              _CTRL_SIZE, (_CTRL, out.payload))
                if out.dst == self.pid:
                    self._ctrl_queue.append((out.payload, self.pid))
                    self._wakeup.fire()
                else:
                    self.ctrl_frames_sent += 1
                    self.ctrl_bytes_sent += frame.size
                    self.nic.send(frame)

    # -- processes ------------------------------------------------------------------

    def _handle_ctrl(self, message: Any, src: int) -> None:
        """Dispatch one control message (subclasses add detector traffic)."""
        self._route(self.process.handle_ctrl(message, src))

    def _cpu_loop(self):
        profile = self.profile
        while True:
            if self._ctrl_queue:
                message, src = self._ctrl_queue.popleft()
                yield Timeout(profile.recv_token_cpu_s)
                self._handle_ctrl(message, src)
                continue
            token_pending = bool(self._token_queue)
            data_pending = bool(self._data_queue)
            if not token_pending and not data_pending:
                yield self._wakeup
                continue
            take_token = token_pending and (
                self.process.token_has_priority or not data_pending
            )
            if take_token:
                ring_id, token, src = self._token_queue.popleft()
                yield Timeout(profile.recv_token_cpu_s)
                self._route(self.process.handle_token(ring_id, token, src))
            else:
                ring_id, message, src = self._data_queue.popleft()
                yield Timeout(profile.data_recv_cost(message.payload_size))
                self._route(self.process.handle_data(ring_id, message, src))

    def _tick_loop(self):
        while True:
            yield Timeout(self.TICK_INTERVAL_S)
            self._route(self.process.tick())


class GossipSimNode(SimEVSNode):
    """EVS node whose failure detection rides a SWIM gossip detector.

    The Totem controller's own all-to-all probe broadcasts are disabled
    (``probes_enabled = False``); instead a :class:`GossipDetector`
    pings one random peer per protocol period and feeds suspicion
    verdicts into the membership state machine via
    ``notify_peer_alive`` / ``notify_peer_failed``.  Gather/commit
    still forms the actual views — gossip only decides *when* to start
    one and about *whom*.

    Gossip frames are charged their real wire size (the codec's
    measured base + per-update sizes), so the control-traffic counters
    reflect what a deployment would put on the network.
    """

    def __init__(
        self,
        sim: Simulator,
        pid: int,
        spec: LinkSpec,
        profile: CostProfile,
        switch: Switch,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        payload_size: int = 1350,
        peers: Tuple[int, ...] = (),
        gossip_config: Optional[GossipConfig] = None,
        gossip_seed: int = 0,
    ) -> None:
        #: Static host list the detector boots from (a restarted daemon
        #: re-reads its config file; it does NOT remember incarnations).
        self._peers = tuple(peers)
        self._gossip_config = gossip_config or GossipConfig()
        self._gossip_seed = gossip_seed
        super().__init__(sim, pid, spec, profile, switch,
                         config, timeouts, payload_size)
        self.process.probes_enabled = False
        self.detector = self._make_detector()
        self._gossip_ticker = sim.spawn(
            self._gossip_loop(), "gossiptick%d" % pid
        )

    def _make_detector(self) -> GossipDetector:
        detector = GossipDetector(
            self.pid,
            self._gossip_config,
            # New incarnation -> new probe/jitter stream, still
            # deterministic for a given (cluster seed, pid, restart#).
            seed=self._gossip_seed * 1000003 + self.incarnation,
        )
        detector.seed_members(self._peers)
        return detector

    # -- fault controls ----------------------------------------------------

    def crash(self) -> None:
        if self.crashed:
            return
        super().crash()
        self._gossip_ticker.interrupt()

    def restart(self) -> None:
        super().restart()
        self.process.probes_enabled = False
        self.detector = self._make_detector()
        self._gossip_ticker = self.sim.spawn(
            self._gossip_loop(),
            "gossiptick%d.%d" % (self.pid, self.incarnation),
        )

    # -- gossip glue -------------------------------------------------------

    @staticmethod
    def _gossip_size(message: Any) -> int:
        base = (
            GOSSIP_REQ_BASE_SIZE
            if isinstance(message, GossipPingReq)
            else GOSSIP_BASE_SIZE
        )
        return base + len(message.updates) * GOSSIP_UPDATE_SIZE

    def _dispatch_gossip(self, sends, events) -> None:
        for dst, message in sends:
            if dst == self.pid:
                continue
            frame = Frame(self.pid, dst, Traffic.DATA,
                          self._gossip_size(message), (_CTRL, message))
            self.ctrl_frames_sent += 1
            self.ctrl_bytes_sent += frame.size
            self.nic.send(frame)
        for event in events:
            if isinstance(event, PeerConfirm):
                self._route(self.process.notify_peer_failed(event.pid))
            elif isinstance(event, PeerAlive):
                self._route(self.process.notify_peer_alive(event.pid))
            # PeerSuspect is advisory: membership waits for the
            # confirm so one dropped ack can't force a view change.

    def _handle_ctrl(self, message: Any, src: int) -> None:
        if isinstance(message, GOSSIP_MESSAGE_TYPES):
            sends, events = self.detector.handle(message, src)
            self._dispatch_gossip(sends, events)
            return
        super()._handle_ctrl(message, src)

    def _gossip_loop(self):
        while True:
            yield Timeout(self.TICK_INTERVAL_S)
            sends, events = self.detector.tick()
            self._dispatch_gossip(sends, events)


class SimEVSCluster:
    """N membership-running nodes on one simulated switch."""

    def __init__(
        self,
        n_nodes: int,
        spec: LinkSpec,
        profile: CostProfile,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        gossip: bool = False,
        gossip_config: Optional[GossipConfig] = None,
        gossip_seed: int = 0,
    ) -> None:
        self.sim = Simulator()
        self.switch = Switch(self.sim, spec)
        self.gossip = gossip
        # Kept for mid-run spawns (open-membership joins build new
        # nodes from the same deployment parameters).
        self._spec = spec
        self._profile = profile
        self._config = config
        self._timeouts = timeouts
        self._gossip_config = gossip_config
        self._gossip_seed = gossip_seed
        if gossip:
            peers = tuple(range(n_nodes))
            self.nodes: Dict[int, SimEVSNode] = {
                pid: GossipSimNode(self.sim, pid, spec, profile,
                                   self.switch, config, timeouts,
                                   peers=peers,
                                   gossip_config=gossip_config,
                                   gossip_seed=gossip_seed)
                for pid in range(n_nodes)
            }
        else:
            self.nodes = {
                pid: SimEVSNode(self.sim, pid, spec, profile, self.switch,
                                config, timeouts)
                for pid in range(n_nodes)
            }
        self.metrics = MetricsRegistry()
        self._register_metrics()

    def spawn(self, pid: int) -> SimEVSNode:
        """Open membership: boot a brand-new pid mid-run.

        Unlike :meth:`restart` (a known host coming back), the joiner
        has never existed: no port on the switch, no entry in anyone's
        detector, no archived incarnations.  It boots as a singleton
        seeded with the *current* deployment as its peer list (a fresh
        daemon reads the live host file); its gossip pings introduce it
        to the members' detectors, whose ``PeerAlive`` verdicts pull it
        into the next gather — no static pid universe anywhere.

        Gossip-mode only: the probe path broadcasts to the fixed ring
        membership and would never probe an unknown pid, which is
        exactly the closed-membership limitation this lifts.
        """
        if not self.gossip:
            raise RuntimeError(
                "open-membership joins need the gossip detection path "
                "(probe-flood detection never probes unknown pids)"
            )
        if pid in self.nodes:
            raise ValueError("pid %d already exists" % pid)
        node = GossipSimNode(
            self.sim, pid, self._spec, self._profile, self.switch,
            self._config, self._timeouts,
            peers=tuple(sorted(self.nodes)),
            gossip_config=self._gossip_config,
            gossip_seed=self._gossip_seed,
        )
        self.nodes[pid] = node
        self._register_node_metrics(pid, node)
        return node

    def _register_metrics(self) -> None:
        metrics = self.metrics
        for pid, node in self.nodes.items():
            self._register_node_metrics(pid, node)
        switch = self.switch
        metrics.bind("net.switch.frames_received", switch, "frames_received")
        metrics.bind("net.switch.drops_partition", switch, "drops_partition")
        metrics.bind("net.switch.drops_fault", switch, "drops_fault")
        metrics.bind_fn("net.switch.drops_port", switch.total_drops,
                        kind="counter")
        for cls in switch.class_frames:
            metrics.bind_fn(
                "net.switch.class.%s.frames" % cls,
                (lambda c=cls: switch.class_frames.get(c, 0)),
                kind="counter",
            )
            metrics.bind_fn(
                "net.switch.class.%s.bytes" % cls,
                (lambda c=cls: switch.class_bytes.get(c, 0)),
                kind="counter",
            )

    def _register_node_metrics(self, pid: int, node: SimEVSNode) -> None:
        """Expose one node's membership/gossip counters in the registry.

        Called per node so mid-run :meth:`spawn` joins register too.
        Detector metrics go through ``bind_fn`` closures reading
        ``node.detector`` fresh at snapshot time — a restart swaps in a
        new detector, and the registry must follow the live incarnation.
        """
        metrics = self.metrics
        metrics.bind("membership.ctrl_frames_sent", node,
                     "ctrl_frames_sent", node=pid)
        metrics.bind("membership.ctrl_bytes_sent", node,
                     "ctrl_bytes_sent", node=pid)
        metrics.bind("membership.ctrl_frames_received", node,
                     "ctrl_frames_received", node=pid)
        metrics.bind_fn(
            "membership.incarnation",
            (lambda n=node: n.incarnation), node=pid, kind="gauge",
        )
        metrics.bind("net.nic.frames_sent", node.nic, "frames_sent",
                     node=pid)
        metrics.bind("net.nic.bytes_sent", node.nic, "bytes_sent",
                     node=pid)
        if self.gossip:
            metrics.bind_fn(
                "membership.gossip.messages_sent",
                (lambda n=node: n.detector.messages_sent),
                node=pid, kind="counter",
            )
            metrics.bind_fn(
                "membership.gossip.false_suspicions_refuted",
                (lambda n=node: n.detector.false_suspicions_refuted),
                node=pid, kind="counter",
            )

    def run_for(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)

    def live_nodes(self) -> List[SimEVSNode]:
        return [n for n in self.nodes.values() if not n.crashed]

    # -- fault controls -----------------------------------------------------

    def crash(self, pid: int) -> None:
        self.nodes[pid].crash()

    def restart(self, pid: int) -> None:
        self.nodes[pid].restart()

    def set_partition(self, *groups) -> None:
        """Partition the switch into port groups (see Switch.set_partition)."""
        self.switch.set_partition(*groups)

    def heal(self) -> None:
        self.switch.heal()

    def logs(self) -> Dict[Tuple[int, int], List[Any]]:
        """Every (pid, incarnation) app_log — checker input."""
        collected: Dict[Tuple[int, int], List[Any]] = {}
        for pid, node in self.nodes.items():
            for incarnation, log in node.incarnation_logs():
                collected[(pid, incarnation)] = log
        return collected

    def ctrl_traffic(self) -> Dict[str, float]:
        """Aggregate control-plane load (frames/bytes, plus per-node
        send rate in frames per simulated second).

        A thin shim over the metrics registry: the per-node counters are
        registered there, and this sums the same live attributes.
        """
        frames_sent = self.metrics.total("membership.ctrl_frames_sent")
        bytes_sent = self.metrics.total("membership.ctrl_bytes_sent")
        frames_received = self.metrics.total("membership.ctrl_frames_received")
        elapsed = self.sim.now
        per_node_hz = (
            frames_sent / (elapsed * len(self.nodes)) if elapsed > 0 else 0.0
        )
        return {
            "ctrl_frames_sent": frames_sent,
            "ctrl_bytes_sent": bytes_sent,
            "ctrl_frames_received": frames_received,
            "ctrl_frames_per_node_per_s": per_node_hz,
        }

    # -- convergence --------------------------------------------------------

    def converged(self) -> bool:
        live = self.live_nodes()
        if not live:
            return True
        if self.switch.partitioned:
            # Per-component convergence: every connected component of
            # live nodes must share one operational ring of exactly its
            # members.
            groups: Dict[object, List[SimEVSNode]] = {}
            for node in live:
                for key, members in groups.items():
                    if self.switch.connected(members[0].pid, node.pid):
                        members.append(node)
                        break
                else:
                    groups[node.pid] = [node]
            components = list(groups.values())
        else:
            components = [live]
        for component in components:
            expected = tuple(sorted(n.pid for n in component))
            if not all(
                n.state is State.OPERATIONAL
                and tuple(n.process.ring.members) == expected
                for n in component
            ):
                return False
            if len({n.process.ring.ring_id for n in component}) != 1:
                return False
        return True

    def run_until_converged(self, timeout_s: float = 5.0, step_s: float = 0.01) -> float:
        """Run until all live nodes share one operational ring.

        Returns the simulated time at convergence.
        """
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            self.run_for(step_s)
            if self.converged():
                return self.sim.now
        states = {
            n.pid: (n.state, n.process.ring.members) for n in self.live_nodes()
        }
        raise RuntimeError("no convergence by t=%.3f: %r" % (self.sim.now, states))
