"""Protocol nodes bound to the discrete-event network substrate.

This package reproduces the paper's testbed in simulation: eight hosts
with single-threaded daemons on a switched 1G/10G network, with the three
implementation cost profiles (library / daemon / Spread).
"""

from .campaign import (
    CampaignOptions,
    ScenarioResult,
    generate_schedule,
    run_campaign,
    run_scenario,
    shrink_schedule,
)
from .cluster import SimCluster, SimResult, run_point
from .faults import (
    Churn,
    Crash,
    FaultSchedule,
    FaultScheduleError,
    Flap,
    Heal,
    LossSwap,
    Partition,
    Restart,
    TokenDrop,
)
from .latency import LatencyRecorder, LatencySummary, summarize
from .node import SimNode
from .profiles import DAEMON, LIBRARY, PROFILES, SPREAD, CostProfile
from .evs_node import GossipSimNode, SimEVSCluster, SimEVSNode
from .trace import RoundStats, RoundTracer

__all__ = [
    "GossipSimNode", "SimEVSCluster", "SimEVSNode",
    "SimCluster", "SimResult", "run_point",
    "SimNode",
    "FaultSchedule", "FaultScheduleError",
    "Crash", "Restart", "Partition", "Heal", "TokenDrop", "LossSwap",
    "Flap", "Churn",
    "CampaignOptions", "ScenarioResult",
    "generate_schedule", "run_campaign", "run_scenario", "shrink_schedule",
    "LatencyRecorder", "LatencySummary", "summarize",
    "CostProfile", "LIBRARY", "DAEMON", "SPREAD", "PROFILES",
    "RoundTracer", "RoundStats",
]
