"""Churn campaigns: sustained join/leave/flap at 50-100 nodes.

Two complementary drivers over :class:`~repro.sim.evs_node.SimEVSCluster`:

* :func:`run_churn_scenario` — an EVS-checked endurance run: a
  :class:`~repro.sim.faults.Churn` generator (plus one flapping node)
  keeps crashing and restarting members every few hundred simulated
  milliseconds while per-node injectors submit ordered traffic; at the
  end every incarnation's log must satisfy every EVS axiom.  This is
  the ordering oracle for the gossip detector: failure detection may be
  wrong or slow, but it must never corrupt delivery.

* :func:`convergence_sweep` — the measurement companion: for each
  cluster size it runs crash->reconverge->rejoin->reconverge cycles
  and records view-change convergence time and control-plane traffic,
  for the gossip detector and for the Totem-style probe flood it
  replaces.  The resulting record (``bench_results/churn_convergence
  .json``) is what shows gossip keeping per-node control traffic
  bounded as N grows; its headline rates are guarded by
  ``python -m repro.bench.guard``.

Everything is simulated-time deterministic: re-running with the same
seed reproduces the record byte for byte.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core import ProtocolConfig
from ..evs import EVSChecker
from ..membership import GossipConfig, MembershipTimeouts
from ..net import GIGABIT, LinkSpec, Timeout
from .campaign import collect_observability
from .evs_node import SimEVSCluster
from .faults import Churn, FaultSchedule, Flap, Join
from .profiles import LIBRARY, CostProfile

#: Where the sweep record lands (next to kernel.json / codec.json).
DEFAULT_RECORD_PATH = os.path.join("bench_results", "churn_convergence.json")

#: Membership timeouts for the churn runs: the stock defaults, which
#: both detection paths (gossip suspicion, token-loss + probes) are
#: tuned against.
CHURN_TIMEOUTS = MembershipTimeouts(
    token_loss_ticks=60, gather_ticks=40, commit_ticks=80,
    probe_interval_ticks=25,
)


def _protocol_config() -> ProtocolConfig:
    return ProtocolConfig.accelerated(personal_window=10,
                                      accelerated_window=8)


@dataclass
class ChurnOptions:
    """Knobs for one EVS-checked churn scenario."""

    seed: int = 0
    n_nodes: int = 50
    gossip: bool = True
    #: How many churn victims the generator takes (one per period).
    churn_events: int = 8
    churn_period_s: float = 0.3
    churn_down_s: float = 0.18
    #: One designated flapper exercises rapid rejoin churn.
    flap_pid: Optional[int] = 1
    flap_repeats: int = 3
    #: Brand-new pids spawned mid-run (open membership; gossip only).
    #: Joiners get pids the deployment has never seen and must be
    #: pulled into the ring by the gossip detector alone.
    joins: int = 0
    join_start_s: float = 0.2
    join_period_s: float = 0.45
    submit_interval_s: float = 0.05
    converge_timeout_s: float = 8.0
    drain_s: float = 0.5
    spec: LinkSpec = GIGABIT
    profile: CostProfile = LIBRARY


def _build_cluster(n_nodes: int, gossip: bool, seed: int,
                   spec: LinkSpec, profile: CostProfile) -> SimEVSCluster:
    return SimEVSCluster(
        n_nodes, spec, profile, _protocol_config(), CHURN_TIMEOUTS,
        gossip=gossip, gossip_config=GossipConfig() if gossip else None,
        gossip_seed=seed,
    )


def churn_schedule(options: ChurnOptions) -> FaultSchedule:
    """The declarative fault load for one scenario."""
    schedule = FaultSchedule()
    pool = tuple(
        pid for pid in range(options.n_nodes) if pid != options.flap_pid
    )
    schedule.add(Churn(
        at_s=0.05,
        pids=pool,
        down_s=options.churn_down_s,
        period_s=options.churn_period_s,
        repeats=options.churn_events,
        seed=options.seed,
    ))
    if options.flap_pid is not None and options.n_nodes > 2:
        schedule.add(Flap(
            at_s=0.1,
            pid=options.flap_pid,
            down_s=options.churn_down_s / 2,
            period_s=options.churn_period_s * 1.5,
            repeats=options.flap_repeats,
        ))
    for index in range(options.joins):
        schedule.add(Join(
            at_s=options.join_start_s + index * options.join_period_s,
            pid=options.n_nodes + index,
        ))
    return schedule


def run_churn_scenario(options: ChurnOptions) -> Dict[str, Any]:
    """One seeded churn endurance run, fully EVS-checked.

    Returns a JSON-ready summary: convergence outcome, violations
    (empty on success), per-incarnation delivery counts and control
    traffic totals.
    """
    if options.joins and not options.gossip:
        raise ValueError(
            "open-membership joins need the gossip detection path"
        )
    cluster = _build_cluster(options.n_nodes, options.gossip, options.seed,
                             options.spec, options.profile)
    cluster.run_until_converged(timeout_s=options.converge_timeout_s)

    submitted: Dict[Tuple[int, int], List[Any]] = {}
    stop = {"flag": False}

    def injector(node):
        counter = 0
        while True:
            yield Timeout(options.submit_interval_s)
            if stop["flag"]:
                return
            if node.crashed:
                continue
            payload = "c%d.%d.%d" % (node.pid, node.incarnation, counter)
            counter += 1
            node.submit(payload)
            submitted.setdefault(
                (node.pid, node.incarnation), []
            ).append(payload)

    for pid in sorted(cluster.nodes):
        cluster.sim.spawn(injector(cluster.nodes[pid]), "churninj%d" % pid)

    schedule = churn_schedule(options)
    base_s = cluster.sim.now
    schedule.install(cluster, base_time_s=base_s)
    # Joiners start submitting ordered traffic shortly after they
    # spawn, so their deliveries are EVS-checked like everyone else's.
    for event in schedule.events:
        if isinstance(event, Join):
            cluster.sim.call_at(
                base_s + event.at_s + 0.02,
                lambda pid=event.pid: cluster.sim.spawn(
                    injector(cluster.nodes[pid]), "churninj%d" % pid
                ),
            )
    horizon_s = (
        0.1 + options.churn_period_s * (options.churn_events + 1)
        + options.churn_down_s
    )
    if options.joins:
        horizon_s = max(
            horizon_s,
            options.join_start_s
            + options.joins * options.join_period_s + 0.3,
        )
    cluster.run_for(horizon_s)

    # Cleanup: restart whatever the generator left down, quiesce.
    for pid in sorted(cluster.nodes):
        if cluster.nodes[pid].crashed:
            cluster.restart(pid)
    stop["flag"] = True
    converged = True
    try:
        cluster.run_until_converged(timeout_s=options.converge_timeout_s)
    except RuntimeError:
        converged = False
    cluster.run_for(options.drain_s)

    logs = cluster.logs()
    final_keys = {
        (pid, node.incarnation)
        for pid, node in cluster.nodes.items() if not node.crashed
    }
    relevant_submitted = {
        key: payloads for key, payloads in submitted.items()
        if key in final_keys
    }
    checker = EVSChecker()
    checker.check_logs(logs, relevant_submitted)

    incarnations = {
        pid: node.incarnation for pid, node in cluster.nodes.items()
    }
    observability = collect_observability(cluster)
    return {
        "seed": options.seed,
        "n_nodes": options.n_nodes,
        "gossip": options.gossip,
        "joins": options.joins,
        "joined_pids": sorted(
            pid for pid in cluster.nodes if pid >= options.n_nodes
        ),
        "schedule": schedule.to_jsonable(),
        "horizon_s": round(horizon_s, 4),
        "converged": converged,
        "violations": checker.violations,
        "total_restarts": sum(incarnations.values()),
        "ctrl": cluster.ctrl_traffic(),
        "drops": observability["drops"],
        "traffic": observability["traffic"],
        "delivered_total": sum(
            sum(1 for event in log if not hasattr(event, "configuration"))
            for log in logs.values()
        ),
    }


def _snapshot(cluster: SimEVSCluster) -> Tuple[int, int, int]:
    return (
        sum(n.ctrl_frames_sent for n in cluster.nodes.values()),
        sum(n.ctrl_frames_received for n in cluster.nodes.values()),
        sum(n.ctrl_bytes_sent for n in cluster.nodes.values()),
    )


def _measure_mode(n_nodes: int, gossip: bool, seed: int,
                  cycles: int) -> Dict[str, Any]:
    """Crash/rejoin convergence times + ctrl traffic for one mode."""
    cluster = _build_cluster(n_nodes, gossip, seed, GIGABIT, LIBRARY)
    cluster.run_until_converged(timeout_s=8.0)

    # Steady state: one quiet second of pure failure detection, no
    # membership changes.  This is the traffic that must stay bounded
    # per node as N grows — view changes cost O(n) joins per node in
    # either mode, but a quiet cluster should only pay for detection.
    sent0, recv0, bytes0 = _snapshot(cluster)
    cluster.run_for(1.0)
    sent1, recv1, bytes1 = _snapshot(cluster)
    steady = {
        "sent_per_node_hz": round((sent1 - sent0) / float(n_nodes), 2),
        "recv_per_node_hz": round((recv1 - recv0) / float(n_nodes), 2),
        "sent_bytes_per_node_hz": round(
            (bytes1 - bytes0) / float(n_nodes), 2
        ),
    }

    frames0, recv0, bytes0 = _snapshot(cluster)
    t_start = cluster.sim.now

    crash_times: List[float] = []
    rejoin_times: List[float] = []
    for cycle in range(cycles):
        victim = (seed * 31 + cycle * 7) % n_nodes
        t0 = cluster.sim.now
        cluster.crash(victim)
        crash_times.append(
            cluster.run_until_converged(timeout_s=8.0) - t0
        )
        t1 = cluster.sim.now
        cluster.restart(victim)
        rejoin_times.append(
            cluster.run_until_converged(timeout_s=8.0) - t1
        )

    checker = EVSChecker()
    checker.check_logs(cluster.logs())
    if checker.violations:
        raise AssertionError(
            "EVS violations during convergence sweep (n=%d gossip=%s): %s"
            % (n_nodes, gossip, checker.violations[:3])
        )

    elapsed = cluster.sim.now - t_start
    frames1, received1, bytes1 = _snapshot(cluster)
    denominator = max(elapsed, 1e-9) * n_nodes
    return {
        "crash_convergence_s": round(
            sum(crash_times) / len(crash_times), 6
        ),
        "crash_convergence_max_s": round(max(crash_times), 6),
        "rejoin_convergence_s": round(
            sum(rejoin_times) / len(rejoin_times), 6
        ),
        "steady": steady,
        "churn_sent_per_node_hz": round(
            (frames1 - frames0) / denominator, 2
        ),
        "churn_recv_per_node_hz": round(
            (received1 - recv0) / denominator, 2
        ),
        "churn_bytes_per_node_hz": round(
            (bytes1 - bytes0) / denominator, 2
        ),
    }


def convergence_sweep(
    ns: Tuple[int, ...] = (10, 25, 50, 100),
    seed: int = 1,
    cycles: int = 3,
) -> Dict[str, Any]:
    """Convergence time and control traffic vs cluster size.

    Runs both detection paths at every size.  The headline ``metrics``
    block is what the bench guard watches:

    * ``crash_convergence_rate_hz`` / ``rejoin_convergence_rate_hz`` —
      inverse mean view-change convergence time at the largest swept
      size with gossip (higher = faster reconfiguration);
    * ``ctrl_traffic_headroom`` — a 1 kHz per-node reference budget
      divided by the gossip detector's steady-state per-node receive
      rate at the largest size (higher = less control traffic).
    """
    sweep: List[Dict[str, Any]] = []
    for n in ns:
        entry: Dict[str, Any] = {"n_nodes": n}
        entry["gossip"] = _measure_mode(n, True, seed, cycles)
        entry["probes"] = _measure_mode(n, False, seed, cycles)
        sweep.append(entry)
    largest = sweep[-1]["gossip"]
    metrics = {
        "crash_convergence_rate_hz": round(
            1.0 / largest["crash_convergence_s"], 3
        ),
        "rejoin_convergence_rate_hz": round(
            1.0 / max(largest["rejoin_convergence_s"], 1e-9), 3
        ),
        "ctrl_traffic_headroom": round(
            1000.0 / max(largest["steady"]["recv_per_node_hz"], 1e-9), 4
        ),
    }
    return {
        "schema": 1,
        "seed": seed,
        "cycles": cycles,
        "ns": list(ns),
        "timeouts": {
            "token_loss_ticks": CHURN_TIMEOUTS.token_loss_ticks,
            "gather_ticks": CHURN_TIMEOUTS.gather_ticks,
            "commit_ticks": CHURN_TIMEOUTS.commit_ticks,
            "probe_interval_ticks": CHURN_TIMEOUTS.probe_interval_ticks,
        },
        "sweep": sweep,
        "metrics": metrics,
    }


def write_record(record: Dict[str, Any],
                 path: str = DEFAULT_RECORD_PATH) -> str:
    """Byte-stable record file (sorted keys, no wall-clock anywhere)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
