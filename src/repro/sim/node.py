"""A simulated host: single-threaded CPU driving the protocol engine.

Models what the paper's daemons actually are: one process, one core,
reading from two UDP sockets (token and data on different ports, Section
III-D), paying CPU for every receive, send, and delivery.  The
token/data priority switching is implemented exactly as described: when
data has high priority the token socket is not read unless no data
message is available, and vice versa.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from ..core import (
    DataMessage,
    Deliver,
    Discard,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
)
from ..core.packing import PackedPayload
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from .latency import LatencyRecorder
from .profiles import CostProfile


class SimNode:
    """One ring participant bound to the simulated network."""

    def __init__(
        self,
        sim: Simulator,
        pid: int,
        ring: Ring,
        config: ProtocolConfig,
        profile: CostProfile,
        spec: LinkSpec,
        switch: Switch,
        recorder: LatencyRecorder,
        deliver_callback: Optional[Callable[[int, DataMessage], None]] = None,
    ) -> None:
        self.sim = sim
        self.pid = pid
        self.profile = profile
        self.spec = spec
        self.recorder = recorder
        self.participant = Participant(pid, ring, config)
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._deliver_callback = deliver_callback

        self._token_queue: Deque[Token] = deque()
        self._data_queue: Deque[Frame] = deque()
        self._data_queue_bytes = 0
        self._wakeup = sim.signal("node%d" % pid)
        # Timeout objects are immutable, so the CPU-charge pauses — a
        # handful of distinct cost values repeated millions of times — are
        # cached per payload size instead of allocated per event.
        self._timeout_recv_token = Timeout(profile.recv_token_cpu_s)
        self._timeout_send_token = Timeout(profile.send_token_cpu_s)
        self._recv_timeouts: dict = {}
        self._send_timeouts: dict = {}
        self._deliver_timeouts: dict = {}
        self.socket_drops = 0
        self.tokens_resent = 0
        self._retransmit_deadline = 0.0
        self._process = sim.spawn(self._cpu_loop(), "cpu%d" % pid)

    # -- application-facing -------------------------------------------------

    def submit(
        self,
        payload: Any,
        service: Service,
        payload_size: int,
    ) -> None:
        """Inject one application message (timestamped now)."""
        self.participant.submit(
            payload, service, payload_size, submitted_at=self.sim.now
        )

    @property
    def backlog(self) -> int:
        return self.participant.backlog

    # -- network-facing -------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if frame.traffic is Traffic.TOKEN:
            # Token socket: tokens are tiny and rare; the buffer holds
            # any realistic number of them.
            self._token_queue.append(frame.payload)
        else:
            wire = frame.wire_bytes()
            if self._data_queue_bytes + wire > self.spec.socket_buffer_bytes:
                self.socket_drops += 1
                return
            self._data_queue.append(frame)
            self._data_queue_bytes += wire
        self._wakeup.fire()

    def start_with_token(self, token: Token) -> None:
        """Install the first regular token (membership's hand-off)."""
        self._token_queue.append(token)
        self._wakeup.fire()

    # -- the single-threaded daemon loop ----------------------------------------

    def _cpu_loop(self):
        profile = self.profile
        participant = self.participant
        token_queue = self._token_queue
        data_queue = self._data_queue
        wakeup = self._wakeup
        timeout_recv_token = self._timeout_recv_token
        recv_timeouts = self._recv_timeouts
        data_recv_cost = profile.data_recv_cost
        on_token = participant.on_token
        on_data = participant.on_data
        execute = self._execute
        while True:
            token_pending = bool(token_queue)
            data_pending = bool(data_queue)
            if not token_pending and not data_pending:
                yield wakeup
                continue
            take_token = token_pending and (
                participant.token_has_priority or not data_pending
            )
            if take_token:
                token = token_queue.popleft()
                yield timeout_recv_token
                actions = on_token(token)
                for pause in execute(actions):
                    yield pause
            else:
                frame = data_queue.popleft()
                self._data_queue_bytes -= frame.wire_bytes()
                message: DataMessage = frame.payload
                size = message.payload_size
                pause = recv_timeouts.get(size)
                if pause is None:
                    pause = recv_timeouts[size] = Timeout(data_recv_cost(size))
                yield pause
                actions = on_data(message)
                for pause in execute(actions):
                    yield pause

    def _execute(self, actions):
        """Run an action list, yielding Timeouts for each CPU charge.

        Dispatches on the exact action type — the action algebra is a
        closed union (:data:`repro.core.actions.Action`), so this is
        equivalent to the isinstance chain and cheaper per action.
        """
        profile = self.profile
        send_timeouts = self._send_timeouts
        for action in actions:
            kind = type(action)
            if kind is SendData:
                message = action.message
                size = message.payload_size
                pause = send_timeouts.get(size)
                if pause is None:
                    pause = send_timeouts[size] = Timeout(
                        profile.data_send_cost(size)
                    )
                yield pause
                self.nic.send(
                    Frame(
                        src=self.pid,
                        dst=None,
                        traffic=Traffic.DATA,
                        size=message.payload_size + profile.header_bytes,
                        payload=message,
                    )
                )
            elif kind is SendToken:
                yield self._timeout_send_token
                self.nic.send(
                    Frame(
                        src=self.pid,
                        dst=action.dst,
                        traffic=Traffic.TOKEN,
                        size=action.token.size,
                        payload=action.token,
                    )
                )
                self._arm_token_retransmit(action)
            elif kind is Deliver:
                message = action.message
                size = message.payload_size
                pause = self._deliver_timeouts.get(size)
                if pause is None:
                    pause = self._deliver_timeouts[size] = Timeout(
                        profile.deliver_cost(size)
                    )
                yield pause
                payload = message.payload
                if isinstance(payload, PackedPayload):
                    # Packed packets: account each application message
                    # individually (its own submit time and size).
                    for item in payload.items:
                        self.recorder.record(
                            self.pid,
                            message.service,
                            item.submitted_at,
                            self.sim.now,
                            item.payload_size,
                        )
                else:
                    self.recorder.record(
                        self.pid,
                        message.service,
                        message.submitted_at,
                        self.sim.now,
                        message.payload_size,
                    )
                if self._deliver_callback is not None:
                    self._deliver_callback(self.pid, message)
            elif kind is Discard:
                pass  # garbage collection is free compared to the rest

    # -- token-loss recovery --------------------------------------------------

    def _arm_token_retransmit(self, send: SendToken, attempt: int = 0) -> None:
        timeout = self.participant.config.token_retransmit_timeout_s
        deadline = self.sim.now + timeout
        self._retransmit_deadline = deadline
        self.sim.call_at(deadline, self._maybe_retransmit, send, attempt)

    def _maybe_retransmit(self, send: SendToken, attempt: int) -> None:
        participant = self.participant
        if participant.last_token_sent is not send.token:
            return  # we have handled a newer token since
        if participant.progress_since_token_send():
            return
        if attempt >= participant.config.token_retransmit_limit:
            return  # membership's problem now (token loss declared)
        self.tokens_resent += 1
        self.nic.send(
            Frame(
                src=self.pid,
                dst=send.dst,
                traffic=Traffic.TOKEN,
                size=send.token.size,
                payload=send.token,
            )
        )
        self._arm_token_retransmit(send, attempt + 1)
